"""Offline link checker for the repo's markdown docs.

Walks every markdown file given on the command line (default: README.md
plus docs/*.md), extracts ``[text](target)`` links, and fails the run
if any *relative* target is dangling:

* a path target must exist on disk (relative to the linking file);
* a ``#fragment`` — on its own or after a path — must match a heading
  in the target document, using GitHub's slug rules (lowercase, spaces
  to dashes, punctuation dropped, `&` and friends removed);
* ``http(s)://`` and ``mailto:`` targets are skipped — CI has no
  business flaking on the network.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link).  Run it the way CI does:

    python tools/check_links.py README.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) — but not images' alt text brackets or footnote refs;
# nested brackets in the text segment are tolerated by the lazy match.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading text."""
    # Strip markdown emphasis/code/link syntax, then slugify.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    text = text.strip().lower()
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"\s", "-", text)


def headings_of(path: Path) -> set[str]:
    """All GitHub anchor slugs defined by a markdown file."""
    slugs: dict[str, int] = {}
    out: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        n = slugs.get(slug, 0)
        slugs[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def links_of(path: Path):
    """Yield link targets, skipping fenced code blocks and inline code."""
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        clean = re.sub(r"`[^`]*`", "", line)
        yield from _LINK.findall(clean)


def check_file(path: Path) -> list[str]:
    """All broken links in one markdown file, as printable messages."""
    problems = []
    for target in links_of(path):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
            continue
        file_part, _, fragment = target.partition("#")
        dest = (path.parent / file_part).resolve() if file_part else path
        if file_part and not dest.exists():
            problems.append(f"{path}: missing target {target!r}")
            continue
        if fragment:
            if dest.suffix.lower() not in (".md", ".markdown"):
                continue  # anchors into non-markdown are out of scope
            if fragment not in headings_of(dest):
                problems.append(
                    f"{path}: no heading for anchor {target!r}")
    return problems


def main(argv: list[str]) -> int:
    paths = [Path(a) for a in argv] or [
        Path("README.md"), *sorted(Path("docs").glob("*.md"))]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"no such file: {p}", file=sys.stderr)
        return 1
    problems = [msg for p in paths for msg in check_file(p)]
    for msg in problems:
        print(msg, file=sys.stderr)
    print(f"checked {len(paths)} file(s): "
          f"{'OK' if not problems else f'{len(problems)} broken link(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
