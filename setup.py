"""Setup shim so editable installs work with the offline legacy toolchain."""
from setuptools import setup

setup()
