"""Tests for the baseline methods and the evaluation harness."""

import numpy as np
import pytest

from repro.baselines import (
    ContrastiveBaseline,
    ContrastiveEncoderTrainer,
    FinetuneBaseline,
    GraphPrompterMethod,
    NoPretrainBaseline,
    OFALikeBaseline,
    ProdigyBaseline,
    ProGBaseline,
    class_centroids,
    nearest_centroid_predict,
)
from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.datasets import Dataset, EDGE_TASK
from repro.datasets.synthetic import synthetic_knowledge_graph
from repro.eval import (
    EvaluationSetting,
    MethodScore,
    accuracy,
    bootstrap_ci,
    compare_methods,
    evaluate_method,
    time_method,
)


@pytest.fixture(scope="module")
def kg_dataset():
    graph = synthetic_knowledge_graph(300, 8, 2400, rng=0, name="kg-bl")
    return Dataset(graph, EDGE_TASK, rng=0)


@pytest.fixture(scope="module")
def tiny_cfg():
    return GraphPrompterConfig(hidden_dim=12, max_subgraph_nodes=10)


@pytest.fixture(scope="module")
def pretrained_state(kg_dataset, tiny_cfg):
    model = GraphPrompterModel(kg_dataset.graph.feature_dim,
                               kg_dataset.graph.num_relations, tiny_cfg)
    Pretrainer(model, kg_dataset, PretrainConfig(steps=50, num_ways=4),
               rng=0).train()
    return model.state_dict()


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_accuracy_validates(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_method_score_stats(self):
        score = MethodScore("m", [0.5, 0.7])
        assert score.mean == pytest.approx(0.6)
        assert score.mean_percent == pytest.approx(60.0)
        assert "60.00" in str(score)

    def test_bootstrap_ci_contains_mean(self):
        values = np.random.default_rng(0).normal(0.7, 0.05, size=30)
        lo, hi = bootstrap_ci(values, rng=0)
        assert lo < values.mean() < hi

    def test_bootstrap_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])


class TestEvaluationSetting:
    def test_valid(self):
        EvaluationSetting(num_ways=5).validate()

    @pytest.mark.parametrize("bad", [
        {"num_ways": 1},
        {"num_ways": 5, "shots": 0},
        {"num_ways": 5, "shots": 5, "candidates_per_class": 3},
        {"num_ways": 5, "queries_per_run": 0},
        {"num_ways": 5, "runs": 0},
    ])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            EvaluationSetting(**bad).validate()


class TestCentroidHelpers:
    def test_class_centroids(self):
        emb = np.array([[0.0], [2.0], [4.0], [6.0]])
        labels = np.array([0, 0, 1, 1])
        np.testing.assert_allclose(class_centroids(emb, labels, 2),
                                   [[1.0], [5.0]])

    def test_nearest_centroid_predict(self):
        centroids = np.array([[1.0, 0.0], [0.0, 1.0]])
        queries = np.array([[0.9, 0.1], [0.2, 0.8]])
        np.testing.assert_array_equal(
            nearest_centroid_predict(queries, centroids), [0, 1])


class TestNoPretrain:
    def test_predicts_valid_labels(self, kg_dataset, tiny_cfg):
        method = NoPretrainBaseline(tiny_cfg)
        ep = sample_episode(kg_dataset, num_ways=4, num_queries=10, rng=0)
        preds = method.predict(kg_dataset, ep, 3, np.random.default_rng(0))
        assert preds.shape == (10,)
        assert np.all((preds >= 0) & (preds < 4))

    def test_near_chance_level(self, kg_dataset, tiny_cfg):
        """Random weights should hover near 1/m accuracy."""
        method = NoPretrainBaseline(tiny_cfg)
        setting = EvaluationSetting(num_ways=4, runs=4, queries_per_run=25)
        score = evaluate_method(method, kg_dataset, setting, seed=1)
        assert score.mean < 0.65  # far below a trained model


class TestContrastive:
    def test_training_reduces_loss(self, kg_dataset, tiny_cfg):
        trainer = ContrastiveEncoderTrainer(kg_dataset, tiny_cfg, rng=0)
        losses = trainer.train(steps=25, batch_size=8)
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_baseline_beats_chance(self, kg_dataset, tiny_cfg):
        method = ContrastiveBaseline.pretrained(kg_dataset, tiny_cfg,
                                                steps=40, rng=0)
        setting = EvaluationSetting(num_ways=4, runs=3, queries_per_run=25)
        score = evaluate_method(method, kg_dataset, setting, seed=2)
        assert score.mean > 1.0 / 4


class TestFinetune:
    def test_beats_chance(self, kg_dataset, tiny_cfg):
        contrastive = ContrastiveBaseline.pretrained(kg_dataset, tiny_cfg,
                                                     steps=80, rng=0)
        method = FinetuneBaseline(contrastive.encoder, tiny_cfg,
                                  head_steps=40)
        setting = EvaluationSetting(num_ways=4, runs=3, queries_per_run=25)
        score = evaluate_method(method, kg_dataset, setting, seed=3)
        assert score.mean > 1.0 / 4


class TestProdigyAndGraphPrompter:
    def test_prodigy_valid_predictions(self, kg_dataset, tiny_cfg,
                                       pretrained_state):
        method = ProdigyBaseline(pretrained_state, tiny_cfg,
                                 kg_dataset.graph.feature_dim)
        ep = sample_episode(kg_dataset, num_ways=4, num_queries=12, rng=4)
        preds = method.predict(kg_dataset, ep, 3, np.random.default_rng(4))
        assert preds.shape == (12,)

    def test_graphprompter_beats_chance(self, kg_dataset, tiny_cfg,
                                        pretrained_state):
        method = GraphPrompterMethod(pretrained_state, tiny_cfg,
                                     kg_dataset.graph.feature_dim)
        setting = EvaluationSetting(num_ways=4, runs=3, queries_per_run=25)
        score = evaluate_method(method, kg_dataset, setting, seed=5)
        assert score.mean > 1.0 / 4

    def test_compare_methods_same_episodes(self, kg_dataset, tiny_cfg,
                                           pretrained_state):
        gp = GraphPrompterMethod(pretrained_state, tiny_cfg,
                                 kg_dataset.graph.feature_dim)
        prodigy = ProdigyBaseline(pretrained_state, tiny_cfg,
                                  kg_dataset.graph.feature_dim)
        setting = EvaluationSetting(num_ways=4, runs=2, queries_per_run=15)
        scores = compare_methods([gp, prodigy], kg_dataset, setting, seed=6)
        assert set(scores) == {"GraphPrompter", "Prodigy"}
        assert all(len(s.run_accuracies) == 2 for s in scores.values())


class TestProG:
    def test_prompt_token_changes_predictions_or_matches(self, kg_dataset,
                                                         tiny_cfg):
        contrastive = ContrastiveBaseline.pretrained(kg_dataset, tiny_cfg,
                                                     steps=40, rng=0)
        method = ProGBaseline(contrastive.encoder, tiny_cfg, tune_steps=5)
        ep = sample_episode(kg_dataset, num_ways=3, num_queries=12, rng=7)
        preds = method.predict(kg_dataset, ep, 3, np.random.default_rng(7))
        assert preds.shape == (12,)
        assert np.all((preds >= 0) & (preds < 3))


class TestOFALike:
    def test_joint_training_and_predict(self, kg_dataset, tiny_cfg):
        other = Dataset(
            synthetic_knowledge_graph(250, 6, 1800, rng=5, name="kg2"),
            EDGE_TASK, rng=5)
        method = OFALikeBaseline.trained_on([kg_dataset, other], tiny_cfg,
                                            steps_per_dataset=10)
        ep = sample_episode(kg_dataset, num_ways=3, num_queries=10, rng=8)
        preds = method.predict(kg_dataset, ep, 3, np.random.default_rng(8))
        assert preds.shape == (10,)

    def test_requires_datasets(self, tiny_cfg):
        with pytest.raises(ValueError):
            OFALikeBaseline.trained_on([], tiny_cfg)


class TestTiming:
    def test_time_method_reports_positive(self, kg_dataset, tiny_cfg,
                                          pretrained_state):
        method = ProdigyBaseline(pretrained_state, tiny_cfg,
                                 kg_dataset.graph.feature_dim)
        setting = EvaluationSetting(num_ways=3, runs=1, queries_per_run=8)
        result = time_method(method, kg_dataset, setting, warmup_runs=0)
        assert result.ms_per_query > 0
        assert result.num_queries == 8
