"""Equivalence suite for the pluggable tensor backends (repro.nn.backend).

Four families of guarantees pinned here, mirroring the sampling suite's
50-random-workload pattern:

* the default :class:`NumpyBackend` is **bit-identical** to the reference
  numpy expressions the engine used before the backend seam existed —
  re-implemented inline here, independent of the backend module, so a
  drive-by "optimisation" of the default path fails loudly;
* the accelerated kernels (``fused`` segment ops, ``blocked`` gemm) match
  the reference within the documented tolerance contract — float rounding
  at float64, ~1e-5 relative at float32 — across random segment workloads
  including the empty / single-segment / all-one-bucket edge cases;
* a model configured with an accelerated backend still **trains** on the
  exact float64 path (the backend only activates inside ``no_grad``), and
  its accelerated inference agrees with the exact model within tolerance,
  including task-logit argmax agreement;
* int8 candidate-pool quantization honours its per-row error bound
  (≤ rowmax/254), keeps zero rows exact, cuts at-rest bytes ≥ 3.3x, and a
  server running quantized pools agrees with the fp64 server on top-1
  predictions.
"""

import numpy as np
import pytest

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    sample_episode,
)
from repro.datasets import Dataset, EDGE_TASK
from repro.datasets.synthetic import synthetic_knowledge_graph
from repro.graph import EdgeInput, Graph, sample_data_graph
from repro.nn import Tensor, get_backend, make_backend, no_grad, use_backend
from repro.nn.backend import (
    BACKENDS,
    BlockedBackend,
    FastBackend,
    FusedBackend,
    NumpyBackend,
)
from repro.serving import PromptServer
from repro.serving.quantize import (
    QuantizedPool,
    pool_data,
    pool_nbytes,
    quantize_pool,
)

# ---------------------------------------------------------------------------
# Random segment workloads (the kernel-level analogue of random_graph).
# ---------------------------------------------------------------------------


def segment_workload(trial: int, dtype=np.float64):
    """One random scatter/segment workload: (values, h, index arrays...)."""
    r = np.random.default_rng(trial)
    n = int(r.integers(1, 120))
    e = int(r.integers(0, 5 * n))
    d = int(r.integers(1, 24))
    return {
        "num_nodes": n,
        "h": r.normal(size=(n, d)).astype(dtype),
        "values": r.normal(size=(e, d)).astype(dtype),
        "src": r.integers(0, n, size=e),
        "dst": r.integers(0, n, size=e),
        "scores": r.normal(size=e).astype(dtype),
        "alpha": r.random(size=e).astype(dtype),
        "weights": r.random(size=e).astype(dtype),
        "rel_emb": r.normal(size=(e, d)).astype(dtype),
    }


def reference_scatter_add(values, index, num_segments):
    """The pre-seam expression, verbatim: zero-init + ``np.add.at``."""
    out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
    np.add.at(out, index, values)
    return out


def reference_segment_softmax(scores, index, num_segments):
    """The pre-seam max-shifted segment softmax, verbatim."""
    max_per_segment = np.full(num_segments, -np.inf, dtype=scores.dtype)
    np.maximum.at(max_per_segment, index, scores)
    max_per_segment[~np.isfinite(max_per_segment)] = 0.0
    exps = np.exp(scores - max_per_segment[index])
    denom = np.zeros(num_segments, dtype=exps.dtype)
    np.add.at(denom, index, exps)
    eps = np.asarray(1e-16, dtype=scores.dtype)
    return exps / (denom[index] + eps)


def reference_sage_aggregate(h, src, dst, num_nodes, edge_weights=None,
                             rel_emb=None):
    """The pre-seam SAGE mean aggregation, message matrix and all."""
    messages = h[src]
    if rel_emb is not None:
        messages = messages + rel_emb
    if edge_weights is not None:
        messages = messages * edge_weights.reshape(-1, 1)
    counts = np.maximum(
        np.bincount(dst, minlength=num_nodes).astype(h.dtype), 1.0)
    return (reference_scatter_add(messages, dst, num_nodes)
            / counts.reshape(-1, 1))


class TestNumpyBackendBitIdentity:
    """The default backend == the reference expressions, byte for byte."""

    @pytest.mark.parametrize("trial", range(50))
    def test_segment_kernels_bit_identical(self, trial):
        w = segment_workload(trial)
        backend = NumpyBackend()
        n = w["num_nodes"]
        got = backend.scatter_add(w["values"], w["dst"], n)
        assert got.tobytes() == reference_scatter_add(
            w["values"], w["dst"], n).tobytes()
        got = backend.segment_softmax(w["scores"], w["dst"], n)
        assert got.tobytes() == reference_segment_softmax(
            w["scores"], w["dst"], n).tobytes()
        got = backend.sage_aggregate(w["h"], w["src"], w["dst"], n,
                                     edge_weights=w["weights"],
                                     rel_emb=w["rel_emb"])
        assert got.tobytes() == reference_sage_aggregate(
            w["h"], w["src"], w["dst"], n, edge_weights=w["weights"],
            rel_emb=w["rel_emb"]).tobytes()

    @pytest.mark.parametrize("trial", range(10))
    def test_elementwise_and_gemm_bit_identical(self, trial):
        r = np.random.default_rng(trial)
        backend = NumpyBackend()
        a, b = r.normal(size=(17, 9)), r.normal(size=(9, 5))
        assert backend.matmul(a, b).tobytes() == (a @ b).tobytes()
        x = r.normal(size=(11, 7)) * 30
        assert backend.exp(x).tobytes() == np.exp(x).tobytes()
        assert backend.tanh(x).tobytes() == np.tanh(x).tobytes()
        assert backend.sigmoid(x).tobytes() == (
            1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))).tobytes()
        assert backend.reduce_sum(x, axis=1, keepdims=True).tobytes() \
            == x.sum(axis=1, keepdims=True).tobytes()

    def test_default_backend_is_exact_numpy(self):
        backend = get_backend()
        assert isinstance(backend, NumpyBackend)
        assert backend.exact and backend.dtype == np.float64

    def test_tensor_ops_route_through_active_backend(self):
        """Tensor.__matmul__ must consult the process-global backend."""

        class Recording(NumpyBackend):
            calls = 0

            def matmul(self, a, b):
                type(self).calls += 1
                return super().matmul(a, b)

        r = np.random.default_rng(0)
        a, b = Tensor(r.normal(size=(3, 4))), Tensor(r.normal(size=(4, 2)))
        with use_backend(Recording()):
            (a @ b).sum()
        assert Recording.calls == 1
        assert isinstance(get_backend(), NumpyBackend)  # scope restored


class TestAcceleratedKernelTolerance:
    """Fused / blocked kernels vs. the reference, within contract."""

    @pytest.mark.parametrize("trial", range(50))
    def test_fused_f64_within_rounding(self, trial):
        w = segment_workload(trial)
        backend = FusedBackend()
        n = w["num_nodes"]
        np.testing.assert_allclose(
            backend.scatter_add(w["values"], w["dst"], n),
            reference_scatter_add(w["values"], w["dst"], n),
            rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(
            backend.segment_softmax(w["scores"], w["dst"], n),
            reference_segment_softmax(w["scores"], w["dst"], n),
            rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(
            backend.sage_aggregate(w["h"], w["src"], w["dst"], n,
                                   edge_weights=w["weights"],
                                   rel_emb=w["rel_emb"]),
            reference_sage_aggregate(w["h"], w["src"], w["dst"], n,
                                     edge_weights=w["weights"],
                                     rel_emb=w["rel_emb"]),
            rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(
            backend.weighted_gather_scatter(w["h"], w["src"], w["alpha"],
                                            w["dst"], n),
            reference_scatter_add(
                w["h"][w["src"]] * w["alpha"].reshape(-1, 1), w["dst"], n),
            rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(
            backend.scatter_weighted(w["values"], w["alpha"], w["dst"], n),
            reference_scatter_add(
                w["values"] * w["alpha"].reshape(-1, 1), w["dst"], n),
            rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("trial", range(20))
    def test_fused_f32_within_documented_tolerance(self, trial):
        w32 = segment_workload(trial, dtype=np.float32)
        w64 = segment_workload(trial)  # same RNG stream at float64
        backend = FusedBackend(dtype=np.float32)
        n = w32["num_nodes"]
        got = backend.sage_aggregate(w32["h"], w32["src"], w32["dst"], n,
                                     edge_weights=w32["weights"],
                                     rel_emb=w32["rel_emb"])
        want = reference_sage_aggregate(
            w64["h"], w64["src"], w64["dst"], n,
            edge_weights=w64["weights"], rel_emb=w64["rel_emb"])
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_empty_edge_list(self):
        for backend in (NumpyBackend(), FusedBackend(), FastBackend()):
            empty_i = np.zeros(0, dtype=np.int64)
            empty_v = np.zeros((0, 4))
            assert backend.scatter_add(empty_v, empty_i, 3).shape == (3, 4)
            assert not backend.scatter_add(empty_v, empty_i, 3).any()
            assert backend.sage_aggregate(
                np.ones((3, 4)), empty_i, empty_i, 3).shape == (3, 4)
            assert backend.segment_softmax(
                np.zeros(0), empty_i, 3).shape == (0,)

    def test_single_bucket_scatter(self):
        """Every edge landing in one segment (the hub pattern)."""
        r = np.random.default_rng(5)
        values = r.normal(size=(257, 8))
        index = np.zeros(257, dtype=np.int64)
        np.testing.assert_allclose(
            FusedBackend().scatter_add(values, index, 4),
            reference_scatter_add(values, index, 4),
            rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("shape", [(16, 8, 4), (700, 96, 48)])
    def test_blocked_gemm_matches(self, shape):
        """Small shapes take the plain path, big ones the blocked path
        (on multi-core hosts) — both must match ``@`` tightly."""
        m, k, n = shape
        r = np.random.default_rng(9)
        a, b = r.normal(size=(m, k)), r.normal(size=(k, n))
        for backend in (BlockedBackend(), FastBackend()):
            np.testing.assert_allclose(backend.matmul(a, b), a @ b,
                                       rtol=1e-12, atol=1e-12)


class TestBackendPlumbing:
    def test_registry_names(self):
        assert set(BACKENDS) == {"numpy", "fused", "blocked", "fast"}

    def test_make_backend_default_is_shared(self):
        assert make_backend("numpy") is make_backend("numpy")
        assert make_backend("numpy", np.float32) \
            is not make_backend("numpy")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="tensor backend"):
            make_backend("turbo")

    def test_config_validates_backend_fields(self):
        with pytest.raises(ValueError):
            GraphPrompterConfig(tensor_backend="turbo").validate()
        with pytest.raises(ValueError):
            GraphPrompterConfig(inference_dtype="float16").validate()
        with pytest.raises(ValueError):
            GraphPrompterConfig(pool_quantization="int4").validate()

    def test_use_backend_restores_on_error(self):
        before = get_backend()
        with pytest.raises(RuntimeError):
            with use_backend("fast"):
                assert get_backend().name == "fast"
                raise RuntimeError("boom")
        assert get_backend() is before


def _kg_setup(hidden_dim: int = 16):
    r = np.random.default_rng(3)
    n, m = 150, 700
    graph = Graph(
        n, r.integers(0, n, size=m), r.integers(0, n, size=m),
        rel=r.integers(0, 4, size=m),
        node_features=r.normal(size=(n, 6)),
        relation_features=r.normal(size=(4, 6)),
    )
    subs = [
        sample_data_graph(graph, EdgeInput(int(u), int(v), relation=1),
                          num_hops=2, max_nodes=14,
                          rng=np.random.default_rng(100 + i))
        for i, (u, v) in enumerate(zip(r.integers(0, n, 12),
                                       r.integers(0, n, 12)))
    ]
    return graph, subs


def _model_pair(graph, conv: str, **overrides):
    """An exact model and an override twin sharing the same weights."""
    config = GraphPrompterConfig(hidden_dim=16, conv=conv)
    exact = GraphPrompterModel(6, 4, config)
    fast = GraphPrompterModel(6, 4, config.ablate(**overrides))
    fast.load_state_dict(exact.state_dict())
    exact.eval()
    fast.eval()
    return exact, fast


class TestModelBackendEquivalence:
    @pytest.mark.parametrize("conv", ["sage", "gat"])
    def test_fused_f64_inference_matches_tightly(self, conv):
        graph, subs = _kg_setup()
        exact, fast = _model_pair(graph, conv, tensor_backend="fused")
        with no_grad():
            a = exact.encode_subgraphs(subs).data
            b = fast.encode_subgraphs(subs).data
        np.testing.assert_allclose(b, a, rtol=1e-9, atol=1e-11)

    @pytest.mark.parametrize("conv", ["sage", "gat"])
    def test_fast_f32_inference_within_tolerance(self, conv):
        graph, subs = _kg_setup()
        exact, fast = _model_pair(graph, conv, tensor_backend="fast",
                                  inference_dtype="float32")
        with no_grad():
            a = exact.encode_subgraphs(subs).data
            b = fast.encode_subgraphs(subs).data
        assert b.dtype == np.float32
        np.testing.assert_allclose(b, a, rtol=1e-3, atol=1e-4)

    def test_training_path_stays_exact_float64(self):
        """With grad enabled the accelerated backend must NOT engage: the
        forward is byte-identical to the default model's."""
        graph, subs = _kg_setup()
        exact, fast = _model_pair(graph, "sage", tensor_backend="fast",
                                  inference_dtype="float32")
        a = exact.encode_subgraphs(subs).data
        b = fast.encode_subgraphs(subs).data
        assert a.dtype == b.dtype == np.float64
        assert a.tobytes() == b.tobytes()

    def test_task_logits_argmax_agree(self):
        graph, subs = _kg_setup()
        exact, fast = _model_pair(graph, "sage", tensor_backend="fast",
                                  inference_dtype="float32")
        r = np.random.default_rng(0)
        prompts = r.normal(size=(9, 16))
        queries = r.normal(size=(5, 16))
        labels = r.integers(0, 3, size=9)
        with no_grad():
            a = exact.task_logits(Tensor(prompts), labels,
                                  Tensor(queries), 3).data
            b = fast.task_logits(Tensor(prompts), labels,
                                 Tensor(queries), 3).data
        np.testing.assert_array_equal(a.argmax(axis=1), b.argmax(axis=1))

    def test_default_config_installs_no_backend(self):
        model = GraphPrompterModel(6, 4, GraphPrompterConfig(hidden_dim=8))
        assert model._backend is None


class TestInt8PoolQuantization:
    @pytest.mark.parametrize("trial", range(20))
    def test_round_trip_error_bound(self, trial):
        r = np.random.default_rng(trial)
        emb = r.normal(size=(int(r.integers(1, 60)),
                             int(r.integers(1, 48)))) * 3
        pool = quantize_pool(emb)
        assert isinstance(pool, QuantizedPool)
        assert pool.codes.dtype == np.int8
        back = pool.dequantize()
        assert back.dtype == emb.dtype and back.shape == emb.shape
        # Per-row bound: scale = rowmax/127, rounding error ≤ scale/2.
        bound = np.abs(emb).max(axis=1, keepdims=True) / 254 + 1e-12
        assert (np.abs(back - emb) <= bound).all()

    def test_zero_rows_exact(self):
        emb = np.zeros((3, 8))
        emb[1] = np.linspace(-1, 1, 8)
        back = quantize_pool(emb).dequantize()
        assert back[0].tobytes() == emb[0].tobytes()
        assert back[2].tobytes() == emb[2].tobytes()

    def test_at_rest_bytes_ratio(self):
        emb = np.random.default_rng(0).normal(size=(40, 32))
        pool = quantize_pool(emb)
        assert pool_nbytes(emb) / pool_nbytes(pool) >= 3.3
        assert pool_nbytes(emb) == emb.nbytes

    def test_pool_data_pass_through(self):
        emb = np.random.default_rng(1).normal(size=(4, 4))
        assert pool_data(emb) is emb  # ndarray: no copy, no conversion


class TestQuantizedPoolServing:
    def test_top1_agreement(self):
        graph = synthetic_knowledge_graph(num_entities=120, num_relations=4,
                                          num_edges=600, feature_dim=6,
                                          rng=0)
        dataset = Dataset(graph, EDGE_TASK, rng=0)
        episode = sample_episode(dataset, num_ways=3, num_queries=8, rng=5)
        predictions = {}
        for quant in ("none", "int8"):
            config = GraphPrompterConfig(hidden_dim=16,
                                         max_subgraph_nodes=12,
                                         pool_quantization=quant)
            model = GraphPrompterModel(graph.feature_dim,
                                       graph.num_relations, config)
            model.eval()
            with PromptServer(model, dataset, max_batch_size=4,
                              rng=0) as server:
                state = server.open_session("s", episode, shots=3)
                if quant == "int8":
                    assert isinstance(state.candidate_emb, QuantizedPool)
                    assert state.pool_nbytes() * 3.3 <= np.asarray(
                        state.pool_embeddings()).nbytes
                for query in episode.queries:
                    server.submit("s", query)
                results = server.drain()
            predictions[quant] = [r.prediction for r in results]
        agree = np.mean(np.array(predictions["none"])
                        == np.array(predictions["int8"]))
        # int8 error is ≤0.4% of each row's max — ties may flip, the
        # overwhelming majority of answers must not.
        assert agree >= 0.9
