"""Equivalence suite: vectorized hot paths == legacy reference paths.

Three families of guarantees pinned here:

* the CSR frontier samplers are **bit-identical** to the legacy per-node
  Python samplers for the same graph / seeds / hops / cap / RNG state
  (50 random graphs × seeds, plus targeted edge cases) — the property
  ``deterministic_sampling`` serving relies on to flip engines without
  changing a single prediction;
* arena batch assembly is **byte-identical** to the legacy list-append +
  concatenate assembly, with and without reusable arena buffers;
* the fused no-grad inference forward is **bit-identical** to the
  autodiff-graph forward for both convolution types and the task GNN.
"""

import numpy as np
import pytest

from repro.core import GraphPrompterConfig, GraphPrompterModel
from repro.gnn import BatchArena, SubgraphBatch
from repro.graph import EdgeInput, Graph, NodeInput, sample_data_graph
from repro.graph.sampling import bfs_neighborhood, random_walk_neighborhood
from repro.nn import Tensor, no_grad

BATCH_FIELDS = ("node_features", "src", "dst", "rel", "edge_weights",
                "rel_features", "graph_index", "edge_graph_index")


def random_graph(trial: int, max_nodes: int = 200) -> Graph:
    r = np.random.default_rng(trial)
    n = int(r.integers(5, max_nodes))
    m = int(r.integers(0, 6 * n))
    return Graph(
        n, r.integers(0, n, size=m), r.integers(0, n, size=m),
        rel=r.integers(0, 4, size=m),
        node_features=r.normal(size=(n, 4)),
    )


def random_seeds(graph: Graph, trial: int) -> np.ndarray:
    r = np.random.default_rng(1000 + trial)
    return np.unique(r.integers(0, graph.num_nodes,
                                size=int(r.integers(1, 4))))


class TestSamplerEngineEquivalence:
    """Vectorized vs. legacy engines over 50 random graphs × seeds."""

    @pytest.mark.parametrize("trial", range(50))
    def test_bfs_bit_identical_with_rng(self, trial):
        graph = random_graph(trial)
        seeds = random_seeds(graph, trial)
        for num_hops in (0, 1, 2, 3):
            for cap in (4, 9, 33, 10_000):
                legacy = bfs_neighborhood(
                    graph, seeds, num_hops, cap,
                    np.random.default_rng(trial), engine="legacy")
                fast = bfs_neighborhood(
                    graph, seeds, num_hops, cap,
                    np.random.default_rng(trial), engine="vectorized")
                np.testing.assert_array_equal(legacy, fast)

    @pytest.mark.parametrize("trial", range(50))
    def test_random_walk_bit_identical(self, trial):
        graph = random_graph(trial)
        seeds = random_seeds(graph, trial)
        for num_hops in (0, 1, 2, 3):
            for cap in (4, 9, 33, 130, 10_000):
                legacy = random_walk_neighborhood(
                    graph, seeds, num_hops, cap,
                    np.random.default_rng(trial), engine="legacy")
                fast = random_walk_neighborhood(
                    graph, seeds, num_hops, cap,
                    np.random.default_rng(trial), engine="vectorized")
                np.testing.assert_array_equal(legacy, fast)

    @pytest.mark.parametrize("trial", range(20))
    def test_bfs_rngless_truncation_order_stable(self, trial):
        """Without an RNG the cap drop is by largest node id — engine- and
        discovery-order-independent."""
        graph = random_graph(trial)
        seeds = random_seeds(graph, trial)
        for cap in (4, 9, 33):
            legacy = bfs_neighborhood(graph, seeds, 2, cap, None,
                                      engine="legacy")
            fast = bfs_neighborhood(graph, seeds, 2, cap, None,
                                    engine="vectorized")
            np.testing.assert_array_equal(legacy, fast)

    def test_star_hub_overflow(self):
        """A hub row much larger than the cap (the chunked-absorb path)."""
        n = 5000
        hub_src = np.zeros(n - 1, dtype=np.int64)
        hub_dst = np.arange(1, n, dtype=np.int64)
        graph = Graph(n, hub_src, hub_dst,
                      node_features=np.zeros((n, 2)))
        for fn in (bfs_neighborhood, random_walk_neighborhood):
            legacy = fn(graph, np.array([0]), 2, 64,
                        np.random.default_rng(3), engine="legacy")
            fast = fn(graph, np.array([0]), 2, 64,
                      np.random.default_rng(3), engine="vectorized")
            np.testing.assert_array_equal(legacy, fast)

    def test_sample_data_graph_engines_agree(self):
        graph = random_graph(7)
        dp = NodeInput(3)
        for method in ("bfs", "random_walk"):
            a = sample_data_graph(graph, dp, num_hops=2, max_nodes=12,
                                  rng=np.random.default_rng(0),
                                  method=method, engine="legacy")
            b = sample_data_graph(graph, dp, num_hops=2, max_nodes=12,
                                  rng=np.random.default_rng(0),
                                  method=method, engine="vectorized")
            np.testing.assert_array_equal(a.nodes, b.nodes)
            np.testing.assert_array_equal(a.src, b.src)
            np.testing.assert_array_equal(a.dst, b.dst)

    def test_unknown_engine_rejected(self):
        graph = random_graph(0)
        with pytest.raises(ValueError, match="engine"):
            bfs_neighborhood(graph, np.array([0]), 1, engine="turbo")

    def test_scratch_mask_left_clean(self):
        """The borrowed visited scratch must be fully reset after a call."""
        graph = random_graph(11)
        adj = graph.undirected_adjacency
        for fn in (bfs_neighborhood, random_walk_neighborhood):
            fn(graph, np.array([1]), 3, 8, np.random.default_rng(0),
               engine="vectorized")
            assert not adj.visited_scratch().any()

    @pytest.mark.parametrize("method", ["random_walk", "bfs"])
    def test_deterministic_sampling_engine_flip(self, method):
        """Under ``deterministic_sampling`` the engine flag must not change
        a single sampled subgraph — the serving bit-compat contract."""
        from repro.core.prompt_generator import PromptGenerator

        graph = random_graph(23)
        datapoints = [NodeInput(i % graph.num_nodes) for i in range(12)]
        datapoints += [EdgeInput(1, 2, relation=0), EdgeInput(3, 0, relation=2)]
        subgraph_sets = {}
        for engine in ("legacy", "vectorized"):
            config = GraphPrompterConfig(
                sampling_method=method, sampling_engine=engine,
                num_hops=2, max_subgraph_nodes=10,
                deterministic_sampling=True)
            generator = PromptGenerator(graph, config, rng=0,
                                        deterministic=True, salt=7)
            subgraph_sets[engine] = generator.subgraphs_for(datapoints)
        for a, b in zip(subgraph_sets["legacy"], subgraph_sets["vectorized"]):
            np.testing.assert_array_equal(a.nodes, b.nodes)
            np.testing.assert_array_equal(a.src, b.src)
            np.testing.assert_array_equal(a.dst, b.dst)
            np.testing.assert_array_equal(a.rel, b.rel)
            np.testing.assert_array_equal(a.centers, b.centers)


def _kg_subgraphs(count: int = 12, trial: int = 0):
    r = np.random.default_rng(trial)
    n, m = 150, 700
    graph = Graph(
        n, r.integers(0, n, size=m), r.integers(0, n, size=m),
        rel=r.integers(0, 4, size=m),
        node_features=r.normal(size=(n, 6)),
        relation_features=r.normal(size=(4, 6)),
    )
    subs = [
        sample_data_graph(graph, EdgeInput(int(u), int(v), relation=1),
                          num_hops=2, max_nodes=14,
                          rng=np.random.default_rng(trial * 100 + i))
        for i, (u, v) in enumerate(zip(r.integers(0, n, count),
                                       r.integers(0, n, count)))
    ]
    return subs


def _assert_batches_byte_identical(a: SubgraphBatch, b: SubgraphBatch):
    for field in BATCH_FIELDS:
        x, y = getattr(a, field), getattr(b, field)
        assert (x is None) == (y is None), field
        if x is not None:
            assert x.dtype == y.dtype, field
            assert x.shape == y.shape, field
            assert x.tobytes() == y.tobytes(), field
    assert a.num_graphs == b.num_graphs
    for ca, cb in zip(a.centers, b.centers):
        assert ca.dtype == cb.dtype
        np.testing.assert_array_equal(ca, cb)


class TestArenaBatchingEquivalence:
    @pytest.mark.parametrize("trial", range(10))
    def test_arena_assembly_byte_identical(self, trial):
        subs = _kg_subgraphs(trial=trial)
        # Half the subgraphs carry reconstruction weights.
        subs = [
            s.with_edge_weights(
                np.random.default_rng(trial).random(s.num_edges))
            if i % 2 else s
            for i, s in enumerate(subs)
        ]
        reference = SubgraphBatch.from_subgraphs_concat(subs)
        fresh = SubgraphBatch.from_subgraphs(subs)
        _assert_batches_byte_identical(reference, fresh)
        arena = BatchArena()
        for _ in range(3):  # reuse across "ticks"
            pooled = SubgraphBatch.from_subgraphs(subs, arena=arena)
            _assert_batches_byte_identical(reference, pooled)

    def test_arena_buffers_are_reused(self):
        subs = _kg_subgraphs()
        arena = BatchArena()
        first = SubgraphBatch.from_subgraphs(subs, arena=arena)
        grown = arena.allocated_bytes
        second = SubgraphBatch.from_subgraphs(subs, arena=arena)
        assert arena.allocated_bytes == grown  # steady state: no growth
        # Same backing memory handed out again.
        assert np.shares_memory(first.node_features, second.node_features)

    def test_arena_grows_for_larger_batches(self):
        small = _kg_subgraphs(count=4)
        arena = BatchArena()
        SubgraphBatch.from_subgraphs(small, arena=arena)
        before = arena.allocated_bytes
        SubgraphBatch.from_subgraphs(_kg_subgraphs(count=16), arena=arena)
        assert arena.allocated_bytes > before

    def test_mixed_rel_features_still_rejected(self):
        subs = _kg_subgraphs(count=4)
        bare = Graph(5, np.array([0, 1]), np.array([1, 2]),
                     node_features=np.zeros((5, 6)))
        no_rel = sample_data_graph(bare, NodeInput(0), num_hops=1,
                                   max_nodes=5)
        assert no_rel.num_edges > 0
        with pytest.raises(ValueError, match="relation features"):
            SubgraphBatch.from_subgraphs(subs + [no_rel])
        with pytest.raises(ValueError, match="relation features"):
            SubgraphBatch.from_subgraphs_concat(subs + [no_rel])


class TestFusedInferenceEquivalence:
    @pytest.mark.parametrize("conv", ["sage", "gat"])
    def test_encoder_fused_bit_identical(self, conv):
        subs = _kg_subgraphs()
        config = GraphPrompterConfig(hidden_dim=16, conv=conv)
        model = GraphPrompterModel(6, 4, config)
        model.eval()
        with_graph = model.encode_subgraphs(subs).data
        with no_grad():
            fused = model.encode_subgraphs(subs).data
        assert with_graph.tobytes() == fused.tobytes()

    def test_task_logits_fused_bit_identical(self):
        model = GraphPrompterModel(6, 4, GraphPrompterConfig(hidden_dim=16))
        model.eval()
        r = np.random.default_rng(0)
        prompts = r.normal(size=(9, 16))
        queries = r.normal(size=(5, 16))
        labels = r.integers(0, 3, size=9)
        with_graph = model.task_logits(Tensor(prompts), labels,
                                       Tensor(queries), 3).data
        with no_grad():
            fused = model.task_logits(Tensor(prompts), labels,
                                      Tensor(queries), 3).data
        assert with_graph.tobytes() == fused.tobytes()

    def test_no_grad_ops_skip_graph_bookkeeping(self):
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        with no_grad():
            out = (x @ x).relu().sum()
        assert out._backward is None
        assert out._parents == ()
        assert not out.requires_grad
