"""Tests for the async multi-tenant gateway (admission, QoS, hot swap)."""

import asyncio

import pytest

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.datasets import Dataset, EDGE_TASK
from repro.datasets.synthetic import synthetic_knowledge_graph
from repro.serving import (
    AdmissionController,
    DeadlineAwareScheduler,
    MicroBatchScheduler,
    Overloaded,
    Priority,
    PromptServer,
    ServingGateway,
    TokenBucket,
)
from repro.serving.qos import (
    SHED_QUEUE_FULL,
    SHED_QUOTA_EXHAUSTED,
    SHED_RATE_LIMITED,
    TenantLedger,
)


class FakeClock:
    """Manually advanced clock for deterministic QoS timing."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# QoS primitives
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()
        assert bucket.seconds_until() == pytest.approx(0.5)
        clock.advance(0.5)  # refills one token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_zero_rate_means_unlimited(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=FakeClock())
        assert all(bucket.try_acquire() for _ in range(100))
        assert bucket.seconds_until() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionController:
    def test_class_occupancy_thresholds(self):
        admission = AdmissionController(max_queue=8, clock=FakeClock())
        # background sheds at 1/4 of the bound, batch at 1/2,
        # interactive only at the full bound.
        assert admission.admit("t", Priority.BACKGROUND, 1) is None
        assert (admission.admit("t", Priority.BACKGROUND, 2)
                == SHED_QUEUE_FULL)
        assert admission.admit("t", Priority.BATCH, 3) is None
        assert admission.admit("t", Priority.BATCH, 4) == SHED_QUEUE_FULL
        assert admission.admit("t", Priority.INTERACTIVE, 7) is None
        assert (admission.admit("t", Priority.INTERACTIVE, 8)
                == SHED_QUEUE_FULL)

    def test_rate_limit_and_retry_after(self):
        clock = FakeClock()
        admission = AdmissionController(max_queue=100, tenant_rate_qps=1.0,
                                        tenant_burst=2.0, clock=clock)
        assert admission.admit("t", Priority.INTERACTIVE, 0) is None
        assert admission.admit("t", Priority.INTERACTIVE, 0) is None
        assert (admission.admit("t", Priority.INTERACTIVE, 0)
                == SHED_RATE_LIMITED)
        assert (admission.retry_after("t", SHED_RATE_LIMITED)
                == pytest.approx(1.0))
        clock.advance(1.0)
        assert admission.admit("t", Priority.INTERACTIVE, 0) is None

    def test_queue_full_does_not_spend_tokens(self):
        admission = AdmissionController(max_queue=4, tenant_rate_qps=1.0,
                                        tenant_burst=1.0, clock=FakeClock())
        assert (admission.admit("t", Priority.INTERACTIVE, 4)
                == SHED_QUEUE_FULL)
        # The bucket still holds its token: a later in-bounds request
        # is admitted instead of double-penalised.
        assert admission.admit("t", Priority.INTERACTIVE, 0) is None

    def test_quota_exhaustion_is_per_tenant(self):
        admission = AdmissionController(max_queue=100, tenant_quota=2,
                                        clock=FakeClock())
        assert admission.admit("a", Priority.BATCH, 0) is None
        assert admission.admit("a", Priority.BATCH, 0) is None
        assert (admission.admit("a", Priority.BATCH, 0)
                == SHED_QUOTA_EXHAUSTED)
        assert (admission.retry_after("a", SHED_QUOTA_EXHAUSTED)
                == float("inf"))
        assert admission.admit("b", Priority.BATCH, 0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=1, tenant_quota=-1)


class TestTenantLedger:
    def test_percentiles_and_shed_rate(self):
        ledger = TenantLedger(tenant_id="t")
        for _ in range(8):
            ledger.record_submit(0.0)
        for reason in (SHED_RATE_LIMITED, SHED_QUEUE_FULL,
                       SHED_QUOTA_EXHAUSTED):
            ledger.record_shed(reason)
        for wait in (0.1, 0.2, 0.3, 0.4):
            ledger.record_complete(wait, False, now=1.0)
        ledger.record_complete(5.0, True, now=2.0)
        stats = ledger.snapshot()
        assert stats.shed == 3
        assert stats.shed_rate == pytest.approx(3 / 8)
        assert stats.deadline_misses == 1
        assert stats.wait_p50_s == pytest.approx(0.3)
        assert stats.qps == pytest.approx(5 / 2.0)

    def test_wait_window_bounds_memory(self):
        ledger = TenantLedger(tenant_id="t", wait_window=4)
        for i in range(10):
            ledger.record_complete(float(i), False, now=float(i))
        assert len(ledger._waits) == 4
        assert ledger.snapshot().wait_p50_s == pytest.approx(7.5)


class TestDeadlineAwareScheduler:
    def _point(self):
        from repro.graph import NodeInput

        return NodeInput(0)

    def test_deadline_flush_fires_before_max_wait(self):
        clock = FakeClock()
        scheduler = DeadlineAwareScheduler(max_batch_size=8, max_wait_s=10.0,
                                           flush_fraction=0.5, clock=clock)
        scheduler.submit("s", self._point(), deadline=clock() + 1.0)
        assert not scheduler.ready()
        assert scheduler.next_flush_at() == pytest.approx(0.5)
        clock.advance(0.49)
        assert not scheduler.ready()
        clock.advance(0.02)
        assert scheduler.ready()  # half the budget spent waiting

    def test_no_deadline_falls_back_to_max_wait(self):
        clock = FakeClock()
        scheduler = DeadlineAwareScheduler(max_batch_size=8, max_wait_s=2.0,
                                           flush_fraction=0.5, clock=clock)
        scheduler.submit("s", self._point())
        assert scheduler.next_flush_at() == pytest.approx(2.0)
        clock.advance(1.9)
        assert not scheduler.ready()
        clock.advance(0.2)
        assert scheduler.ready()

    def test_equivalent_to_base_policy_when_shallow(self):
        """flush_fraction=1 + deadline=submit+max_wait == base scheduler.

        Scanned over a grid of submit/advance times: at every instant the
        two policies agree on ``ready()``, so shallow queues drain on the
        exact same schedule either way.
        """
        for gap in (0.0, 0.3, 1.1, 2.4):
            clock_a, clock_b = FakeClock(), FakeClock()
            base = MicroBatchScheduler(max_batch_size=4, max_wait_s=1.0,
                                       clock=clock_a)
            deadline = DeadlineAwareScheduler(max_batch_size=4,
                                              max_wait_s=1.0,
                                              flush_fraction=1.0,
                                              clock=clock_b)
            base.submit("s", self._point())
            deadline.submit("s", self._point(),
                            deadline=clock_b() + 1.0)
            for _ in range(12):
                assert base.ready() == deadline.ready()
                clock_a.advance(gap / 6 + 0.1)
                clock_b.advance(gap / 6 + 0.1)
            assert base.ready() and deadline.ready()

    def test_batch_size_release_unchanged(self):
        clock = FakeClock()
        scheduler = DeadlineAwareScheduler(max_batch_size=2, max_wait_s=9.0,
                                           flush_fraction=0.5, clock=clock)
        scheduler.submit("s", self._point(), deadline=clock() + 9.0)
        assert not scheduler.ready()
        scheduler.submit("s", self._point(), deadline=clock() + 9.0)
        assert scheduler.ready()

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineAwareScheduler(flush_fraction=0.0)
        with pytest.raises(ValueError):
            DeadlineAwareScheduler(flush_fraction=1.5)


# ----------------------------------------------------------------------
# Gateway integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served():
    """A briefly pre-trained model + dataset shared by the gateway tests."""
    graph = synthetic_knowledge_graph(300, 8, 2400, rng=0, name="kg-gate")
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    config = GraphPrompterConfig(hidden_dim=12, max_subgraph_nodes=10,
                                 num_gnn_layers=2)
    model = GraphPrompterModel(dataset.graph.feature_dim,
                               dataset.graph.num_relations, config)
    Pretrainer(model, dataset, PretrainConfig(steps=60, num_ways=4),
               rng=0).train()
    return dataset, config, model


def burst_plan(dataset, num_queries=6, seed=0):
    """Fixed tenant/session/episode mix for the burst tests."""
    episodes = [sample_episode(dataset, num_ways=3,
                               num_queries=num_queries, rng=seed * 100 + i)
                for i in range(3)]
    return [
        ("tenant-i", Priority.INTERACTIVE, "si", episodes[0]),
        ("tenant-b", Priority.BATCH, "sb", episodes[1]),
        ("tenant-g", Priority.BACKGROUND, "sg", episodes[2]),
    ]


async def replay_burst(gateway, plan, rounds, per_round):
    """Submit per_round queries per session each round, flush between.

    Returns (outcome map, admitted keys in submission order).
    """
    outcomes, admitted, futures = {}, [], {}
    for round_id in range(rounds):
        for offset in range(per_round):
            q = round_id * per_round + offset
            for _, _, session_id, episode in plan:
                key = (session_id, q)
                out = gateway.submit_nowait(session_id, episode.queries[q])
                if isinstance(out, Overloaded):
                    outcomes[key] = out
                else:
                    futures[key] = out
                    admitted.append(key)
        await gateway.flush()
    await gateway.flush()
    for key, future in futures.items():
        assert future.done(), f"{key} hung"
        outcomes[key] = future.result()
    return outcomes, admitted


def direct_replay(model, dataset, plan, admitted, seed=0):
    """Reference predictions: same sessions, per-query, no gateway."""
    server = PromptServer(model, dataset, max_batch_size=1, rng=seed)
    episodes = {}
    for _, _, session_id, episode in plan:
        server.open_session(session_id, episode)
        episodes[session_id] = episode
    reference = {}
    for session_id, q in admitted:
        server.submit(session_id, episodes[session_id].queries[q])
        (result,) = server.drain()
        reference[(session_id, q)] = result.prediction
    return reference


class TestGateway:
    def _gateway(self, model, dataset, seed=0, **knobs):
        server = PromptServer(model, dataset, rng=seed)
        return ServingGateway(server, auto_drain=False, **knobs)

    def test_admitted_predictions_bit_identical_to_direct(self, served):
        dataset, config, model = served
        plan = burst_plan(dataset)

        async def main():
            gateway = self._gateway(model, dataset, max_batch_size=4,
                                    max_queue=1024)
            for tenant, priority, session_id, episode in plan:
                gateway.open_session(tenant, session_id, episode,
                                     priority=priority)
            outcomes, admitted = await replay_burst(gateway, plan, 2, 3)
            await gateway.close()
            return outcomes, admitted

        outcomes, admitted = run(main())
        assert len(admitted) == 18  # nothing shed at this scale
        reference = direct_replay(model, dataset, plan, admitted)
        for key in admitted:
            assert outcomes[key].ok
            assert outcomes[key].prediction == reference[key]

    def test_shed_decisions_deterministic_under_seeded_burst(self, served):
        dataset, config, model = served

        def one_run():
            plan = burst_plan(dataset)

            async def main():
                gateway = self._gateway(model, dataset, max_queue=4,
                                        max_batch_size=4)
                for tenant, priority, session_id, episode in plan:
                    gateway.open_session(tenant, session_id, episode,
                                         priority=priority)
                outcomes, admitted = await replay_burst(gateway, plan, 2, 3)
                stats = gateway.stats
                await gateway.close()
                return outcomes, admitted, stats

            return run(main())

        first_out, first_adm, first_stats = one_run()
        second_out, second_adm, second_stats = one_run()
        assert first_adm == second_adm
        sheds = {key: out.reason for key, out in first_out.items()
                 if isinstance(out, Overloaded)}
        assert sheds  # the tiny queue actually shed something
        assert sheds == {key: out.reason
                         for key, out in second_out.items()
                         if isinstance(out, Overloaded)}
        assert ([(t.tenant_id, t.admitted, t.shed)
                 for t in first_stats.tenants]
                == [(t.tenant_id, t.admitted, t.shed)
                    for t in second_stats.tenants])
        predictions = {key: out.prediction
                       for key, out in first_out.items()
                       if not isinstance(out, Overloaded)}
        assert predictions == {key: out.prediction
                               for key, out in second_out.items()
                               if not isinstance(out, Overloaded)}

    def test_flooding_tenant_never_starves_interactive(self, served):
        """Quota + class shedding isolate tenants: a batch tenant
        hammering the queue cannot push out another tenant's
        interactive traffic."""
        dataset, config, model = served
        episodes = [sample_episode(dataset, num_ways=3, num_queries=6,
                                   rng=50 + i) for i in range(2)]

        async def main():
            gateway = self._gateway(model, dataset, max_queue=8,
                                    max_batch_size=4)
            gateway.open_session("calm", "si", episodes[0],
                                 priority=Priority.INTERACTIVE)
            gateway.open_session("flood", "sb", episodes[1],
                                 priority=Priority.BATCH)
            flood_outcomes, calm_futures = [], []
            for q in range(6):
                # The flooder bursts 6 copies of its query — past the
                # batch class's half-queue allowance — before the calm
                # tenant's single interactive request each round.
                for _ in range(6):
                    flood_outcomes.append(
                        gateway.submit_nowait("sb", episodes[1].queries[q]))
                calm_futures.append(
                    gateway.submit_nowait("si", episodes[0].queries[q]))
                await gateway.flush()
            stats = gateway.stats
            await gateway.close()
            return flood_outcomes, calm_futures, stats

        flood_outcomes, calm_futures, stats = run(main())
        by_tenant = {t.tenant_id: t for t in stats.tenants}
        assert by_tenant["flood"].shed > 0
        assert by_tenant["calm"].shed == 0
        assert by_tenant["calm"].admitted == 6
        for future in calm_futures:
            assert not isinstance(future, Overloaded)
            assert future.result().ok

    def test_deadline_flush_serves_shallow_queue(self, served):
        """A single queued request is released by deadline budget, not
        max-wait, and the answer equals the direct per-query one."""
        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=2, rng=7)
        clock = FakeClock()

        async def main():
            server = PromptServer(model, dataset, rng=0, clock=clock)
            gateway = ServingGateway(server, auto_drain=False,
                                     max_wait_s=60.0, flush_fraction=0.5,
                                     deadlines={Priority.INTERACTIVE: 1.0},
                                     clock=clock)
            gateway.open_session("t", "s", episode)
            future = gateway.submit_nowait("s", episode.queries[0])
            assert await gateway.pump() == 0  # budget not yet half spent
            clock.advance(0.51)
            assert await gateway.pump() == 1  # deadline flush, not max-wait
            await gateway.close()
            return future.result()

        outcome = run(main())
        assert outcome.ok and not outcome.deadline_missed
        reference = direct_replay(
            model, dataset,
            [("t", Priority.INTERACTIVE, "s", episode)], [("s", 0)])
        assert outcome.prediction == reference[("s", 0)]

    def test_deadline_miss_is_counted(self, served):
        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=2, rng=8)
        clock = FakeClock()

        async def main():
            server = PromptServer(model, dataset, rng=0, clock=clock)
            gateway = ServingGateway(server, auto_drain=False,
                                     max_wait_s=60.0,
                                     deadlines={Priority.INTERACTIVE: 1.0},
                                     clock=clock)
            gateway.open_session("t", "s", episode)
            future = gateway.submit_nowait("s", episode.queries[0])
            clock.advance(5.0)  # way past the whole budget
            await gateway.flush()
            stats = gateway.stats
            await gateway.close()
            return future.result(), stats

        outcome, stats = run(main())
        assert outcome.ok and outcome.deadline_missed
        assert stats.tenants[0].deadline_misses == 1

    def test_overload_rejections_are_typed_and_immediate(self, served):
        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=4, rng=9)

        async def main():
            gateway = self._gateway(model, dataset, max_queue=2)
            gateway.open_session("t", "s", episode,
                                 priority=Priority.BACKGROUND)
            outcomes = [gateway.submit_nowait("s", episode.queries[0])
                        for _ in range(4)]
            await gateway.flush()
            await gateway.close()
            return outcomes

        outcomes = run(main())
        shed = [o for o in outcomes if isinstance(o, Overloaded)]
        assert shed and all(o.reason == SHED_QUEUE_FULL for o in shed)
        assert all(not o.ok for o in shed)
        assert all(o.retry_after_s >= 0.0 for o in shed)

    def test_rate_limited_tenant_quota_accounting(self, served):
        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=4, rng=10)

        async def main():
            gateway = self._gateway(model, dataset, tenant_rate_qps=1.0,
                                    tenant_burst=2.0)
            gateway.open_session("t", "s", episode)
            outcomes = [gateway.submit_nowait("s", episode.queries[q])
                        for q in range(4)]
            await gateway.flush()
            stats = gateway.stats
            await gateway.close()
            return outcomes, stats

        outcomes, stats = run(main())
        shed = [o for o in outcomes if isinstance(o, Overloaded)]
        assert len(shed) == 2
        assert all(o.reason == SHED_RATE_LIMITED for o in shed)
        assert all(o.retry_after_s > 0 for o in shed)
        tenant = stats.tenants[0]
        assert tenant.admitted == 2
        assert tenant.tokens_consumed == pytest.approx(2.0)
        assert tenant.shed_rate == pytest.approx(0.5)

    def test_mixed_priority_tenant_rejected(self, served):
        """QoS accounting is keyed by the tenant's class — one tenant
        cannot silently split across classes."""
        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=2, rng=12)

        async def main():
            gateway = self._gateway(model, dataset)
            gateway.open_session("t", "s1", episode,
                                 priority=Priority.BATCH)
            with pytest.raises(ValueError, match="share one priority"):
                gateway.open_session("t", "s2", episode,
                                     priority=Priority.INTERACTIVE)
            gateway.open_session("t", "s3", episode,
                                 priority=Priority.BATCH)  # same class ok
            await gateway.close()

        run(main())

    def test_expired_session_counts_as_error_not_completion(self, served):
        """A request whose session expired resolves with an error and
        lands in the ledger's error counter, not completed/waits."""
        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=2, rng=13)
        clock = FakeClock()

        async def main():
            server = PromptServer(model, dataset, session_ttl_s=10.0,
                                  rng=0, clock=clock)
            gateway = ServingGateway(server, auto_drain=False, clock=clock)
            gateway.open_session("t", "s", episode)
            future = gateway.submit_nowait("s", episode.queries[0])
            clock.advance(11.0)  # session expires while queued
            await gateway.flush()
            stats = gateway.stats
            await gateway.close()
            return future.result(), stats

        outcome, stats = run(main())
        assert not outcome.ok
        assert outcome.error == "session-expired"
        tenant = stats.tenants[0]
        assert tenant.errors == 1
        assert tenant.completed == 0
        assert tenant.admitted == 1
        assert tenant.qps == 0.0  # no successes → no throughput claim

    def test_server_failure_settles_futures_never_hangs(self, served):
        """If the server hot path raises, the popped batch's futures
        settle with a typed error (never-hang contract) and the gateway
        keeps serving afterwards."""
        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=4, rng=14)

        async def main():
            server = PromptServer(model, dataset, rng=0)
            gateway = ServingGateway(server, auto_drain=False)
            gateway.open_session("t", "s", episode)
            real_drain = server.drain
            server.drain = lambda: (_ for _ in ()).throw(
                RuntimeError("worker pool died"))
            doomed = gateway.submit_nowait("s", episode.queries[0])
            with pytest.raises(RuntimeError, match="worker pool died"):
                await gateway.flush()
            assert doomed.done()
            server.drain = real_drain
            healthy = gateway.submit_nowait("s", episode.queries[1])
            await gateway.flush()
            stats = gateway.stats
            await gateway.close()
            return doomed.result(), healthy.result(), stats

        failed, ok, stats = run(main())
        assert not failed.ok
        assert failed.error.startswith("internal: RuntimeError")
        assert ok.ok
        tenant = stats.tenants[0]
        assert tenant.errors == 1 and tenant.completed == 1

    def test_unknown_session_raises_descriptive_keyerror(self, served):
        dataset, config, model = served

        async def main():
            gateway = self._gateway(model, dataset)
            with pytest.raises(KeyError, match="open_session"):
                gateway.submit_nowait("ghost", None)
            await gateway.close()

        run(main())

    def test_auto_drain_background_loop(self, served):
        """The default mode: no manual pumping, submit() just resolves."""
        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=4, rng=11)

        async def main():
            server = PromptServer(model, dataset, rng=0)
            gateway = ServingGateway(
                server, deadlines={Priority.INTERACTIVE: 0.02})
            gateway.open_session("t", "s", episode)
            results = []
            for q in range(4):
                results.append(await gateway.submit("s",
                                                    episode.queries[q]))
            await gateway.close()
            return results

        results = run(main())
        assert all(r.ok for r in results)
        reference = direct_replay(
            model, dataset,
            [("t", Priority.INTERACTIVE, "s", episode)],
            [("s", q) for q in range(4)])
        assert ([r.prediction for r in results]
                == [reference[("s", q)] for q in range(4)])


# ----------------------------------------------------------------------
# Graceful drain / hot swap
# ----------------------------------------------------------------------
def mutable_setup():
    graph = synthetic_knowledge_graph(200, 6, 1600, rng=3, name="kg-mut")
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    config = GraphPrompterConfig(hidden_dim=8, max_subgraph_nodes=10,
                                 mutable_graph=True)
    model = GraphPrompterModel(graph.feature_dim, graph.num_relations,
                               config)
    model.eval()
    return graph, dataset, config, model


class TestGracefulSwap:
    def test_update_graph_drains_inflight_then_matches_cold(self):
        """Queued requests drain pre-mutation (zero drops); post-mutation
        fresh sessions answer exactly like a cold server rebuilt from the
        final live edge list."""
        from repro.graph import GraphUpdate

        graph, dataset, config, model = mutable_setup()
        episode = sample_episode(dataset, num_ways=3, num_queries=6, rng=21)
        update = GraphUpdate(add_src=[0, 1, 2], add_dst=[3, 4, 5],
                             add_rel=[0, 1, 2])

        async def main():
            server = PromptServer(model, dataset, max_batch_size=4, rng=0)
            gateway = ServingGateway(server, auto_drain=False,
                                     max_batch_size=4)
            gateway.open_session("t", "s", episode)
            queued = [gateway.submit_nowait("s", episode.queries[q])
                      for q in range(3)]
            assert gateway.queue_depth() == 3
            applied = await gateway.update_graph(update)
            # Graceful drain: everything queued resolved *before* the
            # mutation landed — zero dropped in-flight requests.
            assert gateway.queue_depth() == 0
            assert all(f.done() and f.result().ok for f in queued)
            assert applied.touched_nodes.size > 0
            post = []
            for q in range(3, 6):
                fut = gateway.submit_nowait("s", episode.queries[q])
                await gateway.flush()
                post.append(fut.result())
            stats = gateway.stats
            await gateway.close()
            return [f.result().prediction for f in queued], post, stats

        pre_preds, post, stats = run(main())
        assert stats.graph_updates == 1
        assert all(r.ok for r in post)

        # Cold reference on the mutated graph: same episode, fresh
        # session, the three post-mutation queries.
        cold_dataset = Dataset(graph.rebuild(), EDGE_TASK, rng=0)
        cold = PromptServer(model, cold_dataset, max_batch_size=4, rng=0)
        cold.open_session("s", episode)
        for q in range(3):
            cold.submit("s", episode.queries[q])
        cold.drain()  # replay the pre-mutation traffic for cache parity
        cold_preds = []
        for q in range(3, 6):
            cold.submit("s", episode.queries[q])
            cold_preds.extend(r.prediction for r in cold.drain())
        assert [r.prediction for r in post] == cold_preds

    def test_reload_model_hot_swap_matches_cold_server(self, served):
        """After a weight hot-swap, answers equal a cold server built
        with the new weights (sessions re-anchored, caches purged)."""
        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=6, rng=22)

        # A differently-trained twin provides the new weights.
        other = GraphPrompterModel(dataset.graph.feature_dim,
                                   dataset.graph.num_relations, config)
        Pretrainer(other, dataset, PretrainConfig(steps=30, num_ways=4),
                   rng=9).train()
        new_state = other.state_dict()

        swap_model = GraphPrompterModel(dataset.graph.feature_dim,
                                        dataset.graph.num_relations,
                                        config)
        swap_model.load_state_dict(model.state_dict())

        async def main():
            server = PromptServer(swap_model, dataset, max_batch_size=4,
                                  rng=0)
            gateway = ServingGateway(server, auto_drain=False,
                                     max_batch_size=4)
            gateway.open_session("t", "s", episode)
            queued = [gateway.submit_nowait("s", episode.queries[q])
                      for q in range(3)]
            await gateway.reload_model(new_state)
            assert all(f.done() and f.result().ok for f in queued)
            post = []
            for q in range(3, 6):
                fut = gateway.submit_nowait("s", episode.queries[q])
                await gateway.flush()
                post.append(fut.result())
            await gateway.close()
            return post

        post = run(main())
        cold_model = GraphPrompterModel(dataset.graph.feature_dim,
                                        dataset.graph.num_relations,
                                        config)
        cold_model.load_state_dict(new_state)
        cold = PromptServer(cold_model, dataset, max_batch_size=4, rng=0)
        cold.open_session("s", episode)
        cold_preds = []
        for q in range(3, 6):
            cold.submit("s", episode.queries[q])
            cold_preds.extend(r.prediction for r in cold.drain())
        assert [r.prediction for r in post] == cold_preds


class TestStatsWiring:
    def test_server_stats_tenants_default_empty(self, served):
        dataset, config, model = served
        server = PromptServer(model, dataset, rng=0)
        assert server.stats.tenants == ()

    def test_gateway_stats_shard_attribution(self, served):
        """Per-shard work flows up into the tenant ledgers."""
        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=4, rng=33)

        async def main():
            server = PromptServer(model, dataset, rng=0, num_shards=2,
                                  num_workers=1, worker_backend="serial")
            gateway = ServingGateway(server, auto_drain=False)
            gateway.open_session("t", "s", episode)
            for q in range(4):
                gateway.submit_nowait("s", episode.queries[q])
            await gateway.flush()
            stats = gateway.stats
            await gateway.close()
            server.close()
            return stats

        stats = run(main())
        assert len(stats.shards) == 2
        tenant = stats.tenants[0]
        # All query-time shard requests are attributed to the only
        # tenant: total routed minus the pool-encoding pass that ran at
        # open_session (before any query was admitted).
        assert tenant.shard_requests > 0
        assert tenant.shard_requests <= sum(c.requests
                                            for c in stats.shards)
        assert tenant.completed == 4


# ----------------------------------------------------------------------
# Shutdown under load: complete or typed Unavailable, never hang
# ----------------------------------------------------------------------
class TestShutdownUnderLoad:
    def test_abort_settles_every_inflight_request(self, served):
        from repro.serving import Unavailable
        from repro.serving.qos import UNAVAILABLE_SHUTDOWN

        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=6, rng=41)

        async def main():
            server = PromptServer(model, dataset, rng=0)
            gateway = ServingGateway(server, auto_drain=False)
            gateway.open_session("t", "s", episode, priority=Priority.BATCH)
            queued = [gateway.submit_nowait("s", episode.queries[q])
                      for q in range(4)]
            settled = gateway.abort()
            assert settled == 4
            for future in queued:
                assert future.done()
                outcome = future.result()
                assert isinstance(outcome, Unavailable)
                assert not outcome.ok
                assert outcome.reason == UNAVAILABLE_SHUTDOWN
                assert outcome.tenant_id == "t"
                assert outcome.priority == Priority.BATCH
            assert gateway.closed
            assert gateway.abort() == 0  # idempotent
            with pytest.raises(RuntimeError):
                gateway.submit_nowait("s", episode.queries[4])
            await gateway.close()  # close after abort is a clean no-op

        run(main())

    def test_close_without_drain_settles_instead_of_serving(self, served):
        from repro.serving import Unavailable

        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=6, rng=42)

        async def main():
            server = PromptServer(model, dataset, rng=0)
            gateway = ServingGateway(server, auto_drain=False)
            gateway.open_session("t", "s", episode)
            queued = [gateway.submit_nowait("s", episode.queries[q])
                      for q in range(3)]
            await asyncio.wait_for(gateway.close(drain=False), timeout=30)
            assert all(f.done() for f in queued)
            assert all(isinstance(f.result(), Unavailable) for f in queued)

        run(main())

    def test_close_with_drain_completes_inflight(self, served):
        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=6, rng=43)

        async def main():
            server = PromptServer(model, dataset, rng=0)
            gateway = ServingGateway(server, auto_drain=False)
            gateway.open_session("t", "s", episode)
            queued = [gateway.submit_nowait("s", episode.queries[q])
                      for q in range(4)]
            await asyncio.wait_for(gateway.close(), timeout=60)
            # Graceful path: everything admitted was *served*, not voided.
            assert all(f.done() and f.result().ok for f in queued)

        run(main())

    def test_abort_with_background_drain_running(self, served):
        """Abort racing the auto-drain pump: every future still settles
        (served or typed Unavailable), and the loop shuts down clean."""
        dataset, config, model = served
        episode = sample_episode(dataset, num_ways=3, num_queries=8, rng=44)

        async def main():
            server = PromptServer(model, dataset, rng=0)
            gateway = ServingGateway(server, max_batch_size=2,
                                     max_wait_s=0.0)  # auto_drain on
            gateway.open_session("t", "s", episode)
            queued = [gateway.submit_nowait("s", episode.queries[q])
                      for q in range(8)]
            from repro.serving import GatewayResult, Unavailable
            await asyncio.sleep(0)  # let the pump start a batch
            gateway.abort()
            for future in queued:
                outcome = await asyncio.wait_for(future, timeout=30)
                assert isinstance(outcome, (GatewayResult, Unavailable))
            assert gateway.closed
            await gateway.close()

        run(main())
