"""Property-based differential suite for the live-graph mutation engine.

Random mutation scripts — interleaved ``add_edges`` / ``remove_edges`` /
``add_nodes`` / ``compact`` batches — run over a spread of synthetic
graphs and seeds.  After **every** step the mutated graph's reads must be
bit-identical to a from-scratch rebuild over the live edge list:

* undirected rows (``neighbors`` / ``gather_neighbors`` / ``degree``),
* directed rows + relation payload (``neighbor_edges`` → ``rel``),
* both samplers × both engines with matched RNG streams,
* subgraph induction (``sample_data_graph`` content equality),
* the K-shard store (K ∈ {1, 2, 4}) fed the same updates through
  ``ShardedGraphStore.apply_updates``.

Plus regression tests for the ``visited_scratch`` free-list across
``add_nodes`` / ``compact`` (masks sized to the old graph must be retired,
never handed to a sampler).
"""

import numpy as np
import pytest

from repro.graph import CSRAdjacency, DeltaAdjacency, Graph, GraphUpdate
from repro.graph.datapoints import EdgeInput, NodeInput
from repro.graph.sampling import (
    bfs_neighborhood,
    random_walk_neighborhood,
    sample_data_graph,
)
from repro.shard import ShardedGraphStore

ENGINES = ("vectorized", "legacy")
SHARD_KS = (1, 2, 4)


# ----------------------------------------------------------------------
# Script machinery
# ----------------------------------------------------------------------
def make_base_graph(kind: str, rng: np.random.Generator) -> Graph:
    """Varied corners: multigraphs, self-loops, isolated nodes, tiny rows."""
    if kind == "dense":
        n, m = int(rng.integers(30, 60)), int(rng.integers(200, 350))
    elif kind == "sparse":
        n, m = int(rng.integers(60, 120)), int(rng.integers(60, 140))
    else:  # "tiny"
        n, m = int(rng.integers(6, 14)), int(rng.integers(4, 20))
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    # Force a few self-loops and parallel edges into every graph.
    if m >= 4:
        src[0], dst[0] = 1, 1
        src[1], dst[1] = src[2], dst[2]
    num_rel = int(rng.integers(1, 5))
    return Graph(n, src, dst, rel=rng.integers(0, num_rel, size=m),
                 num_relations=num_rel,
                 node_features=rng.normal(size=(n, 3)),
                 node_labels=rng.integers(0, 3, size=n),
                 name=f"prop-{kind}")


def random_step(graph: Graph, rng: np.random.Generator) -> str:
    """Apply one random mutation batch; returns a label for diagnostics."""
    op = rng.choice(["add", "remove", "add_nodes", "mixed", "compact"])
    _, _, _, live = graph.live_edges()
    if op == "compact":
        graph.compact()
        return op
    if op == "add" or (op == "remove" and live.size == 0):
        k = int(rng.integers(1, 12))
        graph.add_edges(rng.integers(0, graph.num_nodes, size=k),
                        rng.integers(0, graph.num_nodes, size=k),
                        rng.integers(0, graph.num_relations, size=k))
        return "add"
    if op == "remove":
        k = int(rng.integers(1, min(8, live.size) + 1))
        graph.remove_edges(rng.choice(live, size=k, replace=False))
        return op
    if op == "add_nodes":
        count = int(rng.integers(1, 4))
        new = graph.add_nodes(rng.normal(size=(count, graph.feature_dim)),
                              rng.integers(0, 3, size=count))
        # Wire the new nodes in so they are reachable.
        graph.add_edges(new, rng.integers(0, graph.num_nodes, size=new.size))
        return op
    # "mixed": one atomic batch through apply_updates.
    k = int(rng.integers(1, 8))
    remove = (rng.choice(live, size=min(3, live.size), replace=False)
              if live.size else ())
    graph.apply_updates(GraphUpdate(
        add_src=rng.integers(0, graph.num_nodes, size=k),
        add_dst=rng.integers(0, graph.num_nodes, size=k),
        add_rel=rng.integers(0, graph.num_relations, size=k),
        remove_edges=remove,
        add_node_features=rng.normal(size=(1, graph.feature_dim)),
        add_node_labels=[0]))
    return op


def assert_reads_equal(graph: Graph, ref: Graph, context: str) -> None:
    """Monolithic overlay reads == rebuild reads, all nodes."""
    assert graph.num_nodes == ref.num_nodes
    assert graph.num_live_edges == ref.num_edges
    assert np.array_equal(graph.degree(), ref.degree()), context
    for node in range(graph.num_nodes):
        assert np.array_equal(graph.neighbors(node),
                              ref.neighbors(node)), (context, node)
        dsts, eids = graph.adjacency.neighbor_edges(node)
        ref_dsts, ref_eids = ref.adjacency.neighbor_edges(node)
        assert np.array_equal(dsts, ref_dsts), (context, node, "directed")
        assert np.array_equal(graph.rel[eids],
                              ref.rel[ref_eids]), (context, node, "rel")
    rng = np.random.default_rng(0)
    frontier = rng.integers(0, graph.num_nodes, size=13)
    assert np.array_equal(
        graph.undirected_adjacency.gather_neighbors(frontier),
        ref.undirected_adjacency.gather_neighbors(frontier)), context


def assert_sampling_equal(graph, ref, rng: np.random.Generator,
                          context: str) -> None:
    """Both samplers × both engines, matched draws, on any graph-like."""
    seeds = rng.integers(0, ref.num_nodes, size=2)
    for sampler in (bfs_neighborhood, random_walk_neighborhood):
        for engine in ENGINES:
            draw = int(rng.integers(2**31))
            got = sampler(graph, seeds, 2, 16,
                          np.random.default_rng(draw), engine=engine)
            want = sampler(ref, seeds, 2, 16,
                           np.random.default_rng(draw), engine=engine)
            assert np.array_equal(got, want), (context, sampler.__name__,
                                               engine)


def assert_induction_equal(graph, ref, rng: np.random.Generator,
                           context: str) -> None:
    """Induced data graphs carry identical content (ids may renumber)."""
    u = int(rng.integers(0, ref.num_nodes))
    v = int(rng.integers(0, ref.num_nodes))
    draw = int(rng.integers(2**31))
    for datapoint in (NodeInput(u), EdgeInput(u, v, relation=0)):
        got = sample_data_graph(graph, datapoint, num_hops=2, max_nodes=12,
                                rng=np.random.default_rng(draw))
        want = sample_data_graph(ref, datapoint, num_hops=2, max_nodes=12,
                                 rng=np.random.default_rng(draw))
        for field in ("nodes", "src", "dst", "rel", "node_features",
                      "centers"):
            assert np.array_equal(
                getattr(got, field),
                getattr(want, field)), (context,
                                        type(datapoint).__name__, field)


# ----------------------------------------------------------------------
# The differential property: 10 graph kinds/configs × 3 seeds = 30 trials
# ----------------------------------------------------------------------
TRIALS = [(kind, variant, seed)
          for kind in ("dense", "sparse", "tiny")
          for variant in range(3 if kind == "tiny" else 4)
          for seed in range(3)][:36]


@pytest.mark.parametrize("kind,variant,seed", TRIALS)
def test_mutation_script_matches_rebuild(kind, variant, seed):
    rng = np.random.default_rng([kind == "dense", variant, seed])
    graph = make_base_graph(kind, rng)
    graph.compact_threshold = 0.4 if variant % 2 else None  # auto vs manual
    graph.undirected_adjacency  # some trials promote built CSRs …
    if variant % 2:
        graph.adjacency  # … others build overlays lazily post-mutation
    for step in range(6):
        label = random_step(graph, rng)
        ref = graph.rebuild()
        context = f"{kind}/{variant}/{seed} step {step} ({label})"
        assert_reads_equal(graph, ref, context)
        assert_sampling_equal(graph, ref, rng, context)
        assert_induction_equal(graph, ref, rng, context)


@pytest.mark.parametrize("strategy", ["greedy", "hash"])
@pytest.mark.parametrize("seed", range(3))
def test_sharded_mutation_matches_rebuild(strategy, seed):
    rng = np.random.default_rng([7, seed])
    graph = make_base_graph("dense", rng)
    stores = {k: ShardedGraphStore.from_graph(graph, k, strategy)
              for k in SHARD_KS}
    for step in range(5):
        _, _, _, live = graph.live_edges()
        update = GraphUpdate(
            add_src=rng.integers(0, graph.num_nodes, size=6),
            add_dst=rng.integers(0, graph.num_nodes, size=6),
            add_rel=rng.integers(0, graph.num_relations, size=6),
            remove_edges=rng.choice(live, size=min(4, live.size),
                                    replace=False),
            add_node_features=(rng.normal(size=(1, graph.feature_dim))
                               if step == 2 else None),
            add_node_labels=[1] if step == 2 else None)
        applied = graph.apply_updates(update)
        for k, store in stores.items():
            store.apply_updates(applied)
        if step == 3:
            graph.compact()  # compaction changes no reads: stores unaware
        ref = graph.rebuild()
        for k, store in stores.items():
            context = f"{strategy}/{seed} step {step} K={k}"
            view = store.view()
            assert store.num_nodes == ref.num_nodes
            assert np.array_equal(store.degree(), ref.degree()), context
            for node in range(ref.num_nodes):
                assert np.array_equal(store.neighbors(node),
                                      ref.neighbors(node)), (context, node)
                dsts, eids = store.neighbor_edges(node)
                ref_dsts, ref_eids = ref.adjacency.neighbor_edges(node)
                assert np.array_equal(dsts, ref_dsts), (context, node)
                assert np.array_equal(store.rel[eids],
                                      ref.rel[ref_eids]), (context, node)
            frontier = rng.integers(0, ref.num_nodes, size=11)
            assert np.array_equal(
                store.gather_neighbors(frontier),
                ref.undirected_adjacency.gather_neighbors(frontier)), context
            assert np.array_equal(store.gather_node_features(frontier),
                                  ref.node_features[frontier]), context
            assert_sampling_equal(view, ref, np.random.default_rng(
                [seed, step, k]), context)
            assert_induction_equal(view, ref, np.random.default_rng(
                [seed, step, k, 1]), context)


def test_sharded_update_rebuilds_only_touched_shards():
    rng = np.random.default_rng(11)
    graph = make_base_graph("dense", rng)
    store = ShardedGraphStore.from_graph(graph, 4, "greedy")
    before = list(store.shards)
    # Touch a single node pair owned by (at most) two shards.
    applied = graph.apply_updates(GraphUpdate(add_src=[0], add_dst=[1]))
    rebuilt = set(store.apply_updates(applied).tolist())
    expected = {int(store.owner[0]), int(store.owner[1])}
    assert rebuilt == expected
    for k in range(4):
        same = store.shards[k] is before[k]
        assert same == (k not in rebuilt)
    # Replaying the same receipt is a no-op.
    assert store.apply_updates(applied).size == 0


def test_edge_ids_stable_across_removal_and_compact():
    rng = np.random.default_rng(3)
    graph = make_base_graph("dense", rng)
    keep = 5  # an edge id we hold across mutations
    u, r, v = graph.edge_endpoints(keep)
    _, _, _, live = graph.live_edges()
    doomed = [e for e in live.tolist() if e != keep][:10]
    graph.remove_edges(doomed)
    graph.compact()
    assert graph.edge_endpoints(keep) == (u, r, v)
    dsts, eids = graph.adjacency.neighbor_edges(u)
    assert keep in eids.tolist()
    assert int(graph.rel[keep]) == r
    with pytest.raises(ValueError):
        graph.remove_edges([doomed[0]])  # already removed


# ----------------------------------------------------------------------
# visited_scratch free-list across grow/compact (the reentrancy gap)
# ----------------------------------------------------------------------
def test_scratch_checkout_across_add_nodes_and_compact():
    rng = np.random.default_rng(0)
    graph = make_base_graph("dense", rng)
    adj = graph.undirected_adjacency  # plain CSR; promoted on first write
    graph.add_edges([0], [1])
    adj = graph.undirected_adjacency
    assert isinstance(adj, DeltaAdjacency)
    old_size = graph.num_nodes
    borrowed = adj.visited_scratch()
    assert borrowed.size == old_size

    new = graph.add_nodes(rng.normal(size=(3, graph.feature_dim)),
                          [0, 1, 2])
    graph.add_edges(new, [0, 1, 2])
    assert graph.undirected_adjacency is adj  # grown in place, not rebuilt

    # A second borrower mid-flight gets a mask sized to the *grown* graph.
    fresh = adj.visited_scratch()
    assert fresh.size == graph.num_nodes > old_size
    fresh[new[-1]] = True  # indexing a new node must be in range
    fresh[new[-1]] = False
    adj.release_scratch(fresh)

    # Releasing the stale-sized mask parks it, but checkout retires it
    # instead of handing it back out.
    adj.release_scratch(borrowed)
    again = adj.visited_scratch()
    assert again.size == graph.num_nodes
    adj.release_scratch(again)


def test_sampling_concurrently_across_compact():
    """A sampler holding a scratch across a compact() must stay correct."""
    rng = np.random.default_rng(1)
    graph = make_base_graph("dense", rng)
    graph.add_edges([2], [3])
    adj = graph.undirected_adjacency
    held = adj.visited_scratch()  # simulate an in-flight borrower
    graph.remove_edges([0])
    graph.compact()  # swaps the overlay object behind the property
    new_adj = graph.undirected_adjacency
    assert new_adj is not adj

    # Sampling after the compact is correct and uses the new overlay.
    ref = graph.rebuild()
    result = bfs_neighborhood(graph, np.array([2]), 2, 16)
    assert np.array_equal(result, bfs_neighborhood(ref, np.array([2]), 2, 16))

    # The in-flight borrower releases into the retired overlay — harmless —
    # and new checkouts from the live overlay are all-False and full-size.
    adj.release_scratch(held)
    mask = new_adj.visited_scratch()
    assert mask.size == graph.num_nodes and not mask.any()
    new_adj.release_scratch(mask)


def test_sharded_scratch_retired_after_node_growth():
    rng = np.random.default_rng(2)
    graph = make_base_graph("dense", rng)
    store = ShardedGraphStore.from_graph(graph, 2, "greedy")
    mask = store.visited_scratch()
    store.release_scratch(mask)  # parked at the old size
    applied = graph.apply_updates(GraphUpdate(
        add_node_features=rng.normal(size=(2, graph.feature_dim)),
        add_node_labels=[0, 0],
        add_src=[0], add_dst=[1]))
    store.apply_updates(applied)
    grown = store.visited_scratch()
    assert grown.size == store.num_nodes == graph.num_nodes
    store.release_scratch(grown)


def test_delta_overlay_fraction_and_auto_compact():
    rng = np.random.default_rng(4)
    graph = make_base_graph("dense", rng)
    graph.undirected_adjacency
    graph.compact_threshold = 0.05
    baseline = graph._compactions
    # Enough overlay to cross 5%: auto-compact fires inside the mutator.
    k = max(graph.num_edges // 10, 8)
    graph.add_edges(rng.integers(0, graph.num_nodes, size=k),
                    rng.integers(0, graph.num_nodes, size=k))
    assert graph._compactions > baseline
    assert graph.overlay_fraction <= 0.05
    assert_reads_equal(graph, graph.rebuild(), "auto-compact")


def test_gather_fast_path_used_on_clean_frontiers():
    """Dirty-row bookkeeping must not poison untouched regions."""
    rng = np.random.default_rng(5)
    graph = make_base_graph("sparse", rng)
    graph.add_edges([0], [1])  # promote; rows 0/1 dirty
    adj = graph.undirected_adjacency
    clean_nodes = np.array([n for n in range(2, graph.num_nodes)][:9])
    want = (np.concatenate([adj.neighbors(int(n)) for n in clean_nodes])
            if clean_nodes.size else np.empty(0, dtype=np.int64))
    got = adj.gather_neighbors(clean_nodes)
    assert np.array_equal(got, want)
    assert not adj._dirty[clean_nodes].any()


# ----------------------------------------------------------------------
# Tiered compaction (promotion / demotion) and the halo row cache
# ----------------------------------------------------------------------
def test_stale_dirty_row_regression():
    """add edge -> remove the same edge -> the row must regain the base
    fast path (the empty delta entry used to pin it dirty forever)."""
    rng = np.random.default_rng(21)
    graph = make_base_graph("dense", rng)
    adj = graph.undirected_adjacency  # plain CSR, promoted on first write
    u, v = 3, 7
    eid = int(graph.add_edges([u], [v])[0])
    adj = graph.undirected_adjacency
    assert adj._dirty[u] and adj._dirty[v]
    graph.remove_edges([eid])
    # Both endpoint rows are back at their exact base state.
    assert not adj._dirty[u] and not adj._dirty[v]
    assert not graph.adjacency._dirty[u]
    # A frontier over them takes the fused base gather, and degree(None)
    # no longer walks empty delta entries.
    frontier = np.array([u, v], dtype=np.int64)
    assert np.array_equal(adj.gather_neighbors(frontier),
                          adj.base.gather_neighbors(frontier))
    assert all(not lane for lane in adj._delta)
    assert_reads_equal(graph, graph.rebuild(), "stale-dirty-row")


def test_promoted_row_reads_bit_identical():
    """Reads repeated past ``promote_after`` re-materialise the row; the
    promoted copy must read identically on every surface."""
    rng = np.random.default_rng(22)
    graph = make_base_graph("dense", rng)
    graph.adjacency, graph.undirected_adjacency  # build pre-write
    k = max(graph.num_edges // 10, 8)
    graph.add_edges(rng.integers(0, graph.num_nodes, size=k),
                    rng.integers(0, graph.num_nodes, size=k),
                    rng.integers(0, graph.num_relations, size=k))
    ref = graph.rebuild()
    # Two read passes promote every dirty row (promote_after defaults 2).
    assert_reads_equal(graph, ref, "pass 1 (counting)")
    assert_reads_equal(graph, ref, "pass 2 (promoting)")
    adj = graph.undirected_adjacency
    stats = adj.overlay_stats()
    assert stats["promotions"] > 0 and stats["promoted_rows"] > 0
    # Third pass reads come from the side store.
    assert_reads_equal(graph, ref, "pass 3 (promoted)")
    assert_sampling_equal(graph, ref, rng, "promoted sampling")
    assert_induction_equal(graph, ref, rng, "promoted induction")
    # A frontier mixing clean and promoted rows takes the fused tiered
    # gather (no per-row fallback) and still matches the rebuild.
    frontier = np.arange(graph.num_nodes, dtype=np.int64)
    assert np.array_equal(adj.gather_neighbors(frontier),
                          ref.undirected_adjacency.gather_neighbors(frontier))


def test_promote_then_remove_demotes():
    """A write to a promoted row drops its side copy; reads stay exact."""
    rng = np.random.default_rng(23)
    graph = make_base_graph("dense", rng)
    adj = graph.undirected_adjacency  # build pre-write, wrapped in place
    u, v = 2, 9
    eids = graph.add_edges([u, u], [v, 5])
    adj = graph.undirected_adjacency
    for _ in range(3):  # promote row u
        adj.neighbors(u)
    assert adj._side_start[u] >= 0
    before = adj.overlay_stats()["demotions"]
    graph.remove_edges([int(eids[0])])
    assert adj._side_start[u] < 0
    assert adj.overlay_stats()["demotions"] > before
    assert_reads_equal(graph, graph.rebuild(), "promote-then-remove")
    # Re-reading re-promotes; still exact.
    for _ in range(3):
        adj.neighbors(u)
    assert adj._side_start[u] >= 0
    assert_reads_equal(graph, graph.rebuild(), "re-promoted")


def test_promote_then_compact():
    """compact() folds everything into a clean base: tier state resets
    and reads keep matching the rebuild."""
    rng = np.random.default_rng(24)
    graph = make_base_graph("dense", rng)
    graph.undirected_adjacency  # build pre-write
    k = max(graph.num_edges // 8, 8)
    graph.add_edges(rng.integers(0, graph.num_nodes, size=k),
                    rng.integers(0, graph.num_nodes, size=k))
    ref = graph.rebuild()
    assert_reads_equal(graph, ref, "pre-compact pass 1")
    assert_reads_equal(graph, ref, "pre-compact pass 2")
    assert graph.undirected_adjacency.overlay_stats()["promoted_rows"] > 0
    graph.compact()
    adj = graph.undirected_adjacency
    stats = adj.overlay_stats()
    assert stats["promoted_rows"] == 0 and stats["delta_slots"] == 0
    assert_reads_equal(graph, graph.rebuild(), "post-compact")


def test_tier_disabled_matches_enabled():
    """``tier_enabled=False`` pins the pure delta tier — same reads, no
    promotions — and the knobs survive a compact()."""
    rng = np.random.default_rng(25)
    graph = make_base_graph("dense", rng)
    graph.tier_enabled = False
    graph.tier_promote_after = 5
    for _ in range(4):
        random_step(graph, rng)
        ref = graph.rebuild()
        assert_reads_equal(graph, ref, "tier-disabled")
    for adj in (graph.adjacency, graph.undirected_adjacency):
        if isinstance(adj, DeltaAdjacency):
            assert adj.overlay_stats()["promotions"] == 0
            assert not adj.tier_enabled and adj.promote_after == 5


def test_grown_rows_stay_dirty_and_promotable():
    """Rows past the base node count never regain the base fast path
    (there is no base row to slice) but may still be promoted."""
    rng = np.random.default_rng(26)
    graph = make_base_graph("tiny", rng)
    graph.undirected_adjacency  # build pre-write
    graph.add_edges([0], [1])
    new = graph.add_nodes(rng.normal(size=(2, graph.feature_dim)), [0, 1])
    eids = graph.add_edges(new, [0, 1])
    adj = graph.undirected_adjacency
    grown = int(new[0])
    graph.remove_edges([int(eids[0])])  # grown row back to zero slots …
    assert adj._dirty[grown]            # … but must stay dirty
    assert adj.neighbors(grown).size == 0
    for _ in range(3):
        adj.neighbors(int(new[1]))
    assert adj._side_start[int(new[1])] >= 0
    assert_reads_equal(graph, graph.rebuild(), "grown rows")


@pytest.mark.parametrize("num_shards", [2, 4])
def test_halo_cache_cycle_matches_rebuild(num_shards):
    """Warm-read / mutate / invalidate cycles: cache-served reads stay
    bit-identical to a from-scratch rebuild at every step."""
    rng = np.random.default_rng(27)
    graph = make_base_graph("dense", rng)
    store = ShardedGraphStore.from_graph(graph, num_shards, "greedy")
    for cycle in range(3):
        frontier = np.arange(graph.num_nodes, dtype=np.int64)
        store.gather_neighbors(frontier)   # cold: fills the cache
        warm = store.gather_neighbors(frontier)
        ref = graph.rebuild()
        assert np.array_equal(
            warm, ref.undirected_adjacency.gather_neighbors(frontier))
        stats = store.cache_stats()
        assert stats["hits"] >= graph.num_nodes
        assert stats["invalidations"] == cycle
        assert_sampling_equal(store.view(), ref,
                              np.random.default_rng([cycle, num_shards]),
                              f"cycle {cycle}")
        _, _, _, live = graph.live_edges()
        applied = graph.apply_updates(GraphUpdate(
            add_src=rng.integers(0, graph.num_nodes, size=4),
            add_dst=rng.integers(0, graph.num_nodes, size=4),
            remove_edges=rng.choice(live, size=2, replace=False)))
        store.apply_updates(applied)  # flushes the cache
        assert store.cache_stats()["cached_rows"] == 0


def test_remove_unknown_and_duplicate_edges_raise():
    rng = np.random.default_rng(6)
    graph = make_base_graph("tiny", rng)
    with pytest.raises(ValueError):
        graph.remove_edges([graph.num_edges])  # out of range
    if graph.num_edges:
        with pytest.raises(ValueError):
            graph.remove_edges([0, 0])  # duplicate in one batch


def test_csr_gather_matches_overlay_on_fresh_graph():
    """A never-mutated graph keeps serving plain CSRs (zero overhead)."""
    rng = np.random.default_rng(8)
    graph = make_base_graph("dense", rng)
    assert isinstance(graph.undirected_adjacency, CSRAdjacency)
    assert isinstance(graph.adjacency, CSRAdjacency)
    assert graph.overlay_fraction == 0.0
