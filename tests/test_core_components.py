"""Tests for core components: config, task graph, episodes, selector, augmenter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GraphPrompterConfig,
    PromptAugmenter,
    PromptSelector,
    build_task_graph,
    pairwise_similarity,
    prodigy_config,
    sample_episode,
)
from repro.datasets import load_dataset
from repro.gnn import (
    EDGE_ATTR_PROMPT_FALSE,
    EDGE_ATTR_PROMPT_TRUE,
    EDGE_ATTR_QUERY,
)


class TestConfig:
    def test_defaults_valid(self):
        cfg = GraphPrompterConfig()
        assert cfg.validate() is cfg

    def test_prodigy_config_disables_all_stages(self):
        cfg = prodigy_config()
        assert not cfg.use_reconstruction
        assert not cfg.use_selection_layers
        assert not cfg.use_knn
        assert not cfg.use_augmenter

    def test_ablate_returns_copy(self):
        cfg = GraphPrompterConfig()
        ablated = cfg.ablate(use_knn=False)
        assert cfg.use_knn and not ablated.use_knn

    @pytest.mark.parametrize("bad", [
        {"hidden_dim": 0},
        {"num_hops": -1},
        {"cache_size": 0},
        {"conv": "gcn"},
        {"sampling_method": "dfs"},
        {"knn_metric": "chebyshev"},
        {"temperature": 0.0},
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            GraphPrompterConfig(**bad).validate()


class TestTaskGraph:
    def test_counts(self):
        tg = build_task_graph(np.array([0, 0, 1, 1]), num_queries=3,
                              num_ways=2)
        assert tg.num_nodes == 4 + 3 + 2
        # 4 prompts x 2 labels + 3 queries x 2 labels edges.
        assert tg.src.shape[0] == 4 * 2 + 3 * 2

    def test_attrs_true_false(self):
        tg = build_task_graph(np.array([1]), num_queries=1, num_ways=2)
        # Prompt 0 has label 1: edge to label 0 is F, to label 1 is T.
        prompt_edges = tg.attr[:2]
        assert prompt_edges[0] == EDGE_ATTR_PROMPT_FALSE
        assert prompt_edges[1] == EDGE_ATTR_PROMPT_TRUE
        assert np.all(tg.attr[2:] == EDGE_ATTR_QUERY)

    def test_each_prompt_connects_all_labels(self):
        tg = build_task_graph(np.array([0, 2, 1]), num_queries=2, num_ways=3)
        for p in range(3):
            targets = tg.dst[tg.src == p]
            assert set(targets) == set(tg.label_ids)

    def test_id_partitions(self):
        tg = build_task_graph(np.array([0, 1]), num_queries=2, num_ways=2)
        all_ids = np.concatenate([tg.prompt_ids, tg.query_ids, tg.label_ids])
        np.testing.assert_array_equal(np.sort(all_ids),
                                      np.arange(tg.num_nodes))

    def test_validation(self):
        with pytest.raises(ValueError):
            build_task_graph(np.array([0]), num_queries=1, num_ways=1)
        with pytest.raises(ValueError):
            build_task_graph(np.array([5]), num_queries=1, num_ways=2)
        with pytest.raises(ValueError):
            build_task_graph(np.array([0]), num_queries=0, num_ways=2)


class TestEpisodeSampling:
    def test_shapes(self):
        ds = load_dataset("conceptnet")
        ep = sample_episode(ds, num_ways=5, num_candidates_per_class=10,
                            num_queries=12, rng=0)
        assert ep.num_ways == 5
        assert len(ep.candidates) == 50
        assert ep.num_candidates_per_class == 10
        assert ep.num_queries == 12

    def test_candidate_labels_class_major(self):
        ds = load_dataset("conceptnet")
        ep = sample_episode(ds, num_ways=4, num_candidates_per_class=3, rng=1)
        np.testing.assert_array_equal(
            ep.candidate_labels, np.repeat(np.arange(4), 3))

    def test_candidates_have_correct_global_labels(self):
        ds = load_dataset("conceptnet")
        ep = sample_episode(ds, num_ways=4, rng=2)
        for i, dp in enumerate(ep.candidates):
            local = ep.candidate_labels[i]
            assert dp.relation == ep.way_classes[local]

    def test_queries_have_hidden_labels(self):
        ds = load_dataset("conceptnet")
        ep = sample_episode(ds, num_ways=3, rng=3)
        assert all(q.relation is None for q in ep.queries)

    def test_query_labels_in_range(self):
        ds = load_dataset("conceptnet")
        ep = sample_episode(ds, num_ways=6, num_queries=30, rng=4)
        assert ep.query_labels.min() >= 0
        assert ep.query_labels.max() < 6

    def test_too_many_ways_rejected(self):
        ds = load_dataset("conceptnet")  # 14 classes
        with pytest.raises(ValueError):
            sample_episode(ds, num_ways=100, rng=0)

    def test_min_ways(self):
        ds = load_dataset("conceptnet")
        with pytest.raises(ValueError):
            sample_episode(ds, num_ways=1, rng=0)

    def test_candidate_ids_of_class(self):
        ds = load_dataset("conceptnet")
        ep = sample_episode(ds, num_ways=3, num_candidates_per_class=4, rng=5)
        ids = ep.candidate_ids_of_class(1)
        np.testing.assert_array_equal(ids, np.arange(4, 8))

    def test_node_task_episode(self):
        ds = load_dataset("arxiv")
        ep = sample_episode(ds, num_ways=5, num_queries=10, rng=6)
        assert len(ep.candidates) == 50
        assert all(hasattr(c, "node") for c in ep.candidates)


class TestPairwiseSimilarity:
    def test_cosine_identity(self):
        x = np.random.default_rng(0).normal(size=(4, 6))
        sim = pairwise_similarity(x, x, "cosine")
        np.testing.assert_allclose(np.diag(sim), np.ones(4), rtol=1e-9)

    def test_euclidean_zero_distance(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        sim = pairwise_similarity(x, x, "euclidean")
        np.testing.assert_allclose(np.diag(sim), np.zeros(3), atol=1e-12)
        assert np.all(sim <= 1e-12)  # negated distances

    def test_manhattan_orders_like_distance(self):
        q = np.zeros((1, 2))
        prompts = np.array([[1.0, 0.0], [3.0, 0.0]])
        sim = pairwise_similarity(q, prompts, "manhattan")
        assert sim[0, 0] > sim[0, 1]

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            pairwise_similarity(np.zeros((1, 2)), np.zeros((1, 2)), "dot")


def _selection_problem(rng, num_ways=3, per_class=6, dim=8, queries=5):
    """Candidates clustered per class; queries near class centroids."""
    centroids = rng.normal(size=(num_ways, dim)) * 3
    labels = np.repeat(np.arange(num_ways), per_class)
    candidates = centroids[labels] + rng.normal(size=(len(labels), dim)) * 0.3
    q_labels = rng.integers(0, num_ways, size=queries)
    queries_emb = centroids[q_labels] + rng.normal(size=(queries, dim)) * 0.3
    return candidates, labels, queries_emb, q_labels


class TestPromptSelector:
    def test_selects_k_per_class(self):
        rng = np.random.default_rng(0)
        cand, labels, q, _ = _selection_problem(rng)
        sel = PromptSelector(GraphPrompterConfig(), rng=0).select(
            cand, np.ones(len(labels)), q, np.ones(len(q)), labels, shots=2)
        assert len(sel) == 6  # 3 classes x 2 shots
        np.testing.assert_array_equal(
            np.bincount(labels[sel], minlength=3), [2, 2, 2])

    def test_random_when_all_disabled(self):
        rng = np.random.default_rng(1)
        cand, labels, q, _ = _selection_problem(rng)
        cfg = prodigy_config()
        a = PromptSelector(cfg, rng=5).select(
            cand, np.ones(len(labels)), q, np.ones(len(q)), labels, 2)
        b = PromptSelector(cfg, rng=6).select(
            cand, np.ones(len(labels)), q, np.ones(len(q)), labels, 2)
        assert len(a) == len(b) == 6
        # Different rngs give (almost surely) different draws.
        assert not np.array_equal(a, b)

    def test_knn_prefers_query_like_prompts(self):
        """With one far-outlier candidate per class, kNN avoids it."""
        rng = np.random.default_rng(2)
        cand, labels, q, _ = _selection_problem(rng, per_class=5)
        # Poison candidate 0 of each class with a far-away embedding.
        for cls in range(3):
            idx = np.nonzero(labels == cls)[0][0]
            cand[idx] = rng.normal(size=cand.shape[1]) * 50
        cfg = GraphPrompterConfig(use_selection_layers=False,
                                  use_augmenter=False)
        sel = PromptSelector(cfg, rng=0).select(
            cand, np.ones(len(labels)), q, np.ones(len(q)), labels, 3)
        poisoned = {np.nonzero(labels == c)[0][0] for c in range(3)}
        assert len(poisoned & set(sel)) == 0

    def test_selection_layers_only_uses_importance(self):
        rng = np.random.default_rng(3)
        cand, labels, q, _ = _selection_problem(rng, per_class=4)
        importance = np.zeros(len(labels))
        # Mark exactly shots=2 candidates per class as important.
        want = []
        for cls in range(3):
            members = np.nonzero(labels == cls)[0]
            importance[members[:2]] = 1.0
            want.extend(members[:2])
        cfg = GraphPrompterConfig(use_knn=False, use_augmenter=False)
        sel = PromptSelector(cfg, rng=0).select(
            cand, importance, q, np.ones(len(q)), labels, 2)
        assert set(sel) == set(want)

    def test_scores_respect_flags(self):
        rng = np.random.default_rng(4)
        cand, labels, q, _ = _selection_problem(rng)
        selector_off = PromptSelector(prodigy_config())
        scores = selector_off.scores(cand, np.ones(len(labels)),
                                     q, np.ones(len(q)))
        np.testing.assert_allclose(scores, 0.0)

    def test_fewer_members_than_shots(self):
        cfg = GraphPrompterConfig()
        cand = np.random.default_rng(5).normal(size=(3, 4))
        labels = np.array([0, 0, 1])
        sel = PromptSelector(cfg, rng=0).select(
            cand, np.ones(3), cand[:1], np.ones(1), labels, shots=5)
        # Class 0 contributes 2, class 1 contributes 1.
        assert len(sel) == 3


class TestPromptAugmenter:
    def _augmenter(self, **kwargs):
        cfg = GraphPrompterConfig(**kwargs)
        return PromptAugmenter(cfg, rng=0)

    def test_empty_cache(self):
        aug = self._augmenter()
        emb, labels = aug.cached_prompts()
        assert emb.shape[0] == 0 and labels.shape[0] == 0
        assert len(aug) == 0

    def test_update_inserts_most_confident_per_class(self):
        aug = self._augmenter(cache_size=5)
        emb = np.arange(8, dtype=float).reshape(4, 2)
        preds = np.array([0, 0, 1, 1])
        confs = np.array([0.9, 0.1, 0.2, 0.8])
        inserted = aug.update(emb, preds, confs)
        assert inserted == 2
        cached_emb, cached_labels = aug.cached_prompts()
        assert set(cached_labels) == {0, 1}
        # Class 0 entry should be query 0 (conf 0.9), class 1 query 3.
        rows = {tuple(r) for r in cached_emb}
        assert tuple(emb[0]) in rows and tuple(emb[3]) in rows

    def test_random_pseudo_labels_mode(self):
        aug = self._augmenter(cache_size=5, random_pseudo_labels=True)
        emb = np.arange(20, dtype=float).reshape(10, 2)
        preds = np.zeros(10, dtype=int)
        confs = np.linspace(0, 1, 10)
        aug.update(emb, preds, confs)
        assert len(aug) == 1  # one per predicted class

    def test_cache_eviction_respects_capacity(self):
        aug = self._augmenter(cache_size=2)
        for i in range(5):
            aug.update(np.array([[float(i), 0.0]]), np.array([i]),
                       np.array([0.5]))
        assert len(aug) == 2

    def test_record_hits_bumps_frequency(self):
        aug = self._augmenter(cache_size=3)
        aug.update(np.array([[1.0, 0.0], [0.0, 1.0]]), np.array([0, 1]),
                   np.array([0.9, 0.9]))
        hits = aug.record_hits(np.array([[1.0, 0.1]]), top_k=1)
        assert hits == 1

    def test_record_hits_empty_cases(self):
        aug = self._augmenter()
        assert aug.record_hits(np.zeros((2, 2)), 3) == 0
        aug.update(np.ones((1, 2)), np.array([0]), np.array([0.5]))
        assert aug.record_hits(np.zeros((0, 2)), 3) == 0

    def test_reset(self):
        aug = self._augmenter()
        aug.update(np.ones((1, 2)), np.array([0]), np.array([0.5]))
        aug.reset()
        assert len(aug) == 0


@settings(max_examples=15, deadline=None)
@given(
    ways=st.integers(min_value=2, max_value=5),
    prompts_per_way=st.integers(min_value=1, max_value=4),
    queries=st.integers(min_value=1, max_value=5),
)
def test_property_task_graph_edge_count(ways, prompts_per_way, queries):
    labels = np.repeat(np.arange(ways), prompts_per_way)
    tg = build_task_graph(labels, queries, ways)
    assert tg.src.shape[0] == (len(labels) + queries) * ways
    # Exactly one T edge per prompt.
    assert (tg.attr == EDGE_ATTR_PROMPT_TRUE).sum() == len(labels)


@settings(max_examples=10, deadline=None)
@given(
    shots=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=99),
)
def test_property_selector_output_sorted_per_class_and_unique(shots, seed):
    rng = np.random.default_rng(seed)
    cand, labels, q, _ = _selection_problem(rng, num_ways=3, per_class=6)
    sel = PromptSelector(GraphPrompterConfig(), rng=seed).select(
        cand, rng.random(len(labels)), q, rng.random(len(q)), labels, shots)
    assert len(np.unique(sel)) == len(sel)
    np.testing.assert_array_equal(
        np.bincount(labels[sel], minlength=3), [shots] * 3)
