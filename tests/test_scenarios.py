"""Tests for the scenario matrix driver and its regression gates."""

import pytest

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
)
from repro.datasets import Dataset, EDGE_TASK
from repro.datasets.synthetic import synthetic_knowledge_graph
from repro.experiments.scenarios import (
    SCENARIOS,
    Scenario,
    _env,
    build_slos,
    check_scenarios,
    run_scenario,
)
from repro.workload import PoissonArrivals, ZipfQueries


@pytest.fixture(scope="module")
def served():
    """A briefly pre-trained model + dataset for scenario replays."""
    graph = synthetic_knowledge_graph(300, 8, 2400, rng=0, name="kg-scn")
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    config = GraphPrompterConfig(hidden_dim=12, max_subgraph_nodes=10,
                                 num_gnn_layers=2)
    model = GraphPrompterModel(dataset.graph.feature_dim,
                               dataset.graph.num_relations, config)
    Pretrainer(model, dataset, PretrainConfig(steps=60, num_ways=4),
               rng=0).train()
    return model, dataset


SMALL = Scenario(
    name="small-steady",
    description="tiny ample-queue scenario for unit tests",
    arrivals=PoissonArrivals(rate_qps=40.0),
    queries=ZipfQueries(skew=1.0),
    num_events_fast=24, num_events_full=24,
)


class TestRunScenario:
    def test_matrix_has_the_four_required_scenarios(self):
        assert set(SCENARIOS) == {"steady", "burst", "drift",
                                  "flash-crowd"}
        assert SCENARIOS["burst"].expect_shedding

    def test_steady_run_is_deterministic_and_sheds_nothing(self, served):
        model, dataset = served
        result = run_scenario(model, dataset, SMALL, seed=0, fast=True,
                              relax=20.0)
        assert result["deterministic"]
        assert result["offered"] == 24
        assert result["admitted"] == 24
        assert result["shed"] == {"interactive": 0, "batch": 0,
                                  "background": 0}
        assert result["fingerprint"] == result["trace"].fingerprint()
        assert len(result["admitted_fingerprint"]) == 64
        assert result["verdict"].ok

    def test_overloaded_scenario_sheds_lower_classes_only(self, served):
        model, dataset = served
        result = run_scenario(model, dataset, SCENARIOS["burst"], seed=0,
                              fast=True, relax=20.0)
        assert result["shed"]["interactive"] == 0
        assert result["shed"]["batch"] + result["shed"]["background"] > 0
        assert result["admitted"] < result["offered"]
        # The SLO teeth: interactive protection holds under overload.
        names = {r.check.objective: r.check.ok
                 for r in result["verdict"].results}
        assert names["shed-rate-interactive"]

    def test_prom_snapshot_contains_gateway_series(self, served):
        model, dataset = served
        result = run_scenario(model, dataset, SMALL, seed=1, fast=True,
                              relax=20.0)
        assert "repro_gateway_admitted_total" in result["prom"]
        assert "repro_stage_seconds" in result["prom"]


class TestBuildSlos:
    def test_relax_scales_latency_but_not_shed_budgets(self):
        tight = build_slos(SCENARIOS["burst"], relax=1.0)
        loose = build_slos(SCENARIOS["burst"], relax=8.0)
        by_name_tight = {o.name: o for o in tight.objectives}
        by_name_loose = {o.name: o for o in loose.objectives}
        assert by_name_loose["interactive-p95"].threshold_s == pytest.approx(
            8 * by_name_tight["interactive-p95"].threshold_s)
        assert by_name_loose["shed-rate-interactive"].max_ratio == 0.0
        assert (by_name_loose["shed-rate-batch"].max_ratio
                == by_name_tight["shed-rate-batch"].max_ratio)


class TestCheckScenarios:
    def entry(self, **overrides):
        entry = {
            "events": 100, "admitted": 80,
            "shed": {"interactive": 0, "batch": 15, "background": 5},
            "qps": 50.0, "slo_ok": True,
            "trace_fingerprint": "a" * 64,
            "admitted_fingerprint": "b" * 64,
            "env": _env(),
        }
        entry.update(overrides)
        return entry

    def test_identical_entries_pass(self):
        assert check_scenarios({"s": self.entry()},
                               {"s": self.entry()}) == []

    def test_trace_fingerprint_mismatch_fails_everywhere(self):
        failures = check_scenarios(
            {"s": self.entry(trace_fingerprint="c" * 64,
                             env={"cpu_count": -1, "backend": "other"})},
            {"s": self.entry()})
        assert any("fingerprint" in line for line in failures)

    def test_admission_drift_fails(self):
        failures = check_scenarios(
            {"s": self.entry(admitted=79)}, {"s": self.entry()})
        assert any("admitted" in line for line in failures)
        failures = check_scenarios(
            {"s": self.entry(shed={"interactive": 1, "batch": 14,
                                   "background": 5})},
            {"s": self.entry()})
        assert any("shed split" in line for line in failures)

    def test_qps_and_slo_gates_fire_on_same_host_class(self):
        failures = check_scenarios(
            {"s": self.entry(qps=10.0, slo_ok=False)},
            {"s": self.entry()}, tolerance=1.5)
        assert any("qps" in line for line in failures)
        assert any("SLO verdict regressed" in line for line in failures)

    def test_environment_mismatch_skips_speed_gates(self):
        skipped = []
        failures = check_scenarios(
            {"s": self.entry(qps=1.0, slo_ok=False)},
            {"s": self.entry(env={"cpu_count": -1, "backend": "weird"})},
            tolerance=1.5, skipped=skipped)
        assert failures == []
        assert len(skipped) == 1
        assert "host class differs" in skipped[0]

    def test_baseline_only_scenarios_are_ignored(self):
        assert check_scenarios({}, {"s": self.entry()}) == []
