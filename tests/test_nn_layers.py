"""Tests for NN layers, functional ops, optimisers and serialisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Adam,
    AdamW,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    Module,
    Parameter,
    SGD,
    Sequential,
    StepLR,
    Tensor,
    clip_grad_norm,
    functional as F,
    load_state,
    save_state,
)


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        s = F.softmax(x, axis=-1)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(4), rtol=1e-10)

    def test_softmax_invariant_to_shift(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, rtol=1e-9)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(2).normal(size=(3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), rtol=1e-9
        )

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((5, 4)))
        loss = F.cross_entropy(logits, np.zeros(5, dtype=int))
        np.testing.assert_allclose(loss.item(), np.log(4), rtol=1e-9)

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        F.cross_entropy(logits, np.array([1])).backward()
        # Gradient should be negative at the true class, positive elsewhere.
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0 and logits.grad[0, 2] > 0

    def test_cross_entropy_validates_shapes(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((3, 2))), np.array([0]))

    def test_l2_normalize_unit_norm(self):
        x = Tensor(np.random.default_rng(3).normal(size=(6, 4)))
        n = F.l2_normalize(x)
        np.testing.assert_allclose(
            np.linalg.norm(n.data, axis=-1), np.ones(6), rtol=1e-9
        )

    def test_cosine_similarity_self_is_one(self):
        x = Tensor(np.random.default_rng(4).normal(size=(5, 8)))
        np.testing.assert_allclose(
            F.cosine_similarity(x, x).data, np.ones(5), rtol=1e-9
        )

    def test_pairwise_cosine_shape_and_range(self):
        a = Tensor(np.random.default_rng(5).normal(size=(4, 6)))
        b = Tensor(np.random.default_rng(6).normal(size=(7, 6)))
        sim = F.pairwise_cosine(a, b)
        assert sim.shape == (4, 7)
        assert np.all(sim.data <= 1.0 + 1e-9) and np.all(sim.data >= -1.0 - 1e-9)

    def test_mse_loss_zero_for_equal(self):
        x = Tensor(np.ones((3, 3)))
        assert F.mse_loss(x, np.ones((3, 3))).item() == 0.0

    def test_binary_cross_entropy_bounds(self):
        p = Tensor(np.array([0.9, 0.1]))
        loss = F.binary_cross_entropy(p, np.array([1.0, 0.0]))
        np.testing.assert_allclose(loss.item(), -np.log(0.9), rtol=1e-6)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((4, 5))))
        assert out.shape == (4, 3)

    def test_linear_no_bias(self):
        layer = Linear(5, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_mlp_depth_and_activation(self):
        mlp = MLP([4, 8, 8, 2], activation="tanh")
        out = mlp(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert len(mlp.parameters()) == 6  # 3 layers x (W, b)

    def test_mlp_final_activation_sigmoid(self):
        mlp = MLP([4, 4, 1], final_activation="sigmoid")
        out = mlp(Tensor(np.random.default_rng(0).normal(size=(5, 4))))
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_mlp_rejects_short_dims(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_mlp_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP([4, 2], activation="swish")

    def test_sequential_chains(self):
        model = Sequential(Linear(4, 8), Linear(8, 2))
        assert model(Tensor(np.ones((1, 4)))).shape == (1, 2)
        assert len(model) == 2

    def test_embedding_lookup(self):
        emb = Embedding(10, 6)
        out = emb(np.array([1, 1, 3]))
        assert out.shape == (3, 6)
        np.testing.assert_allclose(out.data[0], out.data[1])

    def test_embedding_out_of_range(self):
        emb = Embedding(4, 2)
        with pytest.raises(IndexError):
            emb(np.array([4]))

    def test_embedding_gradient_accumulates_for_repeats(self):
        emb = Embedding(3, 2)
        out = emb(np.array([1, 1]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])

    def test_dropout_train_vs_eval(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 10)))
        drop.train()
        out_train = drop(x)
        assert np.any(out_train.data == 0.0)
        drop.eval()
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_dropout_validates_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_dropout_preserves_expectation(self):
        drop = Dropout(0.3, rng=np.random.default_rng(1))
        x = Tensor(np.ones((10_000,)))
        out = drop(x)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_layernorm_normalises(self):
        ln = LayerNorm(16)
        x = Tensor(np.random.default_rng(7).normal(loc=5, scale=3, size=(4, 16)))
        out = ln(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-8)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-3)


class TestModuleProtocol:
    def test_named_parameters_nested(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.encoder = Linear(3, 4)
                self.head = MLP([4, 4, 2])

        names = dict(Net().named_parameters())
        assert "encoder.weight" in names
        assert "head._modules_list.0.weight" in names

    def test_state_dict_roundtrip(self, tmp_path):
        model = MLP([3, 5, 2], rng=np.random.default_rng(0))
        clone = MLP([3, 5, 2], rng=np.random.default_rng(99))
        path = str(tmp_path / "weights.npz")
        save_state(model, path)
        load_state(clone, path)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 3)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_load_state_dict_rejects_mismatch(self):
        model = Linear(3, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((3, 2))})  # missing bias

    def test_load_state_dict_rejects_bad_shape(self):
        model = Linear(3, 2)
        state = model.state_dict()
        state["weight"] = np.zeros((2, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Linear(2, 2))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_num_parameters(self):
        assert Linear(3, 2).num_parameters() == 3 * 2 + 2

    def test_zero_grad(self):
        layer = Linear(2, 2)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestOptimizers:
    @staticmethod
    def _quadratic_losses(optimizer_factory, steps=120):
        """Minimise ||Wx - y||^2 and report first/last loss."""
        rng = np.random.default_rng(0)
        w = Parameter(rng.normal(size=(4, 3)))
        x = Tensor(rng.normal(size=(16, 4)))
        # Realisable target so the optimum loss is exactly zero.
        target = Tensor(x.data @ rng.normal(size=(4, 3)))
        opt = optimizer_factory([w])
        first = last = None
        for _ in range(steps):
            opt.zero_grad()
            pred = x @ w
            diff = pred - target
            loss = (diff * diff).mean()
            loss.backward()
            opt.step()
            if first is None:
                first = loss.item()
            last = loss.item()
        return first, last

    def test_sgd_converges(self):
        first, last = self._quadratic_losses(lambda p: SGD(p, lr=0.05))
        assert last < first * 0.2

    def test_sgd_momentum_converges(self):
        first, last = self._quadratic_losses(lambda p: SGD(p, lr=0.02, momentum=0.9))
        assert last < first * 0.2

    def test_adam_converges(self):
        first, last = self._quadratic_losses(lambda p: Adam(p, lr=0.05))
        assert last < first * 0.2

    def test_adamw_converges(self):
        first, last = self._quadratic_losses(lambda p: AdamW(p, lr=0.05))
        assert last < first * 0.3

    def test_adamw_decays_weights(self):
        w = Parameter(np.ones((4,)) * 10.0)
        opt = AdamW([w], lr=0.1, weight_decay=0.5)
        w.grad = np.zeros(4)
        opt.step()
        assert np.all(w.data < 10.0)

    def test_optimizer_rejects_empty(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_optimizer_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(2))], lr=0.0)

    def test_step_lr_halves(self):
        opt = SGD([Parameter(np.zeros(2))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([3.0, 4.0, 0.0])
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_skips_params_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.5)
        opt.step()  # no grad — should not move
        np.testing.assert_allclose(p.data, np.ones(2))


@settings(max_examples=20, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=6),
    classes=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=9999),
)
def test_property_cross_entropy_nonnegative(batch, classes, seed):
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(batch, classes)))
    labels = rng.integers(0, classes, size=batch)
    assert F.cross_entropy(logits, labels).item() >= 0.0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=9999))
def test_property_softmax_grad_rows_sum_zero(seed):
    """Softmax Jacobian rows sum to zero => grad of sum over probs is 0."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    F.softmax(x).sum().backward()
    np.testing.assert_allclose(x.grad, np.zeros((3, 4)), atol=1e-9)
