"""Robustness / failure-injection tests across the stack.

These exercise the corners a production deployment hits: isolated nodes,
empty-edge subgraphs, degenerate episode shapes, tiny caches, model
serialisation round trips, and pathological inputs to the selector.
"""

import numpy as np
import pytest

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    GraphPrompterPipeline,
    PretrainConfig,
    Pretrainer,
    PromptSelector,
    sample_episode,
)
from repro.datasets import Dataset, EDGE_TASK, NODE_TASK
from repro.datasets.synthetic import (
    synthetic_citation_graph,
    synthetic_knowledge_graph,
)
from repro.graph import Graph, NodeInput, sample_data_graph
from repro.nn import Tensor, load_state, save_state


@pytest.fixture(scope="module")
def kg_dataset():
    graph = synthetic_knowledge_graph(250, 6, 2000, rng=0, name="kg-rb")
    return Dataset(graph, EDGE_TASK, rng=0)


@pytest.fixture(scope="module")
def trained_model(kg_dataset):
    cfg = GraphPrompterConfig(hidden_dim=12, max_subgraph_nodes=10)
    model = GraphPrompterModel(kg_dataset.graph.feature_dim,
                               kg_dataset.graph.num_relations, cfg)
    Pretrainer(model, kg_dataset, PretrainConfig(steps=25, num_ways=3),
               rng=0).train()
    return model


class TestIsolatedStructures:
    def test_isolated_node_encodes(self):
        graph = Graph(4, np.array([0, 1]), np.array([1, 2]),
                      node_features=np.eye(4))
        sub = sample_data_graph(graph, NodeInput(3), num_hops=2,
                                method="bfs")
        assert sub.num_nodes == 1 and sub.num_edges == 0
        model = GraphPrompterModel(4, 1, GraphPrompterConfig(hidden_dim=8))
        emb = model.encode_subgraphs([sub])
        assert emb.shape == (1, 8)
        assert np.all(np.isfinite(emb.data))

    def test_mixed_empty_and_nonempty_subgraphs(self):
        graph = Graph(5, np.array([0, 1, 2]), np.array([1, 2, 3]),
                      node_features=np.eye(5))
        subs = [
            sample_data_graph(graph, NodeInput(4), num_hops=1, method="bfs"),
            sample_data_graph(graph, NodeInput(1), num_hops=1, method="bfs"),
        ]
        model = GraphPrompterModel(5, 1, GraphPrompterConfig(hidden_dim=6))
        emb = model.encode_subgraphs(subs)
        assert emb.shape == (2, 6)
        assert np.all(np.isfinite(emb.data))

    def test_reconstruction_on_zero_edge_batch(self):
        graph = Graph(3, np.array([], dtype=int), np.array([], dtype=int),
                      node_features=np.eye(3))
        sub = sample_data_graph(graph, NodeInput(0), num_hops=1,
                                method="bfs")
        from repro.gnn import SubgraphBatch

        model = GraphPrompterModel(3, 1, GraphPrompterConfig(hidden_dim=4))
        weights = model.reconstruction_weights(
            SubgraphBatch.from_subgraphs([sub]))
        assert weights.shape == (0,)


class TestDegenerateEpisodes:
    def test_single_query_episode(self, kg_dataset, trained_model):
        episode = sample_episode(kg_dataset, num_ways=3, num_queries=1,
                                 rng=1)
        result = GraphPrompterPipeline(trained_model, kg_dataset,
                                       rng=2).run_episode(episode)
        assert result.num_queries == 1

    def test_candidates_equal_shots(self, kg_dataset, trained_model):
        """N == k: the selector has nothing to choose — must still work."""
        episode = sample_episode(kg_dataset, num_ways=3,
                                 num_candidates_per_class=3,
                                 num_queries=6, rng=3)
        result = GraphPrompterPipeline(trained_model, kg_dataset,
                                       rng=4).run_episode(episode, shots=3)
        assert result.num_queries == 6

    def test_query_batch_larger_than_queries(self, kg_dataset,
                                             trained_model):
        episode = sample_episode(kg_dataset, num_ways=3, num_queries=4,
                                 rng=5)
        result = GraphPrompterPipeline(trained_model, kg_dataset,
                                       rng=6).run_episode(
            episode, query_batch_size=64)
        assert result.num_queries == 4

    def test_cache_size_one(self, kg_dataset, trained_model):
        config = trained_model.config.ablate(cache_size=1)
        model = GraphPrompterModel(kg_dataset.graph.feature_dim,
                                   kg_dataset.graph.num_relations, config)
        model.load_state_dict(trained_model.state_dict())
        episode = sample_episode(kg_dataset, num_ways=3, num_queries=12,
                                 rng=7)
        pipeline = GraphPrompterPipeline(model, kg_dataset, rng=8)
        result = pipeline.run_episode(episode, query_batch_size=4)
        assert len(pipeline.augmenter) <= 1
        assert result.num_queries == 12

    def test_reset_cache_false_keeps_entries(self, kg_dataset,
                                             trained_model):
        episode = sample_episode(kg_dataset, num_ways=3, num_queries=6,
                                 rng=9)
        pipeline = GraphPrompterPipeline(trained_model, kg_dataset, rng=10)
        pipeline.run_episode(episode)
        filled = len(pipeline.augmenter)
        assert filled > 0
        pipeline.run_episode(episode, reset_cache=False)
        assert len(pipeline.augmenter) >= 1  # cache was not wiped first


class TestSerialization:
    @pytest.mark.parametrize("scorer", ["mlp", "bilinear", "cosine_gate"])
    def test_full_model_roundtrip(self, tmp_path, scorer):
        cfg = GraphPrompterConfig(hidden_dim=8, recon_scorer=scorer)
        model = GraphPrompterModel(16, 4, cfg)
        path = str(tmp_path / f"model-{scorer}.npz")
        save_state(model, path)
        clone = GraphPrompterModel(16, 4, cfg.ablate(seed=99))
        load_state(clone, path)
        for (name_a, p_a), (name_b, p_b) in zip(
                model.named_parameters(), clone.named_parameters()):
            assert name_a == name_b
            np.testing.assert_allclose(p_a.data, p_b.data)

    def test_scorer_mismatch_rejected(self, tmp_path):
        mlp = GraphPrompterModel(8, 1,
                                 GraphPrompterConfig(hidden_dim=8))
        path = str(tmp_path / "mlp.npz")
        save_state(mlp, path)
        bilinear = GraphPrompterModel(
            8, 1, GraphPrompterConfig(hidden_dim=8,
                                      recon_scorer="bilinear"))
        with pytest.raises(KeyError):
            load_state(bilinear, path)


class TestSelectorPathologies:
    def test_all_zero_embeddings(self):
        """Zero embeddings (cosine undefined) must not produce NaNs."""
        cfg = GraphPrompterConfig()
        selector = PromptSelector(cfg, rng=0)
        candidates = np.zeros((9, 4))
        labels = np.repeat(np.arange(3), 3)
        queries = np.zeros((2, 4))
        selected = selector.select(candidates, np.full(9, 0.5), queries,
                                   np.full(2, 0.5), labels, shots=2)
        assert len(selected) == 6

    def test_identical_candidates(self):
        cfg = GraphPrompterConfig()
        selector = PromptSelector(cfg, rng=0)
        candidates = np.ones((6, 4))
        labels = np.repeat(np.arange(2), 3)
        queries = np.ones((3, 4))
        selected = selector.select(candidates, np.ones(6), queries,
                                   np.ones(3), labels, shots=2)
        np.testing.assert_array_equal(np.bincount(labels[selected]), [2, 2])

    def test_extreme_magnitudes_stay_finite(self, kg_dataset, trained_model):
        cfg = trained_model.config
        selector = PromptSelector(cfg, rng=0)
        candidates = np.random.default_rng(0).normal(size=(6, 4)) * 1e12
        queries = np.random.default_rng(1).normal(size=(2, 4)) * 1e-12
        scores = selector.scores(candidates, np.ones(6), queries, np.ones(2))
        assert np.all(np.isfinite(scores))


class TestPretrainerFailures:
    def test_nm_on_too_sparse_graph(self):
        graph = Graph(10, np.array([0]), np.array([1]),
                      node_features=np.eye(10),
                      node_labels=np.arange(10) % 2)
        dataset = Dataset(graph, NODE_TASK, rng=0)
        model = GraphPrompterModel(10, 1, GraphPrompterConfig(hidden_dim=4))
        trainer = Pretrainer(model, dataset,
                             PretrainConfig(steps=1, num_ways=4), rng=0)
        with pytest.raises(ValueError):
            trainer.train()

    def test_mt_without_enough_classes(self):
        graph = synthetic_citation_graph(40, 2, rng=0)
        # Collapse labels to one class: multi-task becomes impossible.
        graph.node_labels[:] = 0
        dataset = Dataset(graph, NODE_TASK, rng=0)
        model = GraphPrompterModel(graph.feature_dim, 1,
                                   GraphPrompterConfig(hidden_dim=4))
        trainer = Pretrainer(
            model, dataset,
            PretrainConfig(steps=1, num_ways=3, neighbor_matching=False),
            rng=0)
        with pytest.raises(ValueError):
            trainer.train()


class TestNumericalStability:
    def test_pipeline_confidences_are_probabilities(self, kg_dataset,
                                                    trained_model):
        episode = sample_episode(kg_dataset, num_ways=4, num_queries=16,
                                 rng=11)
        result = GraphPrompterPipeline(trained_model, kg_dataset,
                                       rng=12).run_episode(episode)
        assert np.all(result.confidences > 0)
        assert np.all(result.confidences <= 1.0)
        assert np.all(np.isfinite(result.confidences))

    def test_logits_finite_with_huge_embeddings(self, trained_model):
        prompts = Tensor(np.random.default_rng(0).normal(size=(6, 12)) * 1e9)
        queries = Tensor(np.random.default_rng(1).normal(size=(2, 12)) * 1e9)
        logits = trained_model.task_logits(
            prompts, np.repeat(np.arange(3), 2), queries, 3)
        assert np.all(np.isfinite(logits.data))
