"""Sharded graph execution: partitioner invariants, bit-identity, serving.

Pins the contracts of :mod:`repro.shard` and its serving integration:

* partitioner — every directed edge on exactly one shard, global↔local id
  maps are bijections, the shard union reconstructs the original graph;
* store — the CSR-compatible query surface (``neighbors`` /
  ``gather_neighbors`` / ``degree``) answers exactly like the monolithic
  adjacency, for any K and either strategy;
* sampling — BFS and random-walk over the sharded view are bit-identical
  to the monolithic engines (same RNG state), across ≥20 random graphs ×
  seeds × K ∈ {1, 2, 4};
* serving — ``PromptServer(num_shards=..., num_workers=...)`` returns the
  same predictions as the monolithic server (confidences equal up to the
  encoder's batch-shape float wobble) and surfaces per-shard counters.
"""

import numpy as np
import pytest

from repro.core import GraphPrompterConfig, GraphPrompterModel, sample_episode
from repro.core.inference import GraphPrompterPipeline
from repro.datasets import Dataset, EDGE_TASK
from repro.datasets.synthetic import (
    synthetic_citation_graph,
    synthetic_knowledge_graph,
)
from repro.graph import EdgeInput
from repro.graph.delta import GraphUpdate
from repro.graph.sampling import (
    bfs_neighborhood,
    random_walk_neighborhood,
    sample_data_graph,
)
from repro.serving import PromptServer
from repro.serving.router import ShardRouter
from repro.shard import (
    PARTITION_STRATEGIES,
    ShardedGraphStore,
    WorkerPool,
    partition_graph,
    partition_nodes,
)
from repro.shard.workers import usable_cores

SHARD_COUNTS = (1, 2, 4)


def random_graphs(count: int, base_seed: int = 0):
    """Mixed KG / citation graphs spanning degree regimes."""
    graphs = []
    for i in range(count):
        if i % 2 == 0:
            graphs.append(synthetic_knowledge_graph(
                60 + 17 * i, 4 + i % 3, 300 + 41 * i, feature_dim=6,
                rng=base_seed + i))
        else:
            graphs.append(synthetic_citation_graph(
                50 + 13 * i, 5, feature_dim=6, avg_degree=6.0,
                rng=base_seed + i))
    return graphs


# ----------------------------------------------------------------------
# Partitioner invariants
# ----------------------------------------------------------------------
class TestPartitionerInvariants:

    def test_every_edge_assigned_exactly_once(self):
        for graph in random_graphs(10):
            for K in SHARD_COUNTS:
                for strategy in PARTITION_STRATEGIES:
                    plan = partition_graph(graph, K, strategy)
                    assigned = np.concatenate(
                        [shard.edge_ids for shard in plan.shards])
                    assert np.array_equal(
                        np.sort(assigned), np.arange(graph.num_edges))

    def test_id_maps_are_bijections(self):
        for graph in random_graphs(6):
            for K in SHARD_COUNTS:
                plan = partition_graph(graph, K, "greedy")
                # Owned node sets partition V.
                owned_all = np.concatenate(
                    [shard.nodes for shard in plan.shards])
                assert np.array_equal(np.sort(owned_all),
                                      np.arange(graph.num_nodes))
                for shard in plan.shards:
                    # local -> global -> local roundtrip on owned nodes.
                    assert np.array_equal(
                        shard.local_nodes[plan.local_id[shard.nodes]],
                        shard.nodes)
                    assert np.array_equal(
                        plan.local_id[shard.nodes],
                        np.arange(shard.num_owned))
                    # Ghosts are foreign and never duplicated.
                    ghosts = shard.local_nodes[shard.num_owned:]
                    assert np.unique(ghosts).size == ghosts.size
                    assert not np.isin(ghosts, shard.nodes).any()
                    assert (plan.owner[ghosts] != shard.shard_id).all()

    def test_shard_union_reconstructs_graph(self):
        for graph in random_graphs(6):
            for strategy in PARTITION_STRATEGIES:
                plan = partition_graph(graph, 3, strategy)
                src_parts, dst_parts, eid_parts = [], [], []
                for shard in plan.shards:
                    lens = np.diff(shard.d_indptr)
                    src_parts.append(np.repeat(shard.nodes, lens))
                    dst_parts.append(shard.d_indices)
                    eid_parts.append(shard.d_edge_ids)
                eids = np.concatenate(eid_parts)
                order = np.argsort(eids)
                assert np.array_equal(eids[order],
                                      np.arange(graph.num_edges))
                assert np.array_equal(
                    np.concatenate(src_parts)[order], graph.src)
                assert np.array_equal(
                    np.concatenate(dst_parts)[order], graph.dst)

    def test_greedy_balances_better_than_hash_on_skew(self):
        graph = synthetic_citation_graph(400, 5, feature_dim=4,
                                         avg_degree=8.0, rng=3)

        def spread(strategy):
            owner = partition_nodes(graph, 4, strategy)
            degrees = np.asarray(graph.degree())
            loads = np.bincount(owner, weights=degrees, minlength=4)
            return loads.max() - loads.min()

        assert spread("greedy") <= spread("hash")

    def test_partition_validation(self):
        graph = synthetic_knowledge_graph(20, 2, 60, feature_dim=4, rng=0)
        with pytest.raises(ValueError):
            partition_nodes(graph, 0)
        with pytest.raises(ValueError):
            partition_nodes(graph, 2, "metis")


# ----------------------------------------------------------------------
# Store query surface
# ----------------------------------------------------------------------
class TestShardedStoreSurface:

    def test_neighbors_and_degree_match_monolithic(self):
        for graph in random_graphs(4, base_seed=20):
            adj = graph.undirected_adjacency
            for K in SHARD_COUNTS:
                store = ShardedGraphStore.from_graph(graph, K, "hash")
                for node in range(graph.num_nodes):
                    assert np.array_equal(store.neighbors(node),
                                          adj.neighbors(node))
                assert np.array_equal(store.degree(), adj.degree())
                assert store.degree(3) == adj.degree(3)

    def test_gather_neighbors_matches_monolithic(self):
        rng = np.random.default_rng(5)
        for graph in random_graphs(4, base_seed=30):
            adj = graph.undirected_adjacency
            store = ShardedGraphStore.from_graph(graph, 4, "greedy")
            for size in (1, 7, 40):
                frontier = rng.integers(0, graph.num_nodes, size=size)
                assert np.array_equal(store.gather_neighbors(frontier),
                                      adj.gather_neighbors(frontier))
            assert store.gather_neighbors(
                np.empty(0, dtype=np.int64)).size == 0

    def test_directed_rows_and_features_match(self):
        graph = synthetic_knowledge_graph(90, 4, 500, feature_dim=8, rng=7)
        store = ShardedGraphStore.from_graph(graph, 3, "greedy")
        view = store.view()
        adj = graph.adjacency
        for node in range(graph.num_nodes):
            dsts, eids = view.adjacency.neighbor_edges(node)
            ref_dsts, ref_eids = adj.neighbor_edges(node)
            assert np.array_equal(dsts, ref_dsts)
            assert np.array_equal(eids, ref_eids)
        nodes = np.array([0, 5, 17, 2, 88])
        assert np.array_equal(view.node_features[nodes],
                              graph.node_features[nodes])
        assert view.num_nodes == graph.num_nodes
        assert view.num_edges == graph.num_edges
        assert view.feature_dim == graph.feature_dim

    def test_halo_counting(self):
        """Pins the counter semantics: a halo fetch is a row actually
        pulled from a remote shard — cache hits are local and free."""
        graph = synthetic_knowledge_graph(80, 3, 400, feature_dim=4, rng=1)
        store = ShardedGraphStore.from_graph(graph, 2, "hash")
        store.cache_enabled = False
        # No home shard set: nothing counts as halo.
        store.gather_neighbors(np.arange(graph.num_nodes))
        assert store.halo_fetches == 0
        store.home_shard = 0
        remote = int((store.owner != 0).sum())
        # Cache disabled: every remote row counts on every call.
        store.gather_neighbors(np.arange(graph.num_nodes))
        assert store.halo_fetches == remote
        store.gather_neighbors(np.arange(graph.num_nodes))
        assert store.halo_fetches == 2 * remote
        store.reset_counters()
        assert store.halo_fetches == 0
        # Cache enabled: the first expansion fetches (and counts) each
        # remote row once; repeats are cache hits — no new fetches.
        store.cache_enabled = True
        store.gather_neighbors(np.arange(graph.num_nodes))
        assert store.halo_fetches == remote
        store.gather_neighbors(np.arange(graph.num_nodes))
        assert store.halo_fetches == remote
        stats = store.cache_stats()
        assert stats["misses"] == graph.num_nodes
        assert stats["hits"] == graph.num_nodes
        assert stats["cached_rows"] == graph.num_nodes

    def test_degree_counts_halo_fetches(self):
        """Regression: remote degree lookups used to be invisible in the
        halo ledger (neither single-node nor full-vector form counted)."""
        graph = synthetic_knowledge_graph(60, 3, 300, feature_dim=4, rng=3)
        store = ShardedGraphStore.from_graph(graph, 2, "hash")
        store.cache_enabled = False
        store.home_shard = 0
        local = int(np.flatnonzero(store.owner == 0)[0])
        remote = int(np.flatnonzero(store.owner != 0)[0])
        store.degree(local)
        assert store.halo_fetches == 0
        store.degree(remote)
        assert store.halo_fetches == 1
        store.reset_counters()
        store.degree()
        assert store.halo_fetches == int((store.owner != 0).sum())
        # A cached row answers degree locally: no fetch, no count.
        store.cache_enabled = True
        store.reset_counters()
        store.neighbors(remote)
        assert store.halo_fetches == 1
        assert store.degree(remote) == graph.degree(remote)
        assert store.halo_fetches == 1

    def test_halo_cache_transparent_and_invalidated(self):
        """Cache-served reads are bit-identical, and any applied update
        flushes the cache (graph-version epoch invalidation)."""
        graph = synthetic_knowledge_graph(70, 3, 350, feature_dim=4, rng=5)
        adj_rows = [graph.undirected_adjacency.neighbors(n).copy()
                    for n in range(graph.num_nodes)]
        store = ShardedGraphStore.from_graph(graph, 3, "greedy")
        frontier = np.arange(graph.num_nodes)
        cold = store.gather_neighbors(frontier).copy()
        warm = store.gather_neighbors(frontier)
        assert np.array_equal(cold, warm)
        for node in range(graph.num_nodes):
            assert np.array_equal(store.neighbors(node), adj_rows[node])
        before = store.cache_stats()
        assert before["cached_rows"] == graph.num_nodes
        applied = graph.apply_updates(GraphUpdate(add_src=[0], add_dst=[1]))
        store.apply_updates(applied)
        stats = store.cache_stats()
        assert stats["cached_rows"] == 0
        assert stats["invalidations"] == before["invalidations"] + 1
        rebuilt = ShardedGraphStore.from_graph(graph.rebuild(), 3, "greedy")
        assert np.array_equal(store.gather_neighbors(frontier),
                              rebuilt.gather_neighbors(frontier))

    def test_prefetch_rows_warms_cache(self):
        """Batched frontier expansion: one prefetch round-trip makes the
        per-session expansions that follow pure cache hits."""
        graph = synthetic_knowledge_graph(80, 3, 400, feature_dim=4, rng=2)
        store = ShardedGraphStore.from_graph(graph, 3, "greedy")
        store.home_shard = 0
        seeds = np.array([1, 17, 33, 17, 64], dtype=np.int64)
        fetched = store.prefetch_rows(seeds)
        assert fetched == np.unique(seeds).size
        after_prefetch = store.halo_fetches
        stats = store.cache_stats()
        assert stats["batched_fetches"] == 1
        assert stats["prefetched_rows"] == np.unique(seeds).size
        # Per-session reads of the prefetched rows are local now.
        for seed in seeds:
            assert np.array_equal(
                store.neighbors(int(seed)),
                graph.undirected_adjacency.neighbors(int(seed)))
        assert store.halo_fetches == after_prefetch
        # Re-prefetching warm rows is a no-op.
        assert store.prefetch_rows(seeds) == 0
        assert store.cache_stats()["batched_fetches"] == 1
        store.home_shard = None

    def test_assign_owners_deterministic_and_balanced(self):
        """Greedy owner assignment: heap path must match the argmin
        semantics (lowest load, ties to lowest shard id) exactly."""
        graph = synthetic_knowledge_graph(50, 3, 250, feature_dim=4, rng=9)
        store = ShardedGraphStore.from_graph(graph, 4, "greedy")
        new_nodes = np.arange(50, 50 + 37, dtype=np.int64)
        owners = store._assign_owners(new_nodes)
        assert np.array_equal(owners, store._assign_owners(new_nodes))
        # Reference: the original O(n*K) argmin greedy loop.
        loads = np.array([sh.num_owned for sh in store.shards],
                         dtype=np.int64)
        expected = np.empty(new_nodes.size, dtype=np.int64)
        for i in range(new_nodes.size):
            k = int(np.argmin(loads))
            expected[i] = k
            loads[k] += 1
        assert np.array_equal(owners, expected)
        # Greedy fills the emptiest shard first, so spread never widens.
        initial = np.array([sh.num_owned for sh in store.shards])
        assert loads.max() - loads.min() <= max(
            int(initial.max() - initial.min()), 1)


# ----------------------------------------------------------------------
# Sampling bit-identity
# ----------------------------------------------------------------------
class TestShardedSamplingBitIdentity:

    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_bfs_and_walk_match_monolithic_engines(self, strategy):
        graphs = random_graphs(10, base_seed=40)
        assert len(graphs) * len(SHARD_COUNTS) >= 20
        for gi, graph in enumerate(graphs):
            views = {K: ShardedGraphStore.from_graph(graph, K,
                                                     strategy).view()
                     for K in SHARD_COUNTS}
            for seed in range(3):
                seeds = np.array([(7 * seed + gi) % graph.num_nodes])
                for sampler, hops, cap in (
                        (bfs_neighborhood, 2, 24),
                        (random_walk_neighborhood, 3, 24)):
                    for engine in ("vectorized", "legacy"):
                        reference = sampler(
                            graph, seeds, hops, cap,
                            np.random.default_rng(seed), engine=engine)
                        for K, view in views.items():
                            out = sampler(
                                view, seeds, hops, cap,
                                np.random.default_rng(seed), engine=engine)
                            assert np.array_equal(out, reference), (
                                f"graph {gi} K={K} {strategy} "
                                f"{sampler.__name__} {engine} seed {seed}")

    def test_sampled_subgraph_identical(self):
        graph = synthetic_knowledge_graph(100, 5, 600, feature_dim=8, rng=2)
        view = ShardedGraphStore.from_graph(graph, 4, "greedy").view()
        for seed in range(5):
            datapoint = EdgeInput(seed * 3, seed * 7 + 1, relation=1)
            expected = sample_data_graph(
                graph, datapoint, num_hops=2, max_nodes=16,
                rng=np.random.default_rng(seed))
            actual = sample_data_graph(
                view, datapoint, num_hops=2, max_nodes=16,
                rng=np.random.default_rng(seed))
            for field in ("nodes", "src", "dst", "rel", "node_features",
                          "centers"):
                assert np.array_equal(getattr(expected, field),
                                      getattr(actual, field)), field
            if expected.rel_features is None:
                assert actual.rel_features is None
            else:
                assert np.array_equal(expected.rel_features,
                                      actual.rel_features)


# ----------------------------------------------------------------------
# Scratch reentrancy
# ----------------------------------------------------------------------
class TestScratchCheckout:

    def test_concurrent_borrowers_get_distinct_masks(self):
        graph = synthetic_knowledge_graph(50, 3, 200, feature_dim=4, rng=0)
        adj = graph.undirected_adjacency
        first = adj.visited_scratch()
        second = adj.visited_scratch()
        assert first is not second
        first[3] = True   # a dirty mask must not leak to the next borrower
        first[3] = False
        adj.release_scratch(first)
        adj.release_scratch(second)
        assert adj.visited_scratch() is second
        assert adj.visited_scratch() is first

    def test_interleaved_sampling_is_isolated(self):
        # A sampler borrowing the scratch while another borrow is live
        # must not corrupt the outer borrower's visited state.
        graph = synthetic_knowledge_graph(60, 3, 300, feature_dim=4, rng=1)
        adj = graph.undirected_adjacency
        outer = adj.visited_scratch()
        outer[:10] = True
        result = bfs_neighborhood(graph, np.array([0]), 2, 16,
                                  np.random.default_rng(0))
        fresh = bfs_neighborhood(graph, np.array([0]), 2, 16,
                                 np.random.default_rng(0))
        assert np.array_equal(result, fresh)
        assert outer[:10].all() and not outer[10:].any()
        outer[:10] = False
        adj.release_scratch(outer)


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
def _pool_context(base):
    return {"base": base}


def _square_task(context, task):
    return context["base"] + task * task


class TestWorkerPool:

    def test_serial_map_preserves_order(self):
        pool = WorkerPool(_pool_context, initargs=(100,), num_workers=1,
                          backend="serial")
        out = pool.map(_square_task, range(8))
        assert [r for r, _ in out] == [100 + i * i for i in range(8)]
        assert all(busy >= 0.0 for _, busy in out)
        pool.close()

    def test_process_map_matches_serial(self):
        with WorkerPool(_pool_context, initargs=(7,), num_workers=2,
                        backend="process") as pool:
            out = pool.map(_square_task, range(16))
        assert [r for r, _ in out] == [7 + i * i for i in range(16)]

    def test_auto_backend_is_core_aware(self):
        pool = WorkerPool(_pool_context, initargs=(0,), num_workers=4,
                          backend="auto")
        expected = "process" if usable_cores() > 1 else "serial"
        assert pool.backend == expected
        pool.close()
        single = WorkerPool(_pool_context, initargs=(0,), num_workers=1,
                            backend="auto")
        assert single.backend == "serial"
        single.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(_pool_context, num_workers=0)
        with pytest.raises(ValueError):
            WorkerPool(_pool_context, backend="thread")

    def test_empty_map(self):
        pool = WorkerPool(_pool_context, backend="serial")
        assert pool.map(_square_task, []) == []
        pool.close()


# ----------------------------------------------------------------------
# Serving integration
# ----------------------------------------------------------------------
def _serving_fixture():
    config = GraphPrompterConfig(hidden_dim=12, max_subgraph_nodes=10)
    graph = synthetic_knowledge_graph(150, 5, 900, feature_dim=10, rng=0)
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    model = GraphPrompterModel(graph.feature_dim, graph.num_relations,
                               config)
    episodes = [sample_episode(dataset, num_ways=3, num_queries=4,
                               rng=50 + i) for i in range(3)]
    return model, dataset, episodes


def _run_workload(model, dataset, episodes, **server_kwargs):
    server = PromptServer(model, dataset, max_batch_size=6, rng=0,
                          **server_kwargs)
    for i, episode in enumerate(episodes):
        server.open_session(f"s{i}", episode)
    for q in range(episodes[0].num_queries):
        for i, episode in enumerate(episodes):
            server.submit(f"s{i}", episode.queries[q])
    results = server.drain()
    stats = server.stats
    server.close()
    return results, stats


class TestShardRouter:

    def test_encode_points_matches_pipeline(self):
        model, dataset, episodes = _serving_fixture()
        pipeline = GraphPrompterPipeline(model, dataset, rng=0)
        pipeline.generator.deterministic = True
        datapoints = list(episodes[0].candidates) + list(episodes[0].queries)
        expected_emb, expected_imp = pipeline.encode_points(datapoints)
        for K in (2, 4):
            router = ShardRouter(model, dataset.graph, num_shards=K,
                                 num_workers=1, backend="serial")
            emb, importance = router.encode_points(datapoints)
            # Same subgraphs, same weights; only gemm batch shapes differ,
            # so agreement is to float wobble, not necessarily bitwise.
            np.testing.assert_allclose(emb, expected_emb,
                                       rtol=0, atol=1e-12)
            np.testing.assert_allclose(importance, expected_imp,
                                       rtol=0, atol=1e-12)
            ledgers = router.stats()
            assert sum(c.requests for c in ledgers) == len(datapoints)
            assert all(c.worker_busy_s >= 0.0 for c in ledgers)
            router.close()


class TestShardedPromptServer:

    def test_sharded_results_match_monolithic(self):
        model, dataset, episodes = _serving_fixture()
        reference, ref_stats = _run_workload(model, dataset, episodes)
        assert ref_stats.shards == ()
        for kwargs in (
                dict(num_shards=2, num_workers=2, worker_backend="serial"),
                dict(num_shards=4, num_workers=1),
                dict(num_shards=2, num_workers=2, shard_strategy="hash",
                     worker_backend="serial")):
            results, stats = _run_workload(model, dataset, episodes,
                                           **kwargs)
            assert ([(r.session_id, r.prediction) for r in results]
                    == [(r.session_id, r.prediction) for r in reference])
            np.testing.assert_allclose(
                [r.confidence for r in results],
                [r.confidence for r in reference], rtol=0, atol=1e-9)
            assert len(stats.shards) == kwargs["num_shards"]
            total = sum(c.requests for c in stats.shards)
            pool_points = sum(len(e.candidates) for e in episodes)
            query_points = sum(e.num_queries for e in episodes)
            assert total == pool_points + query_points
            assert sum(c.worker_busy_s for c in stats.shards) > 0.0
            assert stats.halo_fetches >= 0

    def test_process_backend_matches_serial(self):
        model, dataset, episodes = _serving_fixture()
        serial, _ = _run_workload(model, dataset, episodes, num_shards=2,
                                  num_workers=2, worker_backend="serial")
        process, _ = _run_workload(model, dataset, episodes, num_shards=2,
                                   num_workers=2, worker_backend="process")
        assert ([(r.session_id, r.prediction, r.confidence)
                 for r in process]
                == [(r.session_id, r.prediction, r.confidence)
                    for r in serial])

    def test_config_defaults_feed_server(self):
        model, dataset, episodes = _serving_fixture()
        sharded_config = model.config.ablate(num_shards=2, num_workers=1)
        sharded_model = GraphPrompterModel(dataset.graph.feature_dim,
                                           dataset.graph.num_relations,
                                           sharded_config)
        sharded_model.load_state_dict(model.state_dict())
        server = PromptServer(sharded_model, dataset, rng=0)
        assert server.router is not None
        assert server.router.num_shards == 2
        server.close()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GraphPrompterConfig(num_shards=0).validate()
        with pytest.raises(ValueError):
            GraphPrompterConfig(num_workers=0).validate()
        with pytest.raises(ValueError):
            GraphPrompterConfig(shard_strategy="metis").validate()
        with pytest.raises(ValueError):
            GraphPrompterConfig(worker_backend="thread").validate()
