"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiment == "table2"
        assert not args.fast
        assert args.pretrain_steps == 400

    def test_flags(self):
        args = build_parser().parse_args(
            ["fig5", "--fast", "--pretrain-steps", "10", "--no-disk-cache"])
        assert args.fast
        assert args.pretrain_steps == 10
        assert args.no_disk_cache


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_table2_fast(self, capsys):
        code = main(["table2", "--fast", "--no-disk-cache",
                     "--pretrain-steps", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "finished in" in out

    def test_registry_covers_all_paper_artifacts(self):
        tables = {f"table{i}" for i in range(2, 9)}
        figures = {f"fig{i}" for i in range(3, 10)}
        assert tables <= set(EXPERIMENTS)
        assert figures <= set(EXPERIMENTS)
