"""Tests for the command-line experiment runner."""

import repro.cli
from repro.cli import EXPERIMENTS, build_parser, main
from repro.experiments import TableResult


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiment == "table2"
        assert not args.fast
        assert args.pretrain_steps == 400

    def test_flags(self):
        args = build_parser().parse_args(
            ["fig5", "--fast", "--pretrain-steps", "10", "--no-disk-cache"])
        assert args.fast
        assert args.pretrain_steps == 10
        assert args.no_disk_cache


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_list_is_sorted(self, capsys):
        main(["list"])
        lines = [line.split()[0] for line in
                 capsys.readouterr().out.strip().splitlines()]
        assert lines == sorted(lines)

    def test_unknown_experiment(self, capsys):
        assert main(["table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_table2_fast(self, capsys):
        code = main(["table2", "--fast", "--no-disk-cache",
                     "--pretrain-steps", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "finished in" in out

    def test_registry_covers_all_paper_artifacts(self):
        tables = {f"table{i}" for i in range(2, 9)}
        figures = {f"fig{i}" for i in range(3, 10)}
        assert tables <= set(EXPERIMENTS)
        assert figures <= set(EXPERIMENTS)
        assert "serve-bench" in EXPERIMENTS


def _stub_result(name):
    return TableResult(title=name, headers=["x"], rows=[[1]])


class TestRunAll:
    def test_all_prints_wall_clock_summary(self, capsys, monkeypatch):
        monkeypatch.setattr(repro.cli, "EXPERIMENTS", {
            "alpha": (lambda ctx: _stub_result("alpha"), "stub"),
            "beta": (lambda ctx: _stub_result("beta"), "stub"),
        })
        assert main(["all", "--fast", "--no-disk-cache"]) == 0
        out = capsys.readouterr().out
        assert "Wall-clock summary" in out
        assert "alpha" in out and "beta" in out and "total" in out

    def test_all_keeps_going_and_exits_nonzero_on_failure(
            self, capsys, monkeypatch):
        def boom(ctx):
            raise RuntimeError("synthetic failure")

        ran = []

        def ok(ctx):
            ran.append(True)
            return _stub_result("ok")

        monkeypatch.setattr(repro.cli, "EXPERIMENTS", {
            "bad": (boom, "stub"),
            "good": (ok, "stub"),
        })
        assert main(["all", "--fast", "--no-disk-cache"]) == 1
        captured = capsys.readouterr()
        assert ran == [True]  # the failure did not stop the run
        assert "synthetic failure" in captured.err
        assert "FAILED" in captured.out

    def test_single_experiment_failure_exits_nonzero(self, monkeypatch,
                                                     capsys):
        def boom(ctx):
            raise ValueError("nope")

        monkeypatch.setattr(repro.cli, "EXPERIMENTS",
                            {"bad": (boom, "stub")})
        assert main(["bad", "--fast", "--no-disk-cache"]) == 1
        assert "nope" in capsys.readouterr().err
