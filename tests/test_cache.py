"""Tests for the O(1) LFU cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CACHE_POLICIES, LFUCache, make_cache


class TestBasics:
    def test_put_get(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 0) == 0

    def test_len_contains(self):
        cache = LFUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 2
        assert "a" in cache and "c" not in cache

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LFUCache(0)

    def test_update_existing_key(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        assert cache.put("a", 2) is None
        assert cache.peek("a") == 2
        assert len(cache) == 1


class TestEviction:
    def test_evicts_least_frequent(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # a: freq 2, b: freq 1
        evicted = cache.put("c", 3)
        assert evicted == "b"
        assert "a" in cache and "c" in cache

    def test_fifo_among_ties(self):
        cache = LFUCache(2)
        cache.put("first", 1)
        cache.put("second", 2)
        evicted = cache.put("third", 3)  # both freq 1 -> evict oldest
        assert evicted == "first"

    def test_touch_protects_entry(self):
        cache = LFUCache(2)
        cache.put("keep", 1)
        cache.put("drop", 2)
        assert cache.touch("keep")
        assert not cache.touch("absent")
        assert cache.put("new", 3) == "drop"

    def test_eviction_chain(self):
        cache = LFUCache(3)
        for key in "abc":
            cache.put(key, key)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        # freq: a=3, b=2, c=1
        assert cache.put("d", "d") == "c"
        assert cache.put("e", "e") == "d"  # d entered at freq 1


class TestFrequencyBookkeeping:
    def test_frequency_counts(self):
        cache = LFUCache(4)
        cache.put("a", 1)
        assert cache.frequency("a") == 1
        cache.get("a")
        cache.touch("a")
        assert cache.frequency("a") == 3
        assert cache.frequency("nope") == 0

    def test_peek_does_not_bump(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.peek("a")
        assert cache.frequency("a") == 1

    def test_items_in_frequency_order(self):
        cache = LFUCache(3)
        cache.put("low", 1)
        cache.put("high", 2)
        for _ in range(3):
            cache.touch("high")
        keys = [k for k, _ in cache.items()]
        assert keys.index("low") < keys.index("high")

    def test_clear(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert list(cache.items()) == []
        cache.put("b", 2)  # usable after clear
        assert cache.peek("b") == 2

    def test_keys_values(self):
        cache = LFUCache(2)
        cache.put("a", 10)
        cache.put("b", 20)
        assert set(cache.keys()) == {"a", "b"}
        assert set(cache.values()) == {10, 20}

    def test_repr(self):
        assert "capacity=2" in repr(LFUCache(2))


class TestStats:
    def test_counters_track_events(self):
        cache = LFUCache(2)
        stats = cache.stats()
        assert (stats.size, stats.capacity) == (0, 2)
        assert (stats.hits, stats.misses) == (0, 0)
        assert (stats.insertions, stats.evictions) == (0, 0)

        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # hit
        cache.touch("a")        # hit
        cache.get("ghost")      # miss
        cache.touch("ghost")    # miss
        cache.put("c", 3)       # insertion + eviction of "b"

        stats = cache.stats()
        assert stats.size == 2
        assert stats.hits == 2
        assert stats.misses == 2
        assert stats.insertions == 3
        assert stats.evictions == 1

    def test_update_existing_is_not_insertion(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.stats().insertions == 1
        assert cache.stats().evictions == 0

    def test_hit_rate(self):
        cache = LFUCache(2)
        assert cache.stats().hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.stats().hit_rate == pytest.approx(0.5)

    def test_clear_resets_counters(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        stats = cache.stats()
        assert (stats.size, stats.hits, stats.misses,
                stats.insertions, stats.evictions) == (0, 0, 0, 0, 0)

    @pytest.mark.parametrize("policy", sorted(CACHE_POLICIES))
    def test_every_policy_exposes_stats(self, policy):
        """LFU/LRU/FIFO share the counter interface the Augmenter surfaces."""
        cache = make_cache(policy, 2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.touch("a")
        cache.get("ghost")
        cache.put("c", 3)  # evicts one entry under every policy
        stats = cache.stats()
        assert stats.size == 2 and stats.capacity == 2
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.insertions == 3
        assert stats.evictions == 1


class TestAugmenterStats:
    def test_augmenter_surfaces_cache_stats(self):
        from repro.core import GraphPrompterConfig, PromptAugmenter

        config = GraphPrompterConfig(hidden_dim=4, cache_size=2)
        augmenter = PromptAugmenter(config, rng=0)
        emb = np.eye(3, 4)
        augmenter.update(emb, np.array([0, 1, 2]), np.array([0.9, 0.8, 0.7]))
        stats = augmenter.stats()
        assert stats.capacity == 2
        assert stats.size == 2
        assert stats.insertions == 3
        assert stats.evictions == 1
        hits = augmenter.record_hits(emb[:1], top_k=2)
        assert augmenter.stats().hits == hits > 0
        augmenter.reset()
        assert augmenter.stats().insertions == 0


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "get", "touch"]),
                  st.integers(min_value=0, max_value=12)),
        min_size=1,
        max_size=60,
    ),
)
def test_property_against_reference_model(capacity, ops):
    """The O(1) cache matches a brute-force LFU reference on random traces."""
    cache = LFUCache(capacity)
    # Reference: dict of key -> [frequency, last_bump_order, value].
    # Ties inside a frequency bucket break FIFO by the time the key last
    # *entered* that bucket (i.e. its last frequency change), matching the
    # linked-bucket construction.
    ref: dict[int, list] = {}
    counter = 0

    for op, key in ops:
        counter += 1
        if op == "put":
            if key in ref:
                ref[key][0] += 1
                ref[key][1] = counter
                ref[key][2] = counter
                cache.put(key, counter)
            else:
                if len(ref) >= capacity:
                    victim = min(ref.items(),
                                 key=lambda kv: (kv[1][0], kv[1][1]))[0]
                    del ref[victim]
                ref[key] = [1, counter, counter]
                cache.put(key, counter)
        elif op == "get":
            expected = ref.get(key, [None, None, None])[2]
            got = cache.get(key)
            assert got == expected
            if key in ref:
                ref[key][0] += 1
                ref[key][1] = counter
        else:  # touch
            hit = cache.touch(key)
            assert hit == (key in ref)
            if key in ref:
                ref[key][0] += 1
                ref[key][1] = counter

    assert len(cache) == len(ref)
    for key, (freq, _, value) in ref.items():
        assert cache.peek(key) == value
        assert cache.frequency(key) == freq
