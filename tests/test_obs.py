"""Tests for the unified observability layer (repro.obs).

Covers the metric primitives (bucket boundaries, quantile estimation,
merge/drain), the Prometheus text exposition (format, escaping), the
cross-process merge protocol through :class:`WorkerPool`, the gateway
trace pipeline (per-stage spans, deterministic sampling), and the
bit-identity contract: tracing must never change predictions.
"""

import asyncio
import re
import urllib.error
import urllib.request

import pytest

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.datasets import Dataset, EDGE_TASK
from repro.datasets.synthetic import synthetic_knowledge_graph
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsEndpoint,
    MetricsRegistry,
    Tracer,
    escape_label_value,
    get_registry,
    render,
    scoped_registry,
    scrape,
    span,
)
from repro.obs.tracing import batch_scope
from repro.serving import Overloaded, Priority, PromptServer, ServingGateway
from repro.shard.workers import WorkerPool


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestCounterGauge:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help", ("tenant",))
        c.inc(tenant="a")
        c.inc(2.5, tenant="a")
        c.inc(tenant="b")
        assert c.value(tenant="a") == pytest.approx(3.5)
        assert c.value(tenant="b") == pytest.approx(1.0)
        assert c.sum() == pytest.approx(4.5)
        assert c.sum(tenant="a") == pytest.approx(3.5)

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "", ("tenant",))
        with pytest.raises(ValueError):
            c.inc()
        with pytest.raises(ValueError):
            c.inc(tenant="a", extra="x")
        with pytest.raises(ValueError):
            c.inc(wrong="a")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(TypeError):
            reg.gauge("x_total")
        with pytest.raises(TypeError):
            reg.histogram("x_total")

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(5.0)
        g.inc(-2.0)
        assert g.value() == pytest.approx(3.0)

    def test_disabled_registry_drops_everything(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c_total")
        h = reg.histogram("h_seconds")
        c.inc()
        h.observe(0.5)
        assert c.value() == 0.0
        assert h.count() == 0
        assert reg.drain() == {}


class TestHistogram:
    def test_default_buckets_are_increasing_log2(self):
        assert len(DEFAULT_BUCKETS) == 22
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-5)
        for lo, hi in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]):
            assert hi == pytest.approx(2.0 * lo)

    def test_bucket_boundaries_are_inclusive_upper(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)   # == bound -> its own bucket (le is inclusive)
        h.observe(1.5)   # between 1 and 2
        h.observe(4.0)   # last finite bound
        h.observe(99.0)  # beyond every bound -> overflow (+Inf)
        (series,) = h.series().values()
        assert series.counts == [1, 1, 1, 1]
        assert series.count == 4
        assert series.total == pytest.approx(105.5)

    def test_quantile_interpolates_within_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)
        # All mass in the (1, 2] bucket: any quantile lands inside it.
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)

    def test_quantile_spread_across_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 3.0, 6.0):
            for _ in range(25):
                h.observe(value)
        assert h.quantile(0.10) <= 1.0
        assert 1.0 <= h.quantile(0.40) <= 2.0
        assert 2.0 <= h.quantile(0.60) <= 4.0
        assert 4.0 <= h.quantile(0.90) <= 8.0

    def test_quantile_clamps_beyond_last_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_mean_and_validation(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0))
        assert h.mean() == 0.0
        h.observe(0.5)
        h.observe(1.5)
        assert h.mean() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("bad2", buckets=())


class TestMergeDrain:
    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 1), (b, 2)):
            reg.counter("c_total", "", ("k",)).inc(n, k="x")
            h = reg.histogram("h", buckets=(1.0, 2.0))
            for _ in range(n):
                h.observe(1.5)
            reg.gauge("g").set(float(n))
        a.merge(b.snapshot())
        assert a.counter("c_total").value(k="x") == pytest.approx(3.0)
        h = a.histogram("h")
        assert h.count() == 3
        assert h.total() == pytest.approx(4.5)
        assert a.gauge("g").value() == pytest.approx(2.0)  # last write wins

    def test_merge_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 4.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_drain_clears_series_but_keeps_instruments(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        delta = reg.drain()
        assert delta["c_total"]["series"] == [[[], 1.0]]
        assert reg.counter("c_total").value() == 0.0
        assert reg.drain() == {}  # nothing new recorded

    def test_merge_roundtrip_is_exact(self):
        src, dst = MetricsRegistry(), MetricsRegistry()
        h = src.histogram("h_seconds")
        for i in range(50):
            h.observe(1e-5 * 3 ** (i % 10))
        dst.merge(src.snapshot())
        assert (dst.histogram("h_seconds").series()[()].counts
                == h.series()[()].counts)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestExposition:
    def test_help_type_and_series_lines(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "counts things", ("k",)).inc(k="v")
        text = render(reg)
        assert "# HELP c_total counts things\n" in text
        assert "# TYPE c_total counter\n" in text
        assert 'c_total{k="v"} 1\n' in text

    def test_histogram_renders_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        text = render(reg)
        assert 'h_bucket{le="1"} 1\n' in text
        assert 'h_bucket{le="2"} 2\n' in text
        assert 'h_bucket{le="+Inf"} 3\n' in text
        assert "h_sum 11\n" in text
        assert "h_count 3\n" in text

    def test_label_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        reg = MetricsRegistry()
        reg.counter("c_total", "", ("k",)).inc(k='x"\\\n')
        assert 'c_total{k="x\\"\\\\\\n"} 1\n' in render(reg)

    def test_instrument_without_series_still_typed(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "present but unfired")
        text = render(reg)
        assert "# TYPE c_total counter\n" in text
        assert "\nc_total " not in text

    def test_every_line_is_valid_exposition(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "h", ("x",)).inc(x="1")
        reg.gauge("b").set(2.5)
        reg.histogram("c_seconds").observe(0.02)
        line_re = re.compile(
            r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
            r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+)$")
        for line in render(reg).strip().splitlines():
            assert line_re.match(line), f"invalid exposition line: {line!r}"


# ----------------------------------------------------------------------
# Cross-process merge through the worker pool
# ----------------------------------------------------------------------
def _obs_pool_init():
    return "ctx"


def _obs_pool_task(context, task):
    reg = get_registry()
    reg.counter("pool_tasks_total", "",
                ("parity",)).inc(parity=str(task % 2))
    reg.histogram("pool_task_seconds").observe(1e-4 * (task + 1))
    return task * 10


class TestWorkerPoolMerge:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_worker_metrics_ride_home(self, backend):
        host = MetricsRegistry()
        with scoped_registry(host):
            pool = WorkerPool(_obs_pool_init, num_workers=2,
                              backend=backend)
            try:
                out = pool.map(_obs_pool_task, list(range(8)))
            finally:
                pool.close()
        assert [result for result, _ in out] == [i * 10 for i in range(8)]
        counter = host.counter("pool_tasks_total")
        assert counter.value(parity="0") == pytest.approx(4.0)
        assert counter.value(parity="1") == pytest.approx(4.0)
        hist = host.histogram("pool_task_seconds")
        assert hist.count() == 8
        assert hist.total() == pytest.approx(1e-4 * sum(range(1, 9)))

    def test_process_drain_does_not_double_count(self):
        host = MetricsRegistry()
        with scoped_registry(host):
            pool = WorkerPool(_obs_pool_init, num_workers=2,
                              backend="process")
            try:
                pool.map(_obs_pool_task, list(range(4)))
                pool.map(_obs_pool_task, list(range(4)))
            finally:
                pool.close()
        assert host.counter("pool_tasks_total").sum() == pytest.approx(8.0)


# ----------------------------------------------------------------------
# Spans + tracing primitives
# ----------------------------------------------------------------------
class TestSpansAndTracer:
    def test_span_feeds_stage_histogram_and_traces(self):
        from repro.obs import TraceContext

        reg = MetricsRegistry()
        trace = TraceContext("t0")
        with scoped_registry(reg), batch_scope([trace, None]):
            with span("unit_test_stage"):
                pass
        hist = reg.histogram("repro_stage_seconds")
        assert hist.count(stage="unit_test_stage") == 1
        assert [s.name for s in trace.spans] == ["unit_test_stage"]

    def test_span_disabled_registry_no_traces_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        with scoped_registry(reg):
            with span("quiet"):
                pass
        assert reg.drain() == {}

    def test_tracer_samples_deterministically(self):
        tracer = Tracer(every=3)
        picks = [tracer.maybe_trace() is not None for _ in range(9)]
        assert picks == [True, False, False] * 3
        assert tracer.seen == 9
        assert tracer.sampled == 3

    def test_tracer_zero_disables(self):
        tracer = Tracer(every=0)
        assert all(tracer.maybe_trace() is None for _ in range(10))
        with pytest.raises(ValueError):
            Tracer(every=-1)
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_tracer_capacity_bounds_buffer(self):
        tracer = Tracer(every=1, capacity=4)
        for _ in range(10):
            tracer.record(tracer.maybe_trace())
        done = tracer.completed()
        assert len(done) == 4
        assert done[-1].trace_id == "req-00000009"


# ----------------------------------------------------------------------
# Gateway integration: scrape coverage, traces, bit-identity
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served():
    """A briefly pre-trained model + dataset shared by the obs tests."""
    graph = synthetic_knowledge_graph(300, 8, 2400, rng=0, name="kg-obs")
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    config = GraphPrompterConfig(hidden_dim=12, max_subgraph_nodes=10,
                                 num_gnn_layers=2)
    model = GraphPrompterModel(dataset.graph.feature_dim,
                               dataset.graph.num_relations, config)
    Pretrainer(model, dataset, PretrainConfig(steps=60, num_ways=4),
               rng=0).train()
    return dataset, config, model


def _run_burst(model, dataset, *, trace_every, registry, queries=6):
    """One mixed-priority burst; returns (gateway, predictions list)."""
    episodes = [sample_episode(dataset, num_ways=3, num_queries=queries,
                               rng=100 + i) for i in range(3)]
    classes = [Priority.INTERACTIVE, Priority.BATCH, Priority.BACKGROUND]

    async def run():
        server = PromptServer(model, dataset, max_batch_size=4, rng=0,
                              num_shards=2, num_workers=1,
                              worker_backend="serial", registry=registry)
        gateway = ServingGateway(server, auto_drain=False,
                                 trace_every=trace_every,
                                 registry=registry)
        for i, episode in enumerate(episodes):
            gateway.open_session(f"tenant-{i}", f"s{i}", episode,
                                 priority=classes[i])
        futures = []
        for q in range(queries):
            for i, episode in enumerate(episodes):
                out = gateway.submit_nowait(f"s{i}", episode.queries[q])
                assert not isinstance(out, Overloaded)
                futures.append(out)
            await gateway.flush()
        predictions = [f.result().prediction for f in futures]
        await gateway.close()
        return gateway, predictions

    return asyncio.run(run())


class TestGatewayObservability:
    def test_traced_run_is_bit_identical_to_untraced(self, served):
        dataset, _, model = served
        _, traced = _run_burst(model, dataset, trace_every=1,
                               registry=MetricsRegistry())
        _, untraced = _run_burst(model, dataset, trace_every=0,
                                 registry=MetricsRegistry())
        _, disabled = _run_burst(model, dataset, trace_every=1,
                                 registry=MetricsRegistry(enabled=False))
        assert traced == untraced == disabled

    def test_traces_cover_every_stage(self, served):
        dataset, _, model = served
        gateway, _ = _run_burst(model, dataset, trace_every=1,
                                registry=MetricsRegistry())
        done = gateway.tracer.completed()
        assert len(done) == 18  # 3 sessions x 6 queries, every=1
        for trace in done:
            stages = trace.stage_seconds()
            for stage in ("admission", "sample", "batch_assembly",
                          "forward", "shard_encode", "encode", "predict",
                          "queue_wait", "total"):
                assert stage in stages, (
                    f"{trace.trace_id} missing {stage}: {stages}")
            assert trace.meta["outcome"] == "ok"
            assert stages["total"] >= 0.0

    def test_one_in_n_sampling(self, served):
        dataset, _, model = served
        gateway, _ = _run_burst(model, dataset, trace_every=4,
                                registry=MetricsRegistry())
        assert gateway.tracer.seen == 18
        assert gateway.tracer.sampled == 5  # indices 0, 4, 8, 12, 16
        assert len(gateway.tracer.completed()) == 5

    def test_scrape_covers_every_layer(self, served):
        dataset, _, model = served
        registry = MetricsRegistry()
        gateway, _ = _run_burst(model, dataset, trace_every=2,
                                registry=registry)
        text = scrape(gateway, registry)
        for name in (
                # gateway live counters
                "repro_gateway_submitted_total",
                "repro_gateway_admitted_total",
                "repro_gateway_completed_total",
                "repro_gateway_queue_wait_seconds_bucket",
                # server + session ledger mirrors
                "repro_server_queries_total",
                "repro_server_batches_total",
                "repro_server_batch_size_bucket",
                "repro_sessions_live",
                "repro_session_cache_hits_total",
                # tenant ledger mirrors
                'repro_tenant_submitted_total{tenant="tenant-0"',
                # shard layer
                'repro_shard_requests_total{shard="0"}',
                # kernel stage histograms
                'repro_stage_seconds_bucket{stage="sample"',
                'repro_stage_seconds_bucket{stage="forward"',
                'repro_stage_seconds_bucket{stage="shard_encode"',
        ):
            assert name in text, f"scrape missing {name}"

    def test_registry_counts_match_ledgers(self, served):
        dataset, _, model = served
        registry = MetricsRegistry()
        gateway, predictions = _run_burst(model, dataset, trace_every=0,
                                          registry=registry)
        submitted = registry.counter("repro_gateway_submitted_total")
        completed = registry.counter("repro_gateway_completed_total")
        assert submitted.sum() == pytest.approx(len(predictions))
        assert completed.sum() == pytest.approx(len(predictions))
        stats = gateway.stats
        for tenant in stats.tenants:
            klass = tenant.priority.name.lower()
            assert submitted.value(
                tenant=tenant.tenant_id,
                priority=klass) == pytest.approx(tenant.submitted)

    def test_metrics_endpoint_serves_scrape(self, served):
        dataset, _, model = served
        registry = MetricsRegistry()

        async def run():
            server = PromptServer(model, dataset, max_batch_size=4, rng=0,
                                  registry=registry)
            gateway = ServingGateway(server, auto_drain=False,
                                     registry=registry)
            episode = sample_episode(dataset, num_ways=3, num_queries=2,
                                     rng=7)
            gateway.open_session("t", "s", episode)
            future = gateway.submit_nowait("s", episode.queries[0])
            await gateway.flush()
            await future
            endpoint = gateway.start_metrics_endpoint()
            assert gateway.start_metrics_endpoint() is endpoint
            with urllib.request.urlopen(endpoint.url) as response:
                body = response.read().decode("utf-8")
                content_type = response.headers["Content-Type"]
            await gateway.close()
            assert gateway._endpoint is None  # close() shut it down
            return body, content_type

        body, content_type = asyncio.run(run())
        assert "text/plain; version=0.0.4" in content_type
        assert "repro_gateway_submitted_total" in body
        assert "repro_server_queries_total" in body


class TestEndpointUnit:
    def test_serves_render_fn_and_404(self):
        endpoint = MetricsEndpoint(lambda: "metric_total 1\n")
        try:
            with urllib.request.urlopen(endpoint.url) as response:
                assert response.read() == b"metric_total 1\n"
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{endpoint.port}/other")
            assert caught.value.code == 404
        finally:
            endpoint.close()

    def test_render_failure_is_500(self):
        def boom():
            raise RuntimeError("no metrics today")

        endpoint = MetricsEndpoint(boom)
        try:
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(endpoint.url)
            assert caught.value.code == 500
        finally:
            endpoint.close()
