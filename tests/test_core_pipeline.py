"""Integration tests: model, pre-training (Alg. 1) and inference (Alg. 2)."""

import numpy as np
import pytest

from repro.core import (
    Episode,
    EpisodeResult,
    GraphPrompterConfig,
    GraphPrompterModel,
    GraphPrompterPipeline,
    PretrainConfig,
    Pretrainer,
    PromptGenerator,
    prodigy_config,
    sample_episode,
)
from repro.datasets import Dataset, EDGE_TASK, NODE_TASK
from repro.datasets.synthetic import (
    synthetic_citation_graph,
    synthetic_knowledge_graph,
)
from repro.nn import Tensor, no_grad


def small_kg_dataset(seed=0):
    graph = synthetic_knowledge_graph(300, 8, 2400, rng=seed, name="kg-test")
    return Dataset(graph, EDGE_TASK, rng=seed)


def small_citation_dataset(seed=0):
    # Lower feature noise than the benchmark datasets: these tests check
    # pipeline mechanics with a short pre-train, not method ordering.
    graph = synthetic_citation_graph(300, 6, feature_noise=0.45, rng=seed,
                                     name="cite-test")
    return Dataset(graph, NODE_TASK, rng=seed)


def tiny_config(**kwargs):
    defaults = dict(hidden_dim=12, max_subgraph_nodes=10, num_gnn_layers=2)
    defaults.update(kwargs)
    return GraphPrompterConfig(**defaults)


class TestModel:
    def test_state_dict_transfers_across_datasets(self):
        """Weight shapes are dataset-independent (cross-domain requirement)."""
        kg = small_kg_dataset()
        cite = small_citation_dataset()
        cfg = tiny_config()
        m_kg = GraphPrompterModel(kg.graph.feature_dim,
                                  kg.graph.num_relations, cfg)
        m_cite = GraphPrompterModel(cite.graph.feature_dim,
                                    cite.graph.num_relations, cfg)
        m_cite.load_state_dict(m_kg.state_dict())  # must not raise

    def test_reconstruction_weights_in_unit_interval(self):
        ds = small_kg_dataset()
        cfg = tiny_config()
        model = GraphPrompterModel(ds.graph.feature_dim,
                                   ds.graph.num_relations, cfg)
        gen = PromptGenerator(ds.graph, cfg, rng=0)
        ep = sample_episode(ds, num_ways=3, num_candidates_per_class=2,
                            num_queries=2, rng=0)
        from repro.gnn import SubgraphBatch
        batch = SubgraphBatch.from_subgraphs(
            gen.subgraphs_for(ep.candidates))
        w = model.reconstruction_weights(batch)
        assert w.shape == (batch.num_edges,)
        assert np.all(w.data > 0) and np.all(w.data < 1)

    def test_importance_in_unit_interval(self):
        ds = small_kg_dataset()
        model = GraphPrompterModel(ds.graph.feature_dim,
                                   ds.graph.num_relations, tiny_config())
        emb = Tensor(np.random.default_rng(0).normal(size=(5, 12)))
        imp = model.importance(emb)
        assert imp.shape == (5,)
        assert np.all(imp.data > 0) and np.all(imp.data < 1)

    def test_task_logits_shape(self):
        model = GraphPrompterModel(8, 1, tiny_config())
        prompts = Tensor(np.random.default_rng(0).normal(size=(6, 12)))
        queries = Tensor(np.random.default_rng(1).normal(size=(4, 12)))
        logits = model.task_logits(prompts, np.array([0, 0, 1, 1, 2, 2]),
                                   queries, num_ways=3)
        assert logits.shape == (4, 3)

    def test_task_logits_label_mismatch_raises(self):
        model = GraphPrompterModel(8, 1, tiny_config())
        with pytest.raises(ValueError):
            model.task_logits(Tensor(np.zeros((3, 12))), np.array([0, 1]),
                              Tensor(np.zeros((1, 12))), num_ways=2)

    def test_untrained_head_matches_nearest_centroid(self):
        """Zero-init task layers: logits argmax == centroid-cosine argmax."""
        rng = np.random.default_rng(2)
        model = GraphPrompterModel(8, 1, tiny_config(num_task_layers=2))
        prompt_emb = rng.normal(size=(9, 12))
        labels = np.repeat(np.arange(3), 3)
        query_emb = rng.normal(size=(5, 12))
        logits = model.task_logits(Tensor(prompt_emb), labels,
                                   Tensor(query_emb), 3)
        centroids = np.stack([prompt_emb[labels == c].mean(axis=0)
                              for c in range(3)])

        def normalize(x):
            return x / np.linalg.norm(x, axis=-1, keepdims=True)

        reference = normalize(query_emb) @ normalize(centroids).T
        np.testing.assert_array_equal(logits.data.argmax(axis=1),
                                      reference.argmax(axis=1))

    def test_predict_returns_confidence(self):
        model = GraphPrompterModel(8, 1, tiny_config())
        logits = Tensor(np.array([[5.0, 0.0], [0.0, 1.0]]))
        preds, confs = model.predict(logits)
        np.testing.assert_array_equal(preds, [0, 1])
        assert np.all(confs > 0.5) and np.all(confs <= 1.0)


def _held_out_loss(model, dataset, rng_seed=777):
    """Cross-entropy of the model on one fixed episode (no augmentation)."""
    from repro.nn import functional as F

    cfg = model.config
    ep = sample_episode(dataset, num_ways=4, num_candidates_per_class=3,
                        num_queries=8, rng=rng_seed,
                        candidate_split="train", query_split="val")
    gen = PromptGenerator(dataset.graph, cfg, rng=rng_seed)
    model.eval()
    with no_grad():
        emb = model.encode_subgraphs(
            gen.subgraphs_for(list(ep.candidates) + list(ep.queries)))
        num_prompts = len(ep.candidates)
        prompt_emb = emb[np.arange(num_prompts)]
        query_emb = emb[num_prompts + np.arange(len(ep.queries))]
        if cfg.use_selection_layers:
            prompt_emb = model.weight_by_importance(
                prompt_emb, model.importance(prompt_emb))
        logits = model.task_logits(prompt_emb, ep.candidate_labels,
                                   query_emb, ep.num_ways)
        return F.cross_entropy(logits, ep.query_labels).item()


class TestPretrainer:
    def test_held_out_loss_decreases_on_kg(self):
        ds = small_kg_dataset()
        model = GraphPrompterModel(ds.graph.feature_dim,
                                   ds.graph.num_relations, tiny_config())
        before = _held_out_loss(model, ds)
        trainer = Pretrainer(model, ds,
                             PretrainConfig(steps=60, num_ways=4,
                                            log_every=5), rng=0)
        history = trainer.train()
        after = _held_out_loss(model, ds)
        assert after < before
        assert len(history.steps) >= 3

    def test_held_out_loss_decreases_on_citation(self):
        ds = small_citation_dataset()
        model = GraphPrompterModel(ds.graph.feature_dim,
                                   ds.graph.num_relations, tiny_config())
        before = _held_out_loss(model, ds)
        Pretrainer(model, ds,
                   PretrainConfig(steps=60, num_ways=4, log_every=5),
                   rng=0).train()
        assert _held_out_loss(model, ds) < before

    def test_parameters_change(self):
        ds = small_kg_dataset()
        model = GraphPrompterModel(ds.graph.feature_dim,
                                   ds.graph.num_relations, tiny_config())
        before = {k: v.copy() for k, v in model.state_dict().items()}
        Pretrainer(model, ds, PretrainConfig(steps=5, num_ways=3),
                   rng=0).train()
        after = model.state_dict()
        changed = sum(not np.allclose(before[k], after[k]) for k in before)
        assert changed > len(before) // 2

    def test_single_task_configs(self):
        ds = small_kg_dataset()
        model = GraphPrompterModel(ds.graph.feature_dim,
                                   ds.graph.num_relations, tiny_config())
        hist_nm = Pretrainer(
            model, ds, PretrainConfig(steps=3, num_ways=3, multi_task=False),
            rng=0).train()
        assert len(hist_nm.losses) >= 1
        hist_mt = Pretrainer(
            model, ds,
            PretrainConfig(steps=3, num_ways=3, neighbor_matching=False),
            rng=0).train()
        assert len(hist_mt.losses) >= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PretrainConfig(steps=0).validate()
        with pytest.raises(ValueError):
            PretrainConfig(neighbor_matching=False,
                           multi_task=False).validate()
        with pytest.raises(ValueError):
            PretrainConfig(num_ways=1).validate()

    def test_model_left_in_eval_mode(self):
        ds = small_kg_dataset()
        model = GraphPrompterModel(ds.graph.feature_dim,
                                   ds.graph.num_relations, tiny_config())
        Pretrainer(model, ds, PretrainConfig(steps=2, num_ways=3),
                   rng=0).train()
        assert not model.training

    def test_progress_callback_invoked(self):
        ds = small_kg_dataset()
        model = GraphPrompterModel(ds.graph.feature_dim,
                                   ds.graph.num_relations, tiny_config())
        seen = []
        Pretrainer(model, ds,
                   PretrainConfig(steps=4, num_ways=3, log_every=2),
                   rng=0).train(lambda step, loss, acc: seen.append(step))
        assert seen  # at least one log point


class TestPipeline:
    @pytest.fixture(scope="class")
    def trained(self):
        ds = small_kg_dataset()
        cfg = tiny_config()
        model = GraphPrompterModel(ds.graph.feature_dim,
                                   ds.graph.num_relations, cfg)
        Pretrainer(model, ds, PretrainConfig(steps=90, num_ways=4),
                   rng=0).train()
        return ds, cfg, model

    def test_run_episode_accuracy_above_chance(self, trained):
        ds, cfg, model = trained
        accs = []
        for seed in (10, 11, 12):
            ep = sample_episode(ds, num_ways=4, num_queries=32, rng=seed)
            result = GraphPrompterPipeline(model, ds,
                                           rng=seed + 100).run_episode(ep)
            accs.append(result.accuracy)
        assert np.mean(accs) > 1.0 / 4  # above chance on average

    def test_result_fields_consistent(self, trained):
        ds, cfg, model = trained
        ep = sample_episode(ds, num_ways=3, num_queries=10, rng=12)
        result = GraphPrompterPipeline(model, ds, rng=13).run_episode(ep)
        assert result.predictions.shape == result.labels.shape
        assert result.confidences.shape == (10,)
        assert np.all(result.confidences > 0)
        assert np.all(result.predictions >= 0)
        assert np.all(result.predictions < 3)

    def test_augmenter_fills_cache(self, trained):
        ds, cfg, model = trained
        ep = sample_episode(ds, num_ways=3, num_queries=16, rng=14)
        pipe = GraphPrompterPipeline(model, ds, rng=15)
        result = pipe.run_episode(ep, query_batch_size=4)
        assert result.num_cache_insertions > 0
        assert len(pipe.augmenter) <= cfg.cache_size

    def test_prodigy_mode_inserts_nothing(self, trained):
        ds, _, model = trained
        cfg = prodigy_config(tiny_config())
        m2 = GraphPrompterModel(ds.graph.feature_dim,
                                ds.graph.num_relations, cfg)
        m2.load_state_dict(model.state_dict())
        ep = sample_episode(ds, num_ways=3, num_queries=8, rng=16)
        result = GraphPrompterPipeline(m2, ds, rng=17).run_episode(ep)
        assert result.num_cache_insertions == 0

    def test_deterministic_given_rngs_without_augmenter(self, trained):
        ds, cfg, model = trained
        cfg2 = cfg.ablate(use_augmenter=False)
        m2 = GraphPrompterModel(ds.graph.feature_dim,
                                ds.graph.num_relations, cfg2)
        m2.load_state_dict(model.state_dict())
        ep = sample_episode(ds, num_ways=3, num_queries=8, rng=18)
        r1 = GraphPrompterPipeline(m2, ds, rng=19).run_episode(ep)
        r2 = GraphPrompterPipeline(m2, ds, rng=19).run_episode(ep)
        np.testing.assert_array_equal(r1.predictions, r2.predictions)

    def test_streaming_split_matches_merged_episode(self, trained):
        """reset_cache=False streaming replays a merged run exactly.

        With deterministic per-datapoint sampling, running one 24-query
        episode in two 12-query halves (keeping the cache across the calls)
        must produce the same predictions and the same number of cache
        insertions as the single merged run.
        """
        ds, cfg, model = trained
        det_cfg = cfg.ablate(deterministic_sampling=True)
        det_model = GraphPrompterModel(ds.graph.feature_dim,
                                       ds.graph.num_relations, det_cfg)
        det_model.load_state_dict(model.state_dict())
        ep = sample_episode(ds, num_ways=3, num_queries=24, rng=40)

        merged = GraphPrompterPipeline(det_model, ds, rng=41).run_episode(
            ep, query_batch_size=6)

        streaming = GraphPrompterPipeline(det_model, ds, rng=41)
        halves = []
        for start in (0, 12):
            sub = Episode(
                way_classes=ep.way_classes,
                candidates=ep.candidates,
                candidate_labels=ep.candidate_labels,
                queries=ep.queries[start:start + 12],
                query_labels=ep.query_labels[start:start + 12],
            )
            halves.append(streaming.run_episode(
                sub, query_batch_size=6, reset_cache=(start == 0)))

        assert (halves[0].num_cache_insertions
                + halves[1].num_cache_insertions
                == merged.num_cache_insertions)
        np.testing.assert_array_equal(
            np.concatenate([h.predictions for h in halves]),
            merged.predictions)

    def test_empty_labels_accuracy_is_nan(self):
        """EpisodeResult delegates to the shared safe_accuracy helper."""
        result = EpisodeResult(
            predictions=np.zeros(0, dtype=np.int64),
            labels=np.zeros(0, dtype=np.int64),
            confidences=np.zeros(0), num_cache_insertions=0)
        assert np.isnan(result.accuracy)
        assert result.num_queries == 0

    def test_cache_persists_across_batches(self, trained):
        ds, cfg, model = trained
        ep = sample_episode(ds, num_ways=3, num_queries=24, rng=20)
        pipe = GraphPrompterPipeline(model, ds, rng=21)
        pipe.run_episode(ep, query_batch_size=6)
        # After the run the cache holds at most cache_size entries but some
        # survived from earlier batches (frequency > 1 possible via hits).
        assert 1 <= len(pipe.augmenter) <= cfg.cache_size

    def test_node_task_pipeline(self):
        ds = small_citation_dataset()
        cfg = tiny_config()
        model = GraphPrompterModel(ds.graph.feature_dim,
                                   ds.graph.num_relations, cfg)
        Pretrainer(model, ds, PretrainConfig(steps=90, num_ways=4),
                   rng=0).train()
        accs = []
        for seed in (22, 23, 24):
            ep = sample_episode(ds, num_ways=4, num_queries=20, rng=seed)
            result = GraphPrompterPipeline(model, ds,
                                           rng=seed + 100).run_episode(ep)
            accs.append(result.accuracy)
        assert np.mean(accs) > 1.0 / 4


class TestDeterministicSampling:
    def test_subgraph_independent_of_call_order(self):
        """Per-datapoint seeding: same datapoint, same subgraph, any order."""
        ds = small_kg_dataset()
        gen = PromptGenerator(ds.graph, tiny_config(), rng=0,
                              deterministic=True)
        datapoints = [ds.datapoint(i) for i in range(6)]
        forward = [gen.subgraph_for(dp) for dp in datapoints]
        backward = [gen.subgraph_for(dp)
                    for dp in reversed(datapoints)][::-1]
        for a, b in zip(forward, backward):
            np.testing.assert_array_equal(a.nodes, b.nodes)
            np.testing.assert_array_equal(a.src, b.src)
            np.testing.assert_array_equal(a.dst, b.dst)

    def test_salt_changes_subgraphs(self):
        """Different salts draw different random walks (not a constant map).

        Needs ≥2 hops: a 1-hop walk absorbs the seed neighbourhood without
        ever acting on a random choice.
        """
        ds = small_kg_dataset()
        cfg = tiny_config(max_subgraph_nodes=30, num_hops=2)
        datapoints = [ds.datapoint(i) for i in range(20)]
        variants = []
        for salt in (0, 1):
            gen = PromptGenerator(ds.graph, cfg, rng=0, deterministic=True,
                                  salt=salt)
            variants.append([tuple(s.nodes) for s in
                             gen.subgraphs_for(datapoints)])
        assert variants[0] != variants[1]


class TestCrossDomainTransfer:
    def test_pretrain_kg_eval_other_kg(self):
        """The headline setting: pre-train on one KG, apply to another."""
        source = small_kg_dataset(seed=1)
        target_graph = synthetic_knowledge_graph(250, 10, 2200, rng=99,
                                                 name="target-kg")
        target = Dataset(target_graph, EDGE_TASK, rng=3)
        cfg = tiny_config()
        model = GraphPrompterModel(source.graph.feature_dim,
                                   source.graph.num_relations, cfg)
        Pretrainer(model, source, PretrainConfig(steps=60, num_ways=4),
                   rng=0).train()

        target_model = GraphPrompterModel(target.graph.feature_dim,
                                          target.graph.num_relations, cfg)
        target_model.load_state_dict(model.state_dict())
        ep = sample_episode(target, num_ways=5, num_queries=30, rng=30)
        result = GraphPrompterPipeline(target_model, target,
                                       rng=31).run_episode(ep)
        assert result.accuracy > 1.0 / 5  # transfers above chance
