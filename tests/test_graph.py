"""Tests for the graph substrate: Graph, CSR, subgraphs and samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    CSRAdjacency,
    EdgeInput,
    Graph,
    NodeInput,
    Subgraph,
    bfs_neighborhood,
    induced_subgraph,
    random_walk_neighborhood,
    sample_data_graph,
)


def path_graph(n=5, feature_dim=3):
    """0-1-2-...-(n-1) path with simple features."""
    src = np.arange(n - 1)
    dst = np.arange(1, n)
    feats = np.arange(n * feature_dim, dtype=float).reshape(n, feature_dim)
    return Graph(n, src, dst, node_features=feats, name="path")


def star_graph(leaves=6):
    """Node 0 connected to 1..leaves."""
    src = np.zeros(leaves, dtype=int)
    dst = np.arange(1, leaves + 1)
    return Graph(leaves + 1, src, dst,
                 node_features=np.eye(leaves + 1), name="star")


class TestCSR:
    def test_neighbors(self):
        adj = CSRAdjacency(4, np.array([0, 0, 1, 2]), np.array([1, 2, 3, 3]))
        np.testing.assert_array_equal(np.sort(adj.neighbors(0)), [1, 2])
        np.testing.assert_array_equal(adj.neighbors(3), [])

    def test_edge_ids_recoverable(self):
        src = np.array([2, 0, 1])
        dst = np.array([0, 1, 2])
        adj = CSRAdjacency(3, src, dst)
        dsts, eids = adj.neighbor_edges(2)
        np.testing.assert_array_equal(dsts, [0])
        np.testing.assert_array_equal(eids, [0])

    def test_degree_vector(self):
        adj = CSRAdjacency(3, np.array([0, 0, 1]), np.array([1, 2, 0]))
        np.testing.assert_array_equal(adj.degree(), [2, 1, 0])
        assert adj.degree(0) == 2

    def test_validates_range(self):
        with pytest.raises(ValueError):
            CSRAdjacency(2, np.array([0]), np.array([5]))
        with pytest.raises(ValueError):
            CSRAdjacency(2, np.array([0, 1]), np.array([1]))

    def test_empty_graph(self):
        adj = CSRAdjacency(3, np.array([], dtype=int), np.array([], dtype=int))
        assert adj.num_edges == 0
        np.testing.assert_array_equal(adj.neighbors(1), [])


class TestGraph:
    def test_basic_properties(self):
        g = path_graph(5)
        assert g.num_nodes == 5
        assert g.num_edges == 4
        assert g.feature_dim == 3
        assert "path" in repr(g)

    def test_undirected_neighbors(self):
        g = path_graph(4)
        np.testing.assert_array_equal(np.sort(g.neighbors(1)), [0, 2])
        np.testing.assert_array_equal(np.sort(g.neighbors(0)), [1])

    def test_degree(self):
        g = star_graph(5)
        assert g.degree(0) == 5
        assert g.degree(3) == 1

    def test_edge_endpoints(self):
        g = Graph(3, np.array([0]), np.array([2]), rel=np.array([1]),
                  num_relations=2)
        assert g.edge_endpoints(0) == (0, 1, 2)

    def test_edges_between(self):
        g = Graph(3, np.array([0, 0, 1]), np.array([1, 1, 2]))
        assert len(g.edges_between(0, 1)) == 2
        assert len(g.edges_between(1, 0)) == 0

    def test_edge_id_to_original_wraps(self):
        g = path_graph(3)
        assert g.edge_id_to_original(g.num_edges) == 0

    def test_num_node_classes(self):
        g = Graph(3, np.array([0]), np.array([1]),
                  node_labels=np.array([0, 2, 1]))
        assert g.num_node_classes == 3
        assert path_graph().num_node_classes == 0

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            Graph(0, np.array([]), np.array([]))
        with pytest.raises(ValueError):
            Graph(2, np.array([0]), np.array([3]))
        with pytest.raises(ValueError):
            Graph(2, np.array([0]), np.array([1]), rel=np.array([5]),
                  num_relations=2)
        with pytest.raises(ValueError):
            Graph(2, np.array([0]), np.array([1]),
                  node_features=np.zeros((3, 2)))
        with pytest.raises(ValueError):
            Graph(2, np.array([0]), np.array([1]),
                  node_labels=np.array([0]))


class TestSubgraph:
    def test_induced_keeps_internal_edges(self):
        g = path_graph(5)
        sub = induced_subgraph(g, np.array([1, 2, 3]), centers=np.array([2]))
        assert sub.num_nodes == 3
        # Edges 1-2 and 2-3 survive, symmetrised to 4 directed edges.
        assert sub.num_edges == 4

    def test_centers_map_to_local(self):
        g = path_graph(5)
        sub = induced_subgraph(g, np.array([2, 3, 4]), centers=np.array([3]))
        local_center = sub.centers[0]
        assert sub.nodes[local_center] == 3

    def test_center_outside_raises(self):
        g = path_graph(5)
        with pytest.raises(ValueError):
            induced_subgraph(g, np.array([0, 1]), centers=np.array([4]))

    def test_features_subset(self):
        g = path_graph(5)
        sub = induced_subgraph(g, np.array([0, 4]), centers=np.array([0]))
        np.testing.assert_allclose(sub.node_features,
                                   g.node_features[[0, 4]])

    def test_with_edge_weights(self):
        g = path_graph(4)
        sub = induced_subgraph(g, np.array([0, 1, 2]), centers=np.array([1]))
        weighted = sub.with_edge_weights(np.full(sub.num_edges, 0.5))
        assert weighted.edge_weights is not None
        assert sub.edge_weights is None  # original untouched

    def test_with_edge_weights_validates_shape(self):
        g = path_graph(4)
        sub = induced_subgraph(g, np.array([0, 1]), centers=np.array([0]))
        with pytest.raises(ValueError):
            sub.with_edge_weights(np.ones(99))

    def test_subgraph_validates_local_ids(self):
        with pytest.raises(ValueError):
            Subgraph(
                nodes=np.array([0, 1]),
                src=np.array([0]),
                dst=np.array([5]),
                rel=np.array([0]),
                node_features=np.zeros((2, 2)),
                centers=np.array([0]),
            )


class TestBFSSampler:
    def test_zero_hops_returns_seeds(self):
        g = path_graph(5)
        out = bfs_neighborhood(g, np.array([2]), num_hops=0)
        np.testing.assert_array_equal(out, [2])

    def test_one_hop_path(self):
        g = path_graph(5)
        out = bfs_neighborhood(g, np.array([2]), num_hops=1)
        np.testing.assert_array_equal(out, [1, 2, 3])

    def test_two_hops_path(self):
        g = path_graph(7)
        out = bfs_neighborhood(g, np.array([3]), num_hops=2)
        np.testing.assert_array_equal(out, [1, 2, 3, 4, 5])

    def test_max_nodes_cap(self):
        g = star_graph(20)
        out = bfs_neighborhood(g, np.array([0]), num_hops=1, max_nodes=5,
                               rng=np.random.default_rng(0))
        assert len(out) == 5
        assert 0 in out

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            bfs_neighborhood(path_graph(3), np.array([0]), num_hops=-1)


class TestRandomWalkSampler:
    def test_contains_seed_and_neighbors(self):
        g = path_graph(5)
        out = random_walk_neighborhood(g, np.array([2]), num_hops=1,
                                       rng=np.random.default_rng(0))
        assert 2 in out
        assert 1 in out and 3 in out

    def test_respects_max_nodes(self):
        g = star_graph(50)
        out = random_walk_neighborhood(g, np.array([0]), num_hops=3,
                                       max_nodes=10,
                                       rng=np.random.default_rng(1))
        assert len(out) <= 10

    def test_subset_of_l_hop_ball(self):
        g = path_graph(9)
        ball = set(bfs_neighborhood(g, np.array([4]), num_hops=3,
                                    max_nodes=10_000))
        walk = random_walk_neighborhood(g, np.array([4]), num_hops=3,
                                        max_nodes=10_000,
                                        rng=np.random.default_rng(2))
        assert set(walk) <= ball

    def test_deterministic_given_rng(self):
        g = star_graph(10)
        a = random_walk_neighborhood(g, np.array([3]), 2,
                                     rng=np.random.default_rng(7))
        b = random_walk_neighborhood(g, np.array([3]), 2,
                                     rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestSampleDataGraph:
    def test_node_input(self):
        g = path_graph(5)
        sub = sample_data_graph(g, NodeInput(2), num_hops=1, method="bfs")
        assert sub.num_nodes == 3
        assert sub.nodes[sub.centers[0]] == 2
        assert sub.center_relation is None

    def test_edge_input_carries_relation(self):
        g = Graph(4, np.array([0, 1, 2]), np.array([1, 2, 3]),
                  rel=np.array([0, 1, 0]), num_relations=2,
                  node_features=np.eye(4))
        sub = sample_data_graph(g, EdgeInput(1, 2, relation=1), num_hops=1,
                                method="bfs")
        assert sub.center_relation == 1
        assert set(sub.nodes[sub.centers]) == {1, 2}

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            sample_data_graph(path_graph(3), NodeInput(0), method="dfs")

    def test_unknown_datapoint_rejected(self):
        with pytest.raises(TypeError):
            sample_data_graph(path_graph(3), "node-0", method="bfs")


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    hops=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=999),
)
def test_property_bfs_monotone_in_hops(n, hops, seed):
    """The l-hop ball grows (weakly) with l and always contains the seed."""
    rng = np.random.default_rng(seed)
    num_edges = max(1, n)
    src = rng.integers(0, n, size=num_edges)
    dst = rng.integers(0, n, size=num_edges)
    g = Graph(n, src, dst, node_features=np.zeros((n, 2)))
    start = int(rng.integers(n))
    smaller = set(bfs_neighborhood(g, np.array([start]), hops,
                                   max_nodes=10_000))
    larger = set(bfs_neighborhood(g, np.array([start]), hops + 1,
                                  max_nodes=10_000))
    assert start in smaller
    assert smaller <= larger


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=25),
    seed=st.integers(min_value=0, max_value=999),
)
def test_property_induced_subgraph_edges_closed(n, seed):
    """Every edge of an induced subgraph has both endpoints in the node set."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=2 * n)
    dst = rng.integers(0, n, size=2 * n)
    g = Graph(n, src, dst, node_features=np.zeros((n, 2)))
    chosen = np.unique(rng.integers(0, n, size=n // 2 + 1))
    sub = induced_subgraph(g, chosen, centers=chosen[:1])
    assert np.all(sub.src < sub.num_nodes)
    assert np.all(sub.dst < sub.num_nodes)
    # Round-trip: local edges map back to original node pairs in the set.
    original = set(chosen.tolist())
    assert set(sub.nodes[sub.src]) <= original
    assert set(sub.nodes[sub.dst]) <= original
