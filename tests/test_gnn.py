"""Tests for GNN layers, batching, pooling and the task-graph GNN."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn import (
    DataGraphEncoder,
    GATConv,
    SAGEConv,
    SubgraphBatch,
    TaskGraphGNN,
    center_pool,
    mean_pool,
    scatter_mean,
    scatter_sum,
    segment_softmax,
)
from repro.graph import Graph, NodeInput, EdgeInput, sample_data_graph
from repro.nn import Tensor


def tiny_subgraph(num_nodes=4, num_centers=1, dim=3, seed=0):
    """Hand-built subgraph: ring of num_nodes with unit features."""
    rng = np.random.default_rng(seed)
    from repro.graph import Subgraph

    src = np.arange(num_nodes)
    dst = (np.arange(num_nodes) + 1) % num_nodes
    return Subgraph(
        nodes=np.arange(num_nodes),
        src=np.concatenate([src, dst]),
        dst=np.concatenate([dst, src]),
        rel=np.zeros(2 * num_nodes, dtype=int),
        node_features=rng.normal(size=(num_nodes, dim)),
        centers=np.arange(num_centers),
    )


class TestScatterOps:
    def test_scatter_sum(self):
        vals = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = scatter_sum(vals, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [3.0]])

    def test_scatter_mean(self):
        vals = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = scatter_mean(vals, np.array([0, 0, 1]), 3)
        np.testing.assert_allclose(out.data, [[3.0], [6.0], [0.0]])

    def test_segment_softmax_sums_to_one(self):
        scores = Tensor(np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        index = np.array([0, 0, 1, 1, 1])
        out = segment_softmax(scores, index, 2)
        np.testing.assert_allclose(out.data[:2].sum(), 1.0, rtol=1e-9)
        np.testing.assert_allclose(out.data[2:].sum(), 1.0, rtol=1e-9)

    def test_segment_softmax_handles_extreme_values(self):
        scores = Tensor(np.array([1000.0, 999.0]))
        out = segment_softmax(scores, np.array([0, 0]), 1)
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data.sum(), 1.0, rtol=1e-9)

    def test_segment_softmax_rejects_2d(self):
        with pytest.raises(ValueError):
            segment_softmax(Tensor(np.zeros((2, 2))), np.array([0, 1]), 2)

    def test_segment_softmax_gradient(self):
        scores = Tensor(np.array([0.5, -0.5, 1.0]), requires_grad=True)
        out = segment_softmax(scores, np.array([0, 0, 1]), 2)
        (out * Tensor(np.array([1.0, 0.0, 1.0]))).sum().backward()
        assert scores.grad is not None
        # Segment {0,1}: gradient is non-trivial; segment {2}: prob is
        # constant 1 so gradient is ~0.
        np.testing.assert_allclose(scores.grad[2], 0.0, atol=1e-9)


class TestBatching:
    def test_offsets(self):
        a = tiny_subgraph(3)
        b = tiny_subgraph(4)
        batch = SubgraphBatch.from_subgraphs([a, b])
        assert batch.num_nodes == 7
        assert batch.num_edges == a.num_edges + b.num_edges
        # Second subgraph's edges are offset by 3.
        assert batch.src[a.num_edges:].min() >= 3

    def test_graph_index(self):
        batch = SubgraphBatch.from_subgraphs([tiny_subgraph(2), tiny_subgraph(5)])
        np.testing.assert_array_equal(batch.graph_index,
                                      [0, 0, 1, 1, 1, 1, 1])

    def test_centers_offset(self):
        batch = SubgraphBatch.from_subgraphs([tiny_subgraph(3), tiny_subgraph(3)])
        np.testing.assert_array_equal(batch.centers[1], [3])

    def test_mixed_edge_weights_fill_ones(self):
        a = tiny_subgraph(3)
        b = tiny_subgraph(3).with_edge_weights(np.full(6, 0.5))
        batch = SubgraphBatch.from_subgraphs([a, b])
        np.testing.assert_allclose(batch.edge_weights[:6], np.ones(6))
        np.testing.assert_allclose(batch.edge_weights[6:], np.full(6, 0.5))

    def test_no_weights_is_none(self):
        batch = SubgraphBatch.from_subgraphs([tiny_subgraph(3)])
        assert batch.edge_weights is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SubgraphBatch.from_subgraphs([])


class TestPooling:
    def test_mean_pool(self):
        h = Tensor(np.array([[1.0], [3.0], [5.0]]))
        out = mean_pool(h, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[2.0], [5.0]])

    def test_center_pool_single(self):
        h = Tensor(np.arange(8, dtype=float).reshape(4, 2))
        out = center_pool(h, [np.array([1]), np.array([3])])
        np.testing.assert_allclose(out.data, [[2.0, 3.0], [6.0, 7.0]])

    def test_center_pool_pairs(self):
        h = Tensor(np.arange(8, dtype=float).reshape(4, 2))
        out = center_pool(h, [np.array([0, 1]), np.array([2, 3])])
        assert out.shape == (2, 4)

    def test_center_pool_inconsistent_raises(self):
        h = Tensor(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            center_pool(h, [np.array([0]), np.array([1, 2])])


class TestSAGEConv:
    def test_shapes(self):
        conv = SAGEConv(3, 5)
        h = Tensor(np.random.default_rng(0).normal(size=(4, 3)))
        out = conv(h, np.array([0, 1]), np.array([1, 0]), 4)
        assert out.shape == (4, 5)

    def test_isolated_node_keeps_self_term(self):
        conv = SAGEConv(2, 2, activation="identity")
        h = Tensor(np.ones((3, 2)))
        out = conv(h, np.array([0]), np.array([1]), 3)
        # Node 2 has no incoming edges: output = W_self h + b only.
        expected = (h.data[2] @ conv.linear_self.weight.data
                    + conv.linear_self.bias.data)
        np.testing.assert_allclose(out.data[2], expected)

    def test_edge_weight_zero_blocks_message(self):
        conv = SAGEConv(2, 2, activation="identity")
        h = Tensor(np.random.default_rng(1).normal(size=(2, 2)))
        src, dst = np.array([0]), np.array([1])
        blocked = conv(h, src, dst, 2, edge_weights=np.array([0.0]))
        no_edges = conv(h, np.array([], dtype=int), np.array([], dtype=int), 2)
        np.testing.assert_allclose(blocked.data[1], no_edges.data[1])

    def test_edge_weights_gradient_flows(self):
        conv = SAGEConv(2, 2, activation="identity")
        h = Tensor(np.ones((2, 2)))
        w = Tensor(np.array([0.7]), requires_grad=True)
        out = conv(h, np.array([0]), np.array([1]), 2, edge_weights=w)
        out.sum().backward()
        assert w.grad is not None and abs(w.grad[0]) > 0

    def test_rel_emb_added(self):
        conv = SAGEConv(2, 2, activation="identity")
        h = Tensor(np.zeros((2, 2)))
        rel = Tensor(np.array([[1.0, 1.0]]))
        out = conv(h, np.array([0]), np.array([1]), 2, rel_emb=rel)
        base = conv(h, np.array([0]), np.array([1]), 2)
        assert not np.allclose(out.data[1], base.data[1])

    def test_unknown_activation(self):
        conv = SAGEConv(2, 2, activation="swish")
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 2))), np.array([], dtype=int),
                 np.array([], dtype=int), 1)


class TestGATConv:
    def test_shapes(self):
        conv = GATConv(3, 4)
        h = Tensor(np.random.default_rng(0).normal(size=(5, 3)))
        out = conv(h, np.array([0, 1, 2]), np.array([1, 2, 0]), 5)
        assert out.shape == (5, 4)

    def test_attention_normalised(self):
        # With identical keys, attention over two incoming edges is 0.5 each;
        # message to node 2 equals the average of transformed sources.
        conv = GATConv(2, 2, activation="identity")
        h = Tensor(np.ones((3, 2)))
        out = conv(h, np.array([0, 1]), np.array([2, 2]), 3)
        transformed = h.data @ conv.linear.weight.data
        expected = (h.data[2] @ conv.linear_self.weight.data
                    + conv.linear_self.bias.data + transformed[0])
        np.testing.assert_allclose(out.data[2], expected, rtol=1e-9)

    def test_gradient_reaches_attention_params(self):
        conv = GATConv(2, 2)
        h = Tensor(np.random.default_rng(3).normal(size=(3, 2)),
                   requires_grad=True)
        out = conv(h, np.array([0, 1]), np.array([2, 2]), 3)
        out.sum().backward()
        assert conv.attn_src.grad is not None
        assert conv.attn_dst.grad is not None


class TestDataGraphEncoder:
    def test_node_task_embedding_shape(self):
        enc = DataGraphEncoder(feature_dim=3, hidden_dim=8, num_layers=2)
        subs = [tiny_subgraph(4, 1, 3, seed=s) for s in range(3)]
        out = enc.encode_subgraphs(subs)
        assert out.shape == (3, 8)

    def test_edge_task_embedding_shape(self):
        enc = DataGraphEncoder(feature_dim=3, hidden_dim=8, num_layers=2)
        subs = [tiny_subgraph(4, 2, 3, seed=s) for s in range(2)]
        out = enc.encode_subgraphs(subs)
        assert out.shape == (2, 8)

    def test_uses_batch_weights_when_not_overridden(self):
        enc = DataGraphEncoder(feature_dim=3, hidden_dim=4, num_layers=1)
        sub = tiny_subgraph(4, 1, 3)
        plain = enc.encode_subgraphs([sub])
        damped = enc.encode_subgraphs(
            [sub.with_edge_weights(np.zeros(sub.num_edges))]
        )
        assert not np.allclose(plain.data, damped.data)

    def test_encoder_on_sampled_subgraphs(self):
        rng = np.random.default_rng(0)
        g = Graph(
            20,
            rng.integers(0, 20, 40),
            rng.integers(0, 20, 40),
            rel=rng.integers(0, 3, 40),
            num_relations=3,
            node_features=rng.normal(size=(20, 6)),
        )
        subs = [sample_data_graph(g, NodeInput(i), num_hops=1, rng=rng)
                for i in range(4)]
        enc = DataGraphEncoder(feature_dim=6, hidden_dim=8)
        assert enc.encode_subgraphs(subs).shape == (4, 8)

    def test_edge_input_subgraphs(self):
        rng = np.random.default_rng(1)
        g = Graph(
            15,
            rng.integers(0, 15, 30),
            rng.integers(0, 15, 30),
            rel=rng.integers(0, 4, 30),
            num_relations=4,
            node_features=rng.normal(size=(15, 5)),
        )
        u, v = int(g.src[0]), int(g.dst[0])
        subs = [sample_data_graph(g, EdgeInput(u, v), num_hops=1, rng=rng)]
        enc = DataGraphEncoder(feature_dim=5, hidden_dim=6)
        assert enc.encode_subgraphs(subs).shape == (1, 6)

    def test_invalid_conv_rejected(self):
        with pytest.raises(ValueError):
            DataGraphEncoder(3, conv="gcn")

    def test_invalid_layers_rejected(self):
        with pytest.raises(ValueError):
            DataGraphEncoder(3, num_layers=0)

    def test_gat_variant(self):
        enc = DataGraphEncoder(feature_dim=3, hidden_dim=4, conv="gat")
        out = enc.encode_subgraphs([tiny_subgraph(3, 1, 3)])
        assert out.shape == (1, 4)


class TestTaskGraphGNN:
    def test_output_shape_and_residual(self):
        gnn = TaskGraphGNN(dim=6, num_layers=2)
        h = Tensor(np.random.default_rng(0).normal(size=(5, 6)))
        out = gnn(h, np.array([0, 1, 2]), np.array([3, 3, 4]),
                  np.array([0, 1, 2]), 5)
        assert out.shape == (5, 6)

    def test_gradients_flow_to_all_layers(self):
        gnn = TaskGraphGNN(dim=4, num_layers=2)
        h = Tensor(np.random.default_rng(1).normal(size=(4, 4)),
                   requires_grad=True)
        out = gnn(h, np.array([0, 1]), np.array([2, 3]), np.array([0, 1]), 4)
        out.sum().backward()
        for p in gnn.parameters():
            # LayerNorm beta of the last layer always gets gradient; spot
            # check that *most* parameters received one.
            pass
        grads = [p.grad is not None for p in gnn.parameters()]
        assert sum(grads) >= len(grads) - 2

    def test_attr_changes_output(self):
        gnn = TaskGraphGNN(dim=4, num_layers=1)
        # out_proj is zero-initialised (identity start); give it weight so
        # the attribute pathway is active.
        layer = gnn._modules_list[0]
        layer.out_proj.weight.data[:] = np.eye(4)
        h = Tensor(np.random.default_rng(2).normal(size=(3, 4)))
        out_t = gnn(h, np.array([0]), np.array([2]), np.array([0]), 3)
        out_f = gnn(h, np.array([0]), np.array([2]), np.array([1]), 3)
        assert not np.allclose(out_t.data, out_f.data)

    def test_zero_init_layer_is_normalised_identity(self):
        gnn = TaskGraphGNN(dim=4, num_layers=1)
        h = Tensor(np.random.default_rng(3).normal(size=(3, 4)))
        out = gnn(h, np.array([0]), np.array([2]), np.array([0]), 3)
        # With out_proj = 0, output is LayerNorm(h): same argsort per row.
        for i in range(3):
            np.testing.assert_array_equal(np.argsort(out.data[i]),
                                          np.argsort(h.data[i]))

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            TaskGraphGNN(dim=4, num_layers=0)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    e=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=999),
)
def test_property_segment_softmax_partition_of_unity(n, e, seed):
    rng = np.random.default_rng(seed)
    scores = Tensor(rng.normal(size=e) * 3)
    index = rng.integers(0, n, size=e)
    out = segment_softmax(scores, index, n)
    sums = np.zeros(n)
    np.add.at(sums, index, out.data)
    occupied = np.bincount(index, minlength=n) > 0
    np.testing.assert_allclose(sums[occupied], 1.0, rtol=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    graphs=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=999),
)
def test_property_batched_encoding_matches_individual(graphs, seed):
    """Encoding a batch must equal encoding each subgraph alone."""
    rng = np.random.default_rng(seed)
    subs = [tiny_subgraph(int(rng.integers(3, 6)), 1, 3, seed=seed + i)
            for i in range(graphs)]
    enc = DataGraphEncoder(feature_dim=3, hidden_dim=5, num_layers=2)
    enc.eval()
    together = enc.encode_subgraphs(subs).data
    separate = np.concatenate(
        [enc.encode_subgraphs([s]).data for s in subs], axis=0
    )
    np.testing.assert_allclose(together, separate, rtol=1e-8, atol=1e-10)
