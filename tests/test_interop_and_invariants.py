"""networkx interop tests and model-level invariance property tests."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GraphPrompterConfig, GraphPrompterModel
from repro.gnn import GATConv
from repro.graph import Graph, from_networkx, to_networkx
from repro.nn import Tensor


class TestFromNetworkx:
    def test_basic_conversion(self):
        g = nx.DiGraph()
        g.add_node("a", features=[1.0, 0.0], label=0)
        g.add_node("b", features=[0.0, 1.0], label=1)
        g.add_edge("a", "b", relation=2)
        graph = from_networkx(g)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1
        assert graph.num_relations == 3
        np.testing.assert_array_equal(graph.node_labels, [0, 1])
        assert graph.nx_node_order == ["a", "b"]

    def test_missing_features_default_zero(self):
        g = nx.Graph()
        g.add_node(0, features=[1.0, 2.0, 3.0])
        g.add_node(1)  # no features
        g.add_edge(0, 1)
        graph = from_networkx(g)
        np.testing.assert_array_equal(graph.node_features[1], [0, 0, 0])

    def test_no_labels_anywhere(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        graph = from_networkx(g)
        assert graph.node_labels is None

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            from_networkx(nx.Graph())

    def test_arbitrary_node_ids(self):
        g = nx.Graph()
        g.add_edge(("tuple", 1), "string-node")
        graph = from_networkx(g)
        assert graph.num_nodes == 2

    def test_feature_dim_override(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        graph = from_networkx(g, feature_dim=7)
        assert graph.feature_dim == 7


class TestToNetworkx:
    def test_roundtrip_structure(self):
        graph = Graph(3, np.array([0, 1]), np.array([1, 2]),
                      rel=np.array([0, 1]), num_relations=2,
                      node_features=np.eye(3),
                      node_labels=np.array([0, 1, 0]))
        nx_graph = to_networkx(graph)
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == 2
        assert nx_graph.nodes[1]["label"] == 1
        back = from_networkx(nx_graph)
        assert back.num_nodes == 3
        assert back.num_edges == 2
        np.testing.assert_array_equal(np.sort(back.rel), np.sort(graph.rel))

    def test_networkx_algorithms_apply(self):
        """The export is usable with the networkx algorithm zoo."""
        graph = Graph(4, np.array([0, 1, 2]), np.array([1, 2, 3]),
                      node_features=np.eye(4))
        nx_graph = to_networkx(graph)
        undirected = nx_graph.to_undirected()
        assert nx.number_connected_components(undirected) == 1
        assert nx.has_path(undirected, 0, 3)


class TestGATMultiHead:
    def test_output_shape(self):
        conv = GATConv(6, 8, num_heads=2)
        h = Tensor(np.random.default_rng(0).normal(size=(5, 6)))
        out = conv(h, np.array([0, 1, 2]), np.array([1, 2, 0]), 5)
        assert out.shape == (5, 8)

    def test_invalid_head_count(self):
        with pytest.raises(ValueError):
            GATConv(6, 8, num_heads=3)
        with pytest.raises(ValueError):
            GATConv(6, 8, num_heads=0)

    def test_heads_gradient_flow(self):
        # identity activation so the final ReLU cannot mask either head.
        conv = GATConv(4, 4, num_heads=2, activation="identity")
        h = Tensor(np.random.default_rng(1).normal(size=(3, 4)),
                   requires_grad=True)
        out = conv(h, np.array([0, 1]), np.array([2, 2]), 3)
        out.sum().backward()
        assert conv.attn_src.grad is not None
        assert np.any(conv.attn_src.grad[0] != 0)
        assert np.any(conv.attn_src.grad[1] != 0)


def _episode_logits(model, prompt_emb, labels, query_emb, ways):
    return model.task_logits(Tensor(prompt_emb), labels, Tensor(query_emb),
                             ways).data


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999))
def test_property_prompt_permutation_invariance(seed):
    """Task-graph logits are invariant to the order of the prompts.

    Label aggregation (scatter-mean) and attention (segment softmax) are
    both permutation-invariant, so shuffling the prompt set must not change
    any query's logits.
    """
    rng = np.random.default_rng(seed)
    model = GraphPrompterModel(8, 1, GraphPrompterConfig(hidden_dim=10))
    prompt_emb = rng.normal(size=(9, 10))
    labels = np.repeat(np.arange(3), 3)
    query_emb = rng.normal(size=(4, 10))
    base = _episode_logits(model, prompt_emb, labels, query_emb, 3)
    perm = rng.permutation(9)
    shuffled = _episode_logits(model, prompt_emb[perm], labels[perm],
                               query_emb, 3)
    np.testing.assert_allclose(base, shuffled, rtol=1e-8, atol=1e-10)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999))
def test_property_prompt_duplication_invariance(seed):
    """Duplicating every prompt leaves the logits unchanged.

    Centroids are unchanged by duplication and attention redistributes
    uniformly over identical incoming messages.
    """
    rng = np.random.default_rng(seed)
    model = GraphPrompterModel(8, 1, GraphPrompterConfig(hidden_dim=10))
    prompt_emb = rng.normal(size=(6, 10))
    labels = np.repeat(np.arange(2), 3)
    query_emb = rng.normal(size=(3, 10))
    base = _episode_logits(model, prompt_emb, labels, query_emb, 2)
    doubled = _episode_logits(
        model,
        np.concatenate([prompt_emb, prompt_emb]),
        np.concatenate([labels, labels]),
        query_emb, 2)
    np.testing.assert_allclose(base, doubled, rtol=1e-8, atol=1e-10)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=999),
    scale=st.floats(min_value=0.5, max_value=20.0),
)
def test_property_query_scale_invariance(seed, scale):
    """Cosine-based prediction is invariant to positive query scaling."""
    rng = np.random.default_rng(seed)
    model = GraphPrompterModel(8, 1, GraphPrompterConfig(hidden_dim=10))
    prompt_emb = rng.normal(size=(6, 10))
    labels = np.repeat(np.arange(2), 3)
    query_emb = rng.normal(size=(3, 10))
    base = _episode_logits(model, prompt_emb, labels, query_emb, 2)
    scaled = _episode_logits(model, prompt_emb, labels, query_emb * scale, 2)
    # argmax-invariance is the behavioural guarantee (LayerNorm keeps the
    # geometry but not the exact values).
    np.testing.assert_array_equal(base.argmax(axis=1), scaled.argmax(axis=1))
