"""Tests for the SLO evaluation engine over registry snapshots."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import (
    LatencyQuantileSLO,
    RecoveryTimeSLO,
    SLOSpec,
    counter_total,
    deadline_miss_slo,
    evaluate,
    histogram_quantile,
    render_report,
    shed_rate_slo,
    snapshot_delta,
    stage_profile,
)
from repro.obs.tracing import STAGE_METRIC

WAIT = "repro_gateway_queue_wait_seconds"


def gateway_registry():
    """A registry with the gateway's instrument shapes pre-registered."""
    registry = MetricsRegistry()
    registry.counter("repro_gateway_submitted_total",
                     labelnames=("tenant", "priority"))
    registry.counter("repro_gateway_shed_total",
                     labelnames=("tenant", "priority", "reason"))
    registry.counter("repro_gateway_completed_total",
                     labelnames=("tenant", "priority"))
    registry.counter("repro_gateway_deadline_misses_total",
                     labelnames=("tenant", "priority"))
    registry.histogram(WAIT, labelnames=("priority",))
    registry.histogram(STAGE_METRIC, labelnames=("stage",))
    return registry


def observe_wait(registry, priority, value, times=1):
    histogram = registry.histogram(WAIT, labelnames=("priority",))
    for _ in range(times):
        histogram.observe(value, priority=priority)


# ----------------------------------------------------------------------
# Snapshot algebra.
# ----------------------------------------------------------------------
class TestSnapshotAlgebra:
    def test_counter_delta_subtracts(self):
        registry = gateway_registry()
        counter = registry.counter("repro_gateway_submitted_total",
                                   labelnames=("tenant", "priority"))
        counter.inc(3, tenant="a", priority="batch")
        start = registry.snapshot()
        counter.inc(5, tenant="a", priority="batch")
        counter.inc(2, tenant="b", priority="interactive")
        delta = snapshot_delta(registry.snapshot(), start)
        assert counter_total(delta, "repro_gateway_submitted_total") == 7
        assert counter_total(delta, "repro_gateway_submitted_total",
                             {"priority": "batch"}) == 5

    def test_histogram_delta_subtracts_buckets(self):
        registry = gateway_registry()
        observe_wait(registry, "batch", 0.001, times=10)
        start = registry.snapshot()
        observe_wait(registry, "batch", 4.0, times=10)
        delta = snapshot_delta(registry.snapshot(), start)
        # Only the post-snapshot slow observations remain: the delta's
        # median sits near 4s, not between the two modes.
        median = histogram_quantile(delta, WAIT, 0.5,
                                    {"priority": "batch"})
        assert median > 1.0
        full = histogram_quantile(registry.snapshot(), WAIT, 0.5,
                                  {"priority": "batch"})
        assert full < 1.0

    def test_quantile_matches_live_histogram(self):
        registry = gateway_registry()
        for value in (0.002, 0.004, 0.008, 0.016, 0.512):
            observe_wait(registry, "interactive", value)
        histogram = registry.histogram(WAIT, labelnames=("priority",))
        snap = registry.snapshot()
        for q in (0.5, 0.95, 1.0):
            assert histogram_quantile(
                snap, WAIT, q, {"priority": "interactive"}) == pytest.approx(
                    histogram.quantile(q, priority="interactive"))

    def test_missing_metric_is_zero(self):
        assert counter_total({}, "nope") == 0.0
        assert histogram_quantile({}, "nope", 0.95) == 0.0

    def test_stage_profile_shares(self):
        registry = gateway_registry()
        stages = registry.histogram(STAGE_METRIC, labelnames=("stage",))
        stages.observe(0.3, stage="encode")
        stages.observe(0.1, stage="forward")
        profile = stage_profile(registry.snapshot())
        assert list(profile)[0] == "encode"
        assert profile["encode"]["share"] == pytest.approx(0.75)


# ----------------------------------------------------------------------
# Objectives.
# ----------------------------------------------------------------------
class TestObjectives:
    def test_latency_quantile_pass_and_fail(self):
        registry = gateway_registry()
        observe_wait(registry, "interactive", 0.01, times=20)
        snap = registry.snapshot()
        slo = LatencyQuantileSLO(name="p95", threshold_s=0.1,
                                 priority="interactive")
        assert slo.evaluate(snap).ok
        observe_wait(registry, "interactive", 2.0, times=20)
        check = slo.evaluate(registry.snapshot())
        assert not check.ok
        assert check.burn > 1.0

    def test_latency_vacuous_without_observations(self):
        check = LatencyQuantileSLO(name="p95", threshold_s=0.1).evaluate(
            gateway_registry().snapshot())
        assert check.ok
        assert "vacuous" in check.detail

    def test_zero_budget_shed_rate_burns_infinite(self):
        registry = gateway_registry()
        registry.counter("repro_gateway_submitted_total",
                         labelnames=("tenant", "priority")).inc(
            10, tenant="a", priority="interactive")
        registry.counter("repro_gateway_shed_total",
                         labelnames=("tenant", "priority", "reason")).inc(
            1, tenant="a", priority="interactive", reason="queue-full")
        check = shed_rate_slo("interactive", 0.0).evaluate(
            registry.snapshot())
        assert not check.ok
        assert check.burn == float("inf")

    def test_deadline_miss_ratio(self):
        registry = gateway_registry()
        registry.counter("repro_gateway_completed_total",
                         labelnames=("tenant", "priority")).inc(
            10, tenant="a", priority="batch")
        registry.counter("repro_gateway_deadline_misses_total",
                         labelnames=("tenant", "priority")).inc(
            4, tenant="a", priority="batch")
        assert deadline_miss_slo(0.5).evaluate(registry.snapshot()).ok
        assert not deadline_miss_slo(0.3).evaluate(
            registry.snapshot()).ok

    def test_recovery_time_bound(self):
        registry = MetricsRegistry()
        recovery = registry.histogram("repro_recovery_seconds")
        recovery.observe(0.5)
        snap = registry.snapshot()
        assert RecoveryTimeSLO(name="rec", threshold_s=5.0).evaluate(
            snap).ok
        assert not RecoveryTimeSLO(name="rec",
                                   threshold_s=0.01).evaluate(snap).ok


# ----------------------------------------------------------------------
# Multi-window evaluation + report.
# ----------------------------------------------------------------------
class TestEvaluate:
    def spiky_snapshots(self):
        """4 windows; one has a latency spike the full span averages away."""
        registry = gateway_registry()
        stages = registry.histogram(STAGE_METRIC, labelnames=("stage",))
        snapshots = [registry.snapshot()]
        for window in range(4):
            observe_wait(registry, "interactive", 0.001, times=25)
            if window == 2:
                # A thin slow tail: dominates window 2's p95 (28 obs, 3
                # slow → rank 26.6 lands in the 1s bucket) but stays
                # under the full span's p95 (103 obs, 3 slow).
                observe_wait(registry, "interactive", 1.0, times=3)
            stages.observe(0.2 if window == 2 else 0.01, stage="forward")
            stages.observe(0.005, stage="encode")
            snapshots.append(registry.snapshot())
        return snapshots

    def test_burn_alert_fires_on_spike_window(self):
        spec = SLOSpec(name="spiky", objectives=(
            LatencyQuantileSLO(name="p95", threshold_s=0.5, quantile=0.95,
                               priority="interactive"),
        ), fast_burn=2.0)
        verdict = evaluate(spec, self.spiky_snapshots())
        # Full span passes (75% of observations are fast)...
        assert verdict.ok
        # ...but the spike window burned ≥ 2× its budget.
        assert verdict.burn_alerts == 1
        result = verdict.results[0]
        assert max(result.window_burns) > 1.0
        assert result.window_burns[0] < 0.1

    def test_violation_is_stage_attributed(self):
        spec = SLOSpec(name="tight", objectives=(
            LatencyQuantileSLO(name="p95", threshold_s=1e-5,
                               quantile=0.95, priority="interactive"),
        ))
        verdict = evaluate(spec, self.spiky_snapshots())
        assert not verdict.ok
        result = verdict.results[0]
        assert result.attribution is not None
        stage, share = result.attribution
        assert stage == "forward"
        assert share > 0.5

    def test_needs_two_snapshots(self):
        with pytest.raises(ValueError):
            evaluate(SLOSpec(name="x"), [gateway_registry().snapshot()])

    def test_report_and_jsonable(self):
        spec = SLOSpec(name="spiky", objectives=(
            LatencyQuantileSLO(name="p95", threshold_s=0.5,
                               priority="interactive"),
            shed_rate_slo("interactive", 0.0),
        ), fast_burn=2.0)
        verdict = evaluate(spec, self.spiky_snapshots())
        report = render_report([verdict])
        assert "[spiky] OK" in report
        assert "p95" in report
        payload = verdict.to_jsonable()
        assert payload["spec"] == "spiky"
        assert len(payload["objectives"]) == 2
        assert payload["stage_profile"]
