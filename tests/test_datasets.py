"""Tests for synthetic generators, the Dataset wrapper and the registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    DATASET_BUILDERS,
    Dataset,
    EDGE_TASK,
    NODE_TASK,
    dataset_statistics,
    format_statistics_table,
    load_dataset,
    semantic_basis,
    statistics_table,
    synthetic_citation_graph,
    synthetic_knowledge_graph,
)
from repro.graph import EdgeInput, NodeInput


class TestCitationGenerator:
    def test_all_classes_present(self):
        g = synthetic_citation_graph(50, 10, rng=0)
        assert set(np.unique(g.node_labels)) == set(range(10))

    def test_no_self_loops(self):
        g = synthetic_citation_graph(100, 5, rng=1)
        assert np.all(g.src != g.dst)

    def test_homophily_effect(self):
        """High homophily => most edges intra-class."""
        g = synthetic_citation_graph(300, 4, homophily=0.9, rng=2)
        same = g.node_labels[g.src] == g.node_labels[g.dst]
        assert same.mean() > 0.6
        g_low = synthetic_citation_graph(300, 4, homophily=0.0, rng=2)
        same_low = g_low.node_labels[g_low.src] == g_low.node_labels[g_low.dst]
        assert same_low.mean() < same.mean()

    def test_features_cluster_by_class(self):
        g = synthetic_citation_graph(200, 4, feature_noise=0.1, rng=3)
        centroids = np.stack([
            g.node_features[g.node_labels == c].mean(axis=0) for c in range(4)
        ])
        # Same-class points are closer to their own centroid on average.
        dists = np.linalg.norm(
            g.node_features[:, None, :] - centroids[None, :, :], axis=-1)
        assert (dists.argmin(axis=1) == g.node_labels).mean() > 0.9

    def test_deterministic_given_seed(self):
        a = synthetic_citation_graph(60, 3, rng=7)
        b = synthetic_citation_graph(60, 3, rng=7)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_allclose(a.node_features, b.node_features)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_citation_graph(10, 1)
        with pytest.raises(ValueError):
            synthetic_citation_graph(3, 10)
        with pytest.raises(ValueError):
            synthetic_citation_graph(10, 2, homophily=1.5)


class TestKGGenerator:
    def test_every_relation_present(self):
        g = synthetic_knowledge_graph(200, 20, 1500, rng=0)
        assert set(np.unique(g.rel)) == set(range(20))

    def test_minimum_support_per_relation(self):
        g = synthetic_knowledge_graph(300, 30, 3000, rng=1)
        counts = np.bincount(g.rel, minlength=30)
        assert counts.min() >= 4

    def test_relations_typed(self):
        """With zero edge noise, each relation's heads share an entity type."""
        g = synthetic_knowledge_graph(200, 10, 1000, edge_noise=0.0, rng=2)
        # Recover types by clustering features is overkill; instead check
        # that heads of one relation have low feature variance compared to
        # random entities (they share a type prototype).
        for r in range(3):
            heads = g.src[g.rel == r]
            head_var = g.node_features[heads].var(axis=0).mean()
            global_var = g.node_features.var(axis=0).mean()
            assert head_var < global_var

    def test_edge_noise_increases_mismatch(self):
        clean = synthetic_knowledge_graph(200, 10, 1200, edge_noise=0.0, rng=3)
        assert clean.num_edges >= 1200  # floors can exceed the request

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_knowledge_graph(100, 1, 100)
        with pytest.raises(ValueError):
            synthetic_knowledge_graph(100, 10, 5)
        with pytest.raises(ValueError):
            synthetic_knowledge_graph(2, 20, 100)

    def test_deterministic_given_seed(self):
        a = synthetic_knowledge_graph(100, 5, 500, rng=9)
        b = synthetic_knowledge_graph(100, 5, 500, rng=9)
        np.testing.assert_array_equal(a.rel, b.rel)


class TestSemanticBasis:
    def test_orthonormal(self):
        basis = semantic_basis(16)
        np.testing.assert_allclose(basis @ basis.T, np.eye(16), atol=1e-10)

    def test_shared_across_calls(self):
        np.testing.assert_allclose(semantic_basis(8), semantic_basis(8))


class TestDataset:
    def test_node_dataset(self):
        g = synthetic_citation_graph(100, 5, rng=0)
        ds = Dataset(g, NODE_TASK, rng=0)
        assert ds.num_classes == 5
        assert ds.num_datapoints == 100
        assert isinstance(ds.datapoint(0), NodeInput)

    def test_edge_dataset(self):
        g = synthetic_knowledge_graph(100, 5, 600, rng=0)
        ds = Dataset(g, EDGE_TASK, rng=0)
        assert ds.num_classes == 5
        assert ds.num_datapoints == g.num_edges
        dp = ds.datapoint(0)
        assert isinstance(dp, EdgeInput)
        assert dp.relation == ds.label_of(0)

    def test_datapoint_without_label(self):
        g = synthetic_knowledge_graph(100, 5, 600, rng=0)
        ds = Dataset(g, EDGE_TASK, rng=0)
        assert ds.datapoint(0, with_label=False).relation is None

    def test_splits_partition(self):
        g = synthetic_citation_graph(100, 5, rng=1)
        ds = Dataset(g, NODE_TASK, rng=1)
        combined = np.concatenate([ds.splits["train"], ds.splits["val"],
                                   ds.splits["test"]])
        assert len(combined) == 100
        assert len(np.unique(combined)) == 100

    def test_ids_with_label_consistent(self):
        g = synthetic_citation_graph(120, 4, rng=2)
        ds = Dataset(g, NODE_TASK, rng=2)
        ids = ds.ids_with_label(2, "train")
        assert np.all(ds.labels_of(ids) == 2)
        assert np.all(np.isin(ids, ds.splits["train"]))

    def test_classes_with_support(self):
        g = synthetic_citation_graph(200, 4, rng=3)
        ds = Dataset(g, NODE_TASK, rng=3)
        classes = ds.classes_with_support(10, "train")
        for c in classes:
            assert len(ds.ids_with_label(int(c), "train")) >= 10

    def test_node_task_requires_labels(self):
        g = synthetic_knowledge_graph(50, 4, 300, rng=0)
        with pytest.raises(ValueError):
            Dataset(g, NODE_TASK)

    def test_bad_task_rejected(self):
        g = synthetic_citation_graph(50, 4, rng=0)
        with pytest.raises(ValueError):
            Dataset(g, "graph")

    def test_bad_fractions_rejected(self):
        g = synthetic_citation_graph(50, 4, rng=0)
        with pytest.raises(ValueError):
            Dataset(g, NODE_TASK, split_fractions=(0.5, 0.5, 0.5))


class TestRegistry:
    def test_all_builders_exist(self):
        assert set(DATASET_BUILDERS) == {
            "mag240m", "wiki", "arxiv", "conceptnet", "fb15k237", "nell",
        }

    def test_paper_class_counts(self):
        """Downstream datasets preserve the paper's exact class counts."""
        assert load_dataset("arxiv").num_classes == 40
        assert load_dataset("conceptnet").num_classes == 14
        assert load_dataset("fb15k237").num_classes == 200
        assert load_dataset("nell").num_classes == 291

    def test_pretraining_datasets_shape(self):
        mag = load_dataset("mag240m")
        assert mag.task == NODE_TASK
        assert mag.num_classes == 153
        wiki = load_dataset("wiki")
        assert wiki.task == EDGE_TASK
        assert wiki.num_classes == 150

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("ogbn-products")

    def test_fb15k_has_enough_support_for_100_ways(self):
        """Table V needs 100 classes with >= 10 train prompts each."""
        ds = load_dataset("fb15k237")
        assert len(ds.classes_with_support(10, "train")) >= 100

    def test_nell_has_enough_support_for_100_ways(self):
        ds = load_dataset("nell")
        assert len(ds.classes_with_support(10, "train")) >= 100

    def test_arxiv_has_enough_support_for_40_ways(self):
        ds = load_dataset("arxiv")
        assert len(ds.classes_with_support(10, "train")) >= 40

    def test_different_seeds_differ(self):
        a = load_dataset("conceptnet", seed=0)
        b = load_dataset("conceptnet", seed=1)
        assert not np.array_equal(a.splits["train"], b.splits["train"])


class TestStatistics:
    def test_row_contents(self):
        ds = load_dataset("conceptnet")
        row = dataset_statistics(ds)
        assert row["classes"] == 14
        assert row["nodes"] == ds.graph.num_nodes

    def test_table_and_format(self):
        rows = statistics_table([load_dataset("conceptnet"),
                                 load_dataset("arxiv")])
        text = format_statistics_table(rows)
        assert "conceptnet-sim" in text
        assert "arxiv-sim" in text
        assert len(text.splitlines()) == 4


@settings(max_examples=10, deadline=None)
@given(
    nodes=st.integers(min_value=20, max_value=100),
    classes=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=99),
)
def test_property_citation_labels_within_range(nodes, classes, seed):
    g = synthetic_citation_graph(nodes, classes, rng=seed)
    assert g.node_labels.min() >= 0
    assert g.node_labels.max() < classes
    assert g.num_nodes == nodes


@settings(max_examples=10, deadline=None)
@given(
    entities=st.integers(min_value=30, max_value=120),
    relations=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=99),
)
def test_property_kg_every_relation_has_floor_support(entities, relations, seed):
    g = synthetic_knowledge_graph(entities, relations, relations * 40, rng=seed)
    counts = np.bincount(g.rel, minlength=relations)
    assert counts.min() >= 4


class TestExtendedStatistics:
    def test_extended_fields(self):
        from repro.datasets import extended_statistics

        row = extended_statistics(load_dataset("conceptnet"), rng=0)
        assert row["mean_degree"] > 0
        assert row["max_degree"] >= row["mean_degree"]
        assert row["isolated_nodes"] >= 0
        assert 0.0 <= row["avg_clustering"] <= 1.0

    def test_citation_more_clustered_than_kg(self):
        """Homophilous citation graphs have higher clustering than the
        bipartite-ish typed KGs — a structural property the generators
        preserve."""
        from repro.datasets import extended_statistics

        cite = extended_statistics(load_dataset("arxiv"), rng=0)
        kg = extended_statistics(load_dataset("conceptnet"), rng=0)
        assert cite["avg_clustering"] >= kg["avg_clustering"]
