"""Fast-mode smoke tests for every table/figure experiment.

These run the exact code paths the benchmarks use, shrunk to seconds, and
assert the structural contract of each result (headers, rows, data keys) so
a benchmark failure can only be a *science* failure, not a plumbing one.
"""

import numpy as np
import pytest

from repro.experiments import (
    ABLATIONS,
    ExperimentContext,
    default_config,
    fig3_ablation,
    fig4_gnn_architectures,
    fig5_cache_size,
    fig6_shots_sweep,
    fig7_embedding_distribution,
    fig8_multi_hop,
    fig9_training_curves,
    table2_dataset_statistics,
    table3_arxiv,
    table4_kg,
    table5_many_ways,
    table6_ofa_comparison,
    table7_random_pseudo_labels,
    table8_inference_time,
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(fast=True, use_disk_cache=False)


class TestContext:
    def test_dataset_caching(self, ctx):
        assert ctx.dataset("conceptnet") is ctx.dataset("conceptnet")

    def test_pretrained_state_cached(self, ctx):
        a = ctx.pretrained_state("wiki")
        b = ctx.pretrained_state("wiki")
        assert a is b

    def test_methods_unknown_name(self, ctx):
        with pytest.raises(KeyError):
            ctx.methods("wiki", ["Midas"])

    def test_default_config_overrides(self):
        cfg = default_config(cache_size=7)
        assert cfg.cache_size == 7
        assert cfg.hidden_dim == 24


class TestTable2:
    def test_rows_and_classes(self, ctx):
        result = table2_dataset_statistics(ctx)
        assert len(result.rows) == 6
        by_name = {r[0]: r for r in result.rows}
        assert by_name["fb15k237-sim"][4] == 200
        assert by_name["nell-sim"][4] == 291
        assert "Table II" in str(result)


class TestTable3:
    def test_structure(self, ctx):
        result = table3_arxiv(ctx, ways_list=(3, 5),
                              method_names=["Prodigy", "GraphPrompter"])
        assert len(result.rows) == 2
        grid = result.data["grid"]
        assert set(grid) == {3, 5}
        assert set(grid[3]) == {"Prodigy", "GraphPrompter"}
        for cell in grid[3].values():
            assert 0.0 <= cell.mean <= 1.0


class TestTable4:
    def test_blocks(self, ctx):
        result = table4_kg(ctx, method_names=["Prodigy", "GraphPrompter"])
        targets = {row[0] for row in result.rows}
        assert targets == {"conceptnet", "fb15k237", "nell"}
        assert set(result.data["conceptnet"]) == {4}
        assert set(result.data["fb15k237"]) == {5, 10, 20, 40}


class TestTable5:
    def test_many_ways(self, ctx):
        result = table5_many_ways(ctx, ways_list=(50,))
        assert {row[0] for row in result.rows} == {"fb15k237", "nell"}
        grid = result.data["fb15k237"]
        assert set(grid[50]) == {"Prodigy", "ProG", "GraphPrompter"}


class TestTable6:
    def test_ofa_comparison(self, ctx):
        if hasattr(table6_ofa_comparison, "__wrapped__"):
            table6_ofa_comparison.__wrapped__(ctx)
        # Run with reduced blocks via direct call:
        from repro.experiments.grids import accuracy_grid
        grid = accuracy_grid(ctx, source="wiki", target="fb15k237",
                             ways_list=[5], method_names=["OFA",
                                                          "GraphPrompter"])
        assert set(grid[5]) == {"OFA", "GraphPrompter"}


class TestTable7:
    def test_random_pseudo_labels(self, ctx):
        result = table7_random_pseudo_labels(ctx, seeds=(10, 30),
                                             num_ways=5)
        assert len(result.rows) == 2
        fb = result.data["fb15k237"]
        assert len(fb["random_by_seed"]) == 2
        assert all(0.0 <= v <= 100.0 for v in fb["random_by_seed"])


class TestTable8:
    def test_timing(self, ctx):
        result = table8_inference_time(ctx, ways_list=(5,))
        for target in ("fb15k237", "nell"):
            cell = result.data[target][5]
            assert cell["prodigy"].ms_per_query > 0
            assert cell["ours"].ms_per_query > 0
            assert cell["slowdown"] > 0


class TestFig3:
    def test_ablation_variants_present(self, ctx):
        result = fig3_ablation(ctx, ways_list=(5,))
        cell = result.data["fb15k237"][5]
        assert set(cell) == set(ABLATIONS)


class TestFig4:
    def test_architectures(self, ctx):
        result = fig4_gnn_architectures(ctx, ways_list=(5,))
        cell = result.data["nell"][5]
        assert set(cell) == {"GAT", "SAGE"}


class TestFig5:
    def test_cache_sizes(self, ctx):
        result = fig5_cache_size(ctx, cache_sizes=(1, 3), ways_list=(5,))
        series = result.data["fb15k237"][5]
        assert set(series) == {1, 3}


class TestFig6:
    def test_shots(self, ctx):
        result = fig6_shots_sweep(ctx, shots_list=(1, 3))
        fb = result.data["fb15k237"]
        assert set(fb) == {"Prodigy", "GraphPrompter"}
        assert set(fb["Prodigy"]) == {1, 3}


class TestFig7:
    def test_ratios(self, ctx):
        result = fig7_embedding_distribution(ctx, shots_list=(5,),
                                             num_ways=4)
        cell = result.data["fb15k237"][5]
        assert cell["Prodigy"]["ratio"] > 0
        assert cell["GraphPrompter"]["ratio"] > 0
        # fast mode skips the t-SNE projection
        assert cell["Prodigy"]["tsne"] is None


class TestFig8:
    def test_hops(self, ctx):
        result = fig8_multi_hop(ctx, hops_list=(1, 2), ways_list=(5,))
        cell = result.data["nell"][5]
        assert set(cell["Prodigy"]) == {1, 2}


class TestFig9:
    def test_histories(self, ctx):
        result = fig9_training_curves(ctx)
        ours = result.data["ours"]
        prodigy = result.data["prodigy"]
        assert len(ours.losses) >= 3
        assert len(prodigy.losses) >= 3
        assert np.isfinite(ours.final_loss)
