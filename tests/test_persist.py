"""Tests for the durability tier: atomic writes, WAL, snapshots,
manifests, checksummed weights, crash recovery, and replica failover."""

import asyncio
import json
import multiprocessing
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.datasets import Dataset, EDGE_TASK
from repro.datasets.synthetic import synthetic_knowledge_graph
from repro.graph import GraphUpdate
from repro.nn import load_state, save_state
from repro.obs import MetricsRegistry
from repro.obs.metrics import scoped_registry
from repro.persist import (
    CorruptArtifactError,
    PersistentStore,
    SessionManifest,
    SessionManifestStore,
    WriteAheadLog,
    atomic_write,
    load_snapshot,
    write_snapshot,
)
from repro.persist.wal import update_from_jsonable, update_to_jsonable
from repro.serving import (
    Priority,
    PromptServer,
    ReplicaSet,
    ServingGateway,
    Unavailable,
)
from repro.shard.workers import WorkerPool

SRC_ROOT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def small_graph(rng=0, name="kg-persist"):
    return synthetic_knowledge_graph(200, 6, 1200, rng=rng, name=name)


def seeded_update(graph, rng, num_add=8, num_remove=4, num_new_nodes=0):
    rng = np.random.default_rng(rng)
    total = graph.num_nodes + num_new_nodes
    _, _, _, live = graph.live_edges()
    features = (rng.normal(size=(num_new_nodes, graph.feature_dim))
                if num_new_nodes else None)
    return GraphUpdate(
        add_src=rng.integers(0, total, size=num_add),
        add_dst=rng.integers(0, total, size=num_add),
        add_rel=rng.integers(0, graph.num_relations, size=num_add),
        remove_edges=rng.choice(live, size=num_remove, replace=False),
        add_node_features=features)


# ----------------------------------------------------------------------
# atomic_write
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_writes_and_cleans_up(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with atomic_write(path) as handle:
            handle.write("hello")
        with open(path) as handle:
            assert handle.read() == "hello"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failure_preserves_previous_contents(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with atomic_write(path) as handle:
            handle.write("v1")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as handle:
                handle.write("partial v2")
                raise RuntimeError("crash mid-write")
        with open(path) as handle:
            assert handle.read() == "v1"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_binary_mode(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with atomic_write(path, mode="wb") as handle:
            handle.write(b"\x00\x01\x02")
        with open(path, "rb") as handle:
            assert handle.read() == b"\x00\x01\x02"


# ----------------------------------------------------------------------
# Checksummed module weights (nn.save_state / load_state)
# ----------------------------------------------------------------------
class TestCheckpointChecksums:
    @pytest.fixture()
    def model_and_path(self, tmp_path):
        config = GraphPrompterConfig(hidden_dim=8, num_gnn_layers=1)
        model = GraphPrompterModel(12, 4, config)
        path = str(tmp_path / "model.npz")
        save_state(model, path)
        return config, model, path

    def test_round_trip(self, model_and_path):
        config, model, path = model_and_path
        other = GraphPrompterModel(12, 4, config)
        load_state(other, path)
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(other.state_dict()[key], value)

    def test_truncated_file_raises_typed_error(self, model_and_path):
        _, _, path = model_and_path
        config = GraphPrompterConfig(hidden_dim=8, num_gnn_layers=1)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[:len(blob) // 2])
        with pytest.raises(CorruptArtifactError):
            load_state(GraphPrompterModel(12, 4, config), path)

    def test_bit_flip_raises_typed_error(self, model_and_path):
        _, _, path = model_and_path
        config = GraphPrompterConfig(hidden_dim=8, num_gnn_layers=1)
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        # Flip a byte deep in the payload (past the zip header).
        blob[len(blob) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(CorruptArtifactError):
            load_state(GraphPrompterModel(12, 4, config), path)

    def test_legacy_file_without_checksum_loads(self, model_and_path):
        config, model, path = model_and_path
        legacy = path + ".legacy.npz"
        np.savez(legacy, **{k: np.asarray(v)
                            for k, v in model.state_dict().items()})
        other = GraphPrompterModel(12, 4, config)
        load_state(other, legacy)
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(other.state_dict()[key], value)


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_records_round_trip(self, tmp_path):
        graph = small_graph()
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"))
        updates = [seeded_update(graph, 1),
                   seeded_update(graph, 2, num_new_nodes=2)]
        for i, update in enumerate(updates):
            assert wal.append(update, base_version=i) == i
        records = list(wal.records())
        assert [r.seq for r in records] == [0, 1]
        for record, update in zip(records, updates):
            np.testing.assert_array_equal(record.update.add_src,
                                          update.add_src)
            np.testing.assert_array_equal(record.update.remove_edges,
                                          update.remove_edges)
        feats = records[1].update.add_node_features
        np.testing.assert_array_equal(feats, updates[1].add_node_features)
        assert feats.dtype == np.float64  # exact float64 round-trip

    def test_update_jsonable_round_trip_exact(self):
        graph = small_graph()
        update = seeded_update(graph, 3, num_new_nodes=1)
        back = update_from_jsonable(update_to_jsonable(update))
        np.testing.assert_array_equal(back.add_src, update.add_src)
        np.testing.assert_array_equal(back.add_node_features,
                                      update.add_node_features)

    def test_torn_tail_is_dropped(self, tmp_path):
        graph = small_graph()
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"))
        wal.append(seeded_update(graph, 1), base_version=0)
        wal.append(seeded_update(graph, 2), base_version=1)
        with open(wal.path) as handle:
            line = handle.readlines()[-1]
        with open(wal.path, "a") as handle:
            handle.write(line[:len(line) // 2])  # death mid-append
        assert [r.seq for r in wal.records()] == [0, 1]
        # A fresh handle picks the next sequence past the intact tail.
        fresh = WriteAheadLog(wal.path)
        assert fresh.append(seeded_update(graph, 3), base_version=2) == 2

    def test_corruption_before_intact_records_raises(self, tmp_path):
        graph = small_graph()
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"))
        wal.append(seeded_update(graph, 1), base_version=0)
        wal.append(seeded_update(graph, 2), base_version=1)
        with open(wal.path) as handle:
            lines = handle.readlines()
        lines[0] = "{not json at all\n"  # damage *before* an intact record
        with open(wal.path, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(CorruptArtifactError):
            list(wal.records())

    def test_crc_mismatch_raises(self, tmp_path):
        graph = small_graph()
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"))
        wal.append(seeded_update(graph, 1), base_version=0)
        wal.append(seeded_update(graph, 2), base_version=1)
        with open(wal.path) as handle:
            lines = handle.readlines()
        first = json.loads(lines[0])
        first["crc"] = (first["crc"] + 1) & 0xFFFFFFFF
        lines[0] = json.dumps(first, sort_keys=True,
                              separators=(",", ":")) + "\n"
        with open(wal.path, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(CorruptArtifactError):
            list(wal.records())


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
class TestSnapshot:
    def test_round_trip_after_mutation(self, tmp_path):
        graph = small_graph()
        graph.apply_updates(seeded_update(graph, 1, num_new_nodes=2))
        owner = np.arange(graph.num_nodes, dtype=np.int64) % 2
        path = str(tmp_path / "snap.npz")
        write_snapshot(path, graph, wal_seq=3, owner=owner)
        restored, wal_seq, restored_owner = load_snapshot(path)
        assert wal_seq == 3
        assert restored.version == graph.version
        np.testing.assert_array_equal(restored_owner, owner)
        np.testing.assert_array_equal(restored.node_features,
                                      graph.node_features)
        for a, b in zip(restored.live_edges(), graph.live_edges()):
            np.testing.assert_array_equal(a, b)

    def test_corruption_raises_typed_error(self, tmp_path):
        graph = small_graph()
        path = str(tmp_path / "snap.npz")
        write_snapshot(path, graph)
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        blob[len(blob) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(CorruptArtifactError):
            load_snapshot(path)

    def test_truncation_raises_typed_error(self, tmp_path):
        graph = small_graph()
        path = str(tmp_path / "snap.npz")
        write_snapshot(path, graph)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[:len(blob) // 3])
        with pytest.raises(CorruptArtifactError):
            load_snapshot(path)

    def test_missing_snapshot_raises(self, tmp_path):
        store = PersistentStore(str(tmp_path / "store"))
        with pytest.raises(CorruptArtifactError):
            store.load_graph()


# ----------------------------------------------------------------------
# Session manifests
# ----------------------------------------------------------------------
class TestSessionManifests:
    def test_round_trip_preserves_order_and_fields(self, tmp_path):
        graph = small_graph()
        dataset = Dataset(graph, EDGE_TASK, rng=0)
        episode = sample_episode(dataset, num_ways=3, num_queries=4, rng=1)
        store = SessionManifestStore(str(tmp_path / "sessions"))
        from repro.persist import episode_to_jsonable
        for index, sid in enumerate(["b", "a"]):
            store.write(SessionManifest(
                session_id=sid, open_index=index, shots=3,
                graph_version=0, episode=episode_to_jsonable(episode),
                tenant_id=f"tenant-{sid}",
                priority=int(Priority.BATCH)))
        loaded = store.load_all()
        assert [m.session_id for m in loaded] == ["b", "a"]  # open order
        assert loaded[0].tenant_id == "tenant-b"
        assert loaded[0].priority == int(Priority.BATCH)
        assert store.next_open_index() == 2
        store.remove("b")
        assert [m.session_id for m in store.load_all()] == ["a"]

    def test_corrupt_manifest_raises(self, tmp_path):
        store = SessionManifestStore(str(tmp_path / "sessions"))
        path = os.path.join(str(tmp_path / "sessions"),
                            "session-ff.json")
        with open(path, "w") as handle:
            handle.write('{"session_id": "ff", trunc')
        with pytest.raises(CorruptArtifactError):
            store.load_all()


# ----------------------------------------------------------------------
# PersistentStore: replay semantics
# ----------------------------------------------------------------------
class TestPersistentStoreReplay:
    def test_duplicate_delivery_is_a_noop(self, tmp_path):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            graph = small_graph()
            store = PersistentStore(str(tmp_path / "store"))
            store.initialize(graph)
            update = seeded_update(graph, 1)
            # The same update delivered twice (e.g. a retried producer).
            store.log_update(update, base_version=graph.version)
            store.log_update(update, base_version=graph.version)
            recovered, _, replayed = store.recover()
        assert replayed == 1  # the duplicate is skipped, not re-applied
        reference = small_graph()
        reference.apply_updates(seeded_update(reference, 1))
        assert recovered.version == reference.version
        for a, b in zip(recovered.live_edges(), reference.live_edges()):
            np.testing.assert_array_equal(a, b)

    def test_replay_is_idempotent_over_recovered_graph(self, tmp_path):
        graph = small_graph()
        store = PersistentStore(str(tmp_path / "store"))
        store.initialize(graph)
        store.log_update(seeded_update(graph, 1), base_version=0)
        recovered, _, replayed = store.recover()
        assert replayed == 1
        # Replaying the whole log again over the same graph applies none.
        assert store.replay_records(recovered) == 0

    def test_record_ahead_of_graph_raises(self, tmp_path):
        graph = small_graph()
        store = PersistentStore(str(tmp_path / "store"))
        store.initialize(graph)
        store.log_update(seeded_update(graph, 1), base_version=7)
        with pytest.raises(CorruptArtifactError):
            store.recover()

    def test_snapshot_compacts_wal(self, tmp_path):
        graph = small_graph()
        store = PersistentStore(str(tmp_path / "store"))
        store.initialize(graph)
        update = seeded_update(graph, 1)
        store.log_update(update, base_version=graph.version)
        graph.apply_updates(update)
        assert len(store.wal) == 1
        store.save_snapshot(graph)
        assert len(store.wal) == 0  # absorbed records dropped
        recovered, _, replayed = store.recover()
        assert replayed == 0 and recovered.version == graph.version


# ----------------------------------------------------------------------
# Real kill -9 at the write-ahead point (graph + WAL level)
# ----------------------------------------------------------------------
CRASH_CHILD = """
import os, signal, numpy as np
from repro.datasets.synthetic import synthetic_knowledge_graph
from repro.graph import GraphUpdate
from repro.persist import PersistentStore

graph = synthetic_knowledge_graph(120, 5, 600, rng=0, name="kg-crash")
store = PersistentStore({store_dir!r})
store.initialize(graph)

def update(seed):
    rng = np.random.default_rng(seed)
    _, _, _, live = graph.live_edges()
    return GraphUpdate(
        add_src=rng.integers(0, graph.num_nodes, size=6),
        add_dst=rng.integers(0, graph.num_nodes, size=6),
        add_rel=rng.integers(0, graph.num_relations, size=6),
        remove_edges=rng.choice(live, size=3, replace=False))

u1 = update(1)
store.log_update(u1, base_version=graph.version)
graph.apply_updates(u1)
u2 = update(2)
store.log_update(u2, base_version=graph.version)
os.kill(os.getpid(), signal.SIGKILL)  # crash before applying u2
"""


class TestKillNineRecovery:
    def test_recover_after_sigkill_matches_uninterrupted(self, tmp_path):
        store_dir = str(tmp_path / "store")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get(
            "PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c",
             CRASH_CHILD.format(store_dir=store_dir)],
            env=env, capture_output=True, text=True, timeout=300)
        assert proc.returncode == -signal.SIGKILL, proc.stderr[-2000:]

        recovered, _, replayed = PersistentStore(store_dir).recover()
        assert replayed == 2  # u1 and the durable-but-unapplied u2

        reference = synthetic_knowledge_graph(120, 5, 600, rng=0,
                                              name="kg-crash")
        for seed in (1, 2):
            rng = np.random.default_rng(seed)
            _, _, _, live = reference.live_edges()
            reference.apply_updates(GraphUpdate(
                add_src=rng.integers(0, reference.num_nodes, size=6),
                add_dst=rng.integers(0, reference.num_nodes, size=6),
                add_rel=rng.integers(0, reference.num_relations, size=6),
                remove_edges=rng.choice(live, size=3, replace=False)))
        assert recovered.version == reference.version
        np.testing.assert_array_equal(recovered.node_features,
                                      reference.node_features)
        for a, b in zip(recovered.live_edges(), reference.live_edges()):
            np.testing.assert_array_equal(a, b)


# ----------------------------------------------------------------------
# Server-level crash recovery (bit-identical serving)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served():
    """A briefly pre-trained model + dataset for recovery tests."""
    graph = synthetic_knowledge_graph(300, 8, 2400, rng=0, name="kg-dur")
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    config = GraphPrompterConfig(hidden_dim=12, max_subgraph_nodes=10,
                                 num_gnn_layers=2, mutable_graph=True)
    model = GraphPrompterModel(dataset.graph.feature_dim,
                               dataset.graph.num_relations, config)
    Pretrainer(model, dataset, PretrainConfig(steps=60, num_ways=4),
               rng=0).train()
    return config, model


def fresh_workload(config, seed=0, num_sessions=2, num_queries=6):
    graph = synthetic_knowledge_graph(300, 8, 2400, rng=0, name="kg-dur")
    dataset = Dataset(graph, EDGE_TASK, rng=seed)
    episodes = [sample_episode(dataset, num_ways=3,
                               num_queries=num_queries, rng=seed * 50 + i)
                for i in range(num_sessions)]
    return dataset, episodes


def touching_update(graph, episodes, seed):
    """An update whose added edges hit every episode's first candidate."""
    rng = np.random.default_rng(seed)
    seeds = np.array(sorted({int(ep.candidates[0].nodes[0])
                             for ep in episodes}), dtype=np.int64)
    _, _, _, live = graph.live_edges()
    return GraphUpdate(
        add_src=np.concatenate(
            [seeds, rng.integers(0, graph.num_nodes, size=4)]),
        add_dst=rng.integers(0, graph.num_nodes, size=seeds.size + 4),
        add_rel=rng.integers(0, graph.num_relations, size=seeds.size + 4),
        remove_edges=rng.choice(live, size=3, replace=False))


class TestServerRecovery:
    @pytest.mark.parametrize("num_shards", [1, 2])
    def test_restore_is_bit_identical(self, served, tmp_path, num_shards):
        config, model = served
        kwargs = dict(max_batch_size=4, rng=11, num_shards=num_shards,
                      num_workers=num_shards, worker_backend="serial")

        def timeline(server, episodes):
            """Rounds 0-1 around one applied update; returns the update
            that is durable but (on the doomed side) never applied."""
            for i, episode in enumerate(episodes):
                server.open_session(f"s{i}", episode)
            graph = server.dataset.graph
            for q in (0, 1):
                for i, episode in enumerate(episodes):
                    server.submit(f"s{i}", episode.queries[q])
            server.drain()
            server.update_graph(touching_update(graph, episodes, 5))
            for i, episode in enumerate(episodes):
                server.submit(f"s{i}", episode.queries[2])
            server.drain()
            return touching_update(graph, episodes, 6)

        def final_round(server, episodes):
            for q in (3, 4):
                for i, episode in enumerate(episodes):
                    server.submit(f"s{i}", episode.queries[q])
            return [(r.session_id, r.prediction, r.confidence)
                    for r in server.drain()]

        # Doomed run: log the second update, crash before applying.
        dataset, episodes = fresh_workload(config)
        store = PersistentStore(str(tmp_path / "store"))
        doomed = PromptServer(model, dataset, persist=store, **kwargs)
        unapplied = timeline(doomed, episodes)
        store.log_update(unapplied,
                         base_version=doomed.dataset.graph.version)
        doomed.close()

        # Uninterrupted reference: same timeline, update applied.
        ref_dataset, ref_episodes = fresh_workload(config)
        reference = PromptServer(model, ref_dataset, **kwargs)
        reference.update_graph(timeline(reference, ref_episodes))
        expected = final_round(reference, ref_episodes)
        reference.close()

        recovered = PromptServer.restore(
            model, PersistentStore(str(tmp_path / "store")), EDGE_TASK,
            **kwargs)
        assert recovered.last_recovery_replayed == 2
        assert len(recovered.sessions) == len(episodes)
        got = final_round(recovered, ref_episodes)
        recovered.close()
        assert got == expected

    def test_restore_from_corrupt_snapshot_raises(self, served, tmp_path):
        config, model = served
        dataset, episodes = fresh_workload(config)
        store = PersistentStore(str(tmp_path / "store"))
        server = PromptServer(model, dataset, persist=store, rng=1)
        server.open_session("s0", episodes[0])
        server.close()
        with open(store.snapshot_path, "rb") as handle:
            blob = bytearray(handle.read())
        blob[len(blob) // 2] ^= 0xFF
        with open(store.snapshot_path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(CorruptArtifactError):
            PromptServer.restore(model, PersistentStore(store.directory),
                                 EDGE_TASK, rng=1)


# ----------------------------------------------------------------------
# ReplicaSet failover
# ----------------------------------------------------------------------
class TestReplicaSetFailover:
    def test_kill_settles_inflight_and_survivor_serves(self, served,
                                                       tmp_path):
        config, model = served
        store = PersistentStore(str(tmp_path / "store"))
        _, episodes = fresh_workload(config, num_sessions=3)
        tenants = [f"tenant-{i}" for i in range(3)]

        def factory(replica_id):
            dataset, _ = fresh_workload(config)
            server = PromptServer(model, dataset, max_batch_size=4,
                                  rng=11, persist=store)
            return ServingGateway(server, auto_drain=False)

        async def main():
            rs = ReplicaSet(factory, num_replicas=2, store=store)
            for i, tenant in enumerate(tenants):
                rs.open_session(tenant, f"{tenant}-s", episodes[i])
            victim = rs.route(tenants[0])
            inflight = [
                rs.replicas[victim].submit_nowait(
                    f"{tenant}-s", episodes[i].queries[0])
                for i, tenant in enumerate(tenants)
                if rs.route(tenant) == victim]
            settled = rs.kill(victim)
            assert settled == len(inflight)
            for future in inflight:
                assert future.done()
                assert isinstance(future.result(), Unavailable)
            assert rs.healthy_replicas() == [1 - victim]
            # Every tenant re-routes and is served by the survivor
            # (auto_drain is off, so flush the survivor explicitly).
            survivor = 1 - victim
            futures = []
            for i, tenant in enumerate(tenants):
                assert rs.route(tenant) == survivor
                futures.append(rs.replicas[survivor].submit_nowait(
                    f"{tenant}-s", episodes[i].queries[1]))
            await asyncio.wait_for(rs.replicas[survivor].flush(),
                                   timeout=60)
            assert all(f.done() and f.result().ok for f in futures)
            assert all(rs.route(t) == 1 - victim for t in tenants)
            await rs.close()

        asyncio.run(main())

    def test_update_logged_once_and_fanned_out(self, served, tmp_path):
        config, model = served
        store = PersistentStore(str(tmp_path / "store"))
        _, episodes = fresh_workload(config, num_sessions=1)

        def factory(replica_id):
            dataset, _ = fresh_workload(config)
            server = PromptServer(model, dataset, max_batch_size=4,
                                  rng=11, persist=store)
            return ServingGateway(server, auto_drain=False)

        async def main():
            rs = ReplicaSet(factory, num_replicas=2, store=store)
            graph = rs.replicas[0].server.dataset.graph
            await rs.update_graph(touching_update(graph, episodes, 5))
            versions = {g.server.dataset.graph.version
                        for g in rs.replicas}
            assert versions == {graph.version}  # fleet version-aligned
            assert len(store.wal) == 1  # logged exactly once
            await rs.close()

        asyncio.run(main())


# ----------------------------------------------------------------------
# WorkerPool bounded retry + degrade
# ----------------------------------------------------------------------
def _pool_context():
    return "ctx"


def _fails_in_worker_process(context, task):
    if multiprocessing.current_process().name != "MainProcess":
        raise RuntimeError("worker-only failure")
    return task * 2


class TestWorkerPoolRetry:
    def test_respawn_then_degrade_serves_and_counts(self):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            pool = WorkerPool(_pool_context, num_workers=2,
                              backend="process", max_respawns=1,
                              respawn_backoff_s=0.0)
            if pool.backend != "process":
                pool.close()
                pytest.skip("process pool unavailable on this host")
            results = pool.map(_fails_in_worker_process, [1, 2, 3])
            assert [r for r, _ in results] == [2, 4, 6]
            assert pool.backend == "serial"  # permanently degraded
            # Degraded pools keep serving without touching processes.
            again = pool.map(_fails_in_worker_process, [4])
            assert again[0][0] == 8
            pool.close()
        respawns = registry.counter(
            "repro_worker_pool_respawns_total").value()
        degrades = registry.counter(
            "repro_worker_pool_degrades_total").value()
        assert respawns == 1.0 and degrades == 1.0
