"""Tests for the online serving subsystem (sessions, scheduler, server)."""

import numpy as np
import pytest

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.datasets import Dataset, EDGE_TASK
from repro.datasets.synthetic import synthetic_knowledge_graph
from repro.serving import (
    MicroBatchScheduler,
    PromptServer,
    SessionState,
    SessionStore,
)
from repro.serving.session import SessionStats


class FakeClock:
    """Manually advanced clock for TTL / max-wait tests."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_session(session_id: str) -> SessionState:
    """Minimal SessionState for store-level tests (no real encodings)."""
    from repro.core import PromptAugmenter

    config = GraphPrompterConfig(hidden_dim=4)
    return SessionState(
        session_id=session_id, num_ways=2, shots=1,
        candidate_emb=np.zeros((2, 4)),
        candidate_importance=np.ones(2),
        pool_labels=np.array([0, 1]),
        augmenter=PromptAugmenter(config, rng=0))


class TestSessionStore:
    def test_put_get_touch_recency(self):
        store = SessionStore(capacity=2)
        store.put(make_session("a"))
        store.put(make_session("b"))
        store.get("a")  # refresh: "b" is now least recently used
        store.put(make_session("c"))
        assert "a" in store and "c" in store and "b" not in store
        assert store.evicted_total == 1

    def test_capacity_lru_eviction_order(self):
        store = SessionStore(capacity=2)
        store.put(make_session("a"))
        store.put(make_session("b"))
        evicted = store.put(make_session("c"))
        assert evicted == ["a"]
        assert store.ids() == ["b", "c"]

    def test_get_unknown_raises(self):
        store = SessionStore(capacity=2)
        with pytest.raises(KeyError):
            store.get("ghost")

    def test_ttl_sweep(self):
        clock = FakeClock()
        store = SessionStore(capacity=4, ttl_seconds=10.0, clock=clock)
        store.put(make_session("old"))
        clock.advance(5)
        store.put(make_session("young"))
        clock.advance(6)  # "old" idle 11s, "young" idle 6s
        assert store.sweep() == ["old"]
        assert "young" in store and "old" not in store
        assert store.expired_total == 1

    def test_activity_refreshes_ttl(self):
        clock = FakeClock()
        store = SessionStore(capacity=4, ttl_seconds=10.0, clock=clock)
        store.put(make_session("a"))
        clock.advance(8)
        store.get("a")  # activity resets the idle timer
        clock.advance(8)
        assert store.sweep() == []

    def test_close(self):
        store = SessionStore(capacity=2)
        store.put(make_session("a"))
        assert store.close("a").session_id == "a"
        assert store.close("a") is None
        assert len(store) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionStore(capacity=0)
        with pytest.raises(ValueError):
            SessionStore(ttl_seconds=0.0)


class TestMicroBatchScheduler:
    def test_releases_at_max_batch_size(self):
        sched = MicroBatchScheduler(max_batch_size=3, max_wait_s=100.0,
                                    clock=FakeClock())
        sched.submit("s", None)
        sched.submit("s", None)
        assert not sched.ready()
        sched.submit("s", None)
        assert sched.ready()

    def test_releases_after_max_wait(self):
        clock = FakeClock()
        sched = MicroBatchScheduler(max_batch_size=8, max_wait_s=0.5,
                                    clock=clock)
        sched.submit("s", None)
        assert not sched.ready()
        clock.advance(0.6)
        assert sched.ready()

    def test_next_batch_arrival_order_and_cap(self):
        sched = MicroBatchScheduler(max_batch_size=2)
        ids = [sched.submit(f"s{i}", None) for i in range(5)]
        first = sched.next_batch()
        assert [r.request_id for r in first] == ids[:2]
        assert [r.request_id for r in sched.next_batch()] == ids[2:4]
        assert len(sched) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatchScheduler(max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(max_wait_s=-1.0)


@pytest.fixture(scope="module")
def served():
    """A briefly pre-trained model + dataset shared by the server tests."""
    graph = synthetic_knowledge_graph(300, 8, 2400, rng=0, name="kg-serve")
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    config = GraphPrompterConfig(hidden_dim=12, max_subgraph_nodes=10,
                                 num_gnn_layers=2)
    model = GraphPrompterModel(dataset.graph.feature_dim,
                               dataset.graph.num_relations, config)
    Pretrainer(model, dataset, PretrainConfig(steps=60, num_ways=4),
               rng=0).train()
    return dataset, config, model


def run_workload(server, episodes, queries_per_session):
    """Open one session per episode, interleave queries, drain."""
    for i, episode in enumerate(episodes):
        server.open_session(f"session-{i}", episode)
    for q in range(queries_per_session):
        for i, episode in enumerate(episodes):
            server.submit(f"session-{i}", episode.queries[q])
    return server.drain()


class TestPromptServer:
    def test_serves_all_queries(self, served):
        dataset, config, model = served
        server = PromptServer(model, dataset, max_batch_size=8, rng=1)
        episodes = [sample_episode(dataset, num_ways=3, num_queries=6, rng=s)
                    for s in (1, 2)]
        results = run_workload(server, episodes, 6)
        assert len(results) == 12
        assert all(r.ok for r in results)
        assert all(0 <= r.prediction < 3 for r in results)
        assert server.stats.queries == 12
        assert server.stats.mean_batch_size > 1.0

    def test_batched_identical_to_unbatched(self, served):
        """Micro-batching must not change any answer (acceptance criterion)."""
        dataset, config, model = served
        episodes = [sample_episode(dataset, num_ways=3, num_queries=8, rng=s)
                    for s in (3, 4, 5)]
        outputs = {}
        for batch_size in (1, 8):
            server = PromptServer(model, dataset, max_batch_size=batch_size,
                                  rng=7)
            outputs[batch_size] = run_workload(server, episodes, 8)
        assert ([(r.session_id, r.prediction) for r in outputs[8]]
                == [(r.session_id, r.prediction) for r in outputs[1]])
        conf8 = np.array([r.confidence for r in outputs[8]])
        conf1 = np.array([r.confidence for r in outputs[1]])
        np.testing.assert_allclose(conf8, conf1, atol=1e-9)

    def test_session_isolation(self, served):
        """One session's pseudo-label cache never leaks into another's."""
        dataset, config, model = served
        server = PromptServer(model, dataset, max_batch_size=4, rng=2)
        episode = sample_episode(dataset, num_ways=3, num_queries=8, rng=9)
        server.open_session("busy", episode)
        server.open_session("idle", episode)
        for query in episode.queries:
            server.submit("busy", query)
        server.drain()
        busy = server.sessions.get("busy")
        idle = server.sessions.get("idle")
        assert busy.augmenter is not idle.augmenter
        assert busy.stats.cache_insertions > 0
        assert len(busy.augmenter) > 0
        assert len(idle.augmenter) == 0
        assert idle.stats.queries == 0

    def test_isolated_sessions_match_solo_run(self, served):
        """A session sharing the server with others answers exactly as if
        it were alone — isolation means no cross-tenant interference."""
        dataset, config, model = served
        episode_a = sample_episode(dataset, num_ways=3, num_queries=8, rng=11)
        episode_b = sample_episode(dataset, num_ways=4, num_queries=8, rng=12)

        solo = PromptServer(model, dataset, max_batch_size=4, rng=3)
        solo.open_session("a", episode_a)
        for query in episode_a.queries:
            solo.submit("a", query)
        solo_preds = [r.prediction for r in solo.drain()]

        shared = PromptServer(model, dataset, max_batch_size=4, rng=3)
        shared.open_session("a", episode_a)
        shared.open_session("b", episode_b)
        tickets = []
        for qa, qb in zip(episode_a.queries, episode_b.queries):
            tickets.append(shared.submit("a", qa))
            shared.submit("b", qb)
        shared.drain()
        shared_preds = [shared.result(t).prediction for t in tickets]
        assert shared_preds == solo_preds

    def test_submit_unknown_session_raises(self, served):
        dataset, config, model = served
        server = PromptServer(model, dataset, rng=0)
        episode = sample_episode(dataset, num_ways=3, num_queries=4, rng=13)
        with pytest.raises(KeyError):
            server.submit("never-opened", episode.queries[0])

    def test_lru_session_eviction(self, served):
        dataset, config, model = served
        server = PromptServer(model, dataset, session_capacity=1, rng=0)
        episode = sample_episode(dataset, num_ways=3, num_queries=4, rng=14)
        server.open_session("first", episode)
        server.open_session("second", episode)
        assert server.stats.sessions_evicted == 1
        with pytest.raises(KeyError):
            server.submit("first", episode.queries[0])
        assert server.submit("second", episode.queries[0]) >= 0

    def test_ttl_expiry_fails_pending_request(self, served):
        """A query whose session expires while queued gets an error result."""
        dataset, config, model = served
        clock = FakeClock()
        server = PromptServer(model, dataset, max_batch_size=8,
                              session_ttl_s=10.0, rng=0, clock=clock)
        episode = sample_episode(dataset, num_ways=3, num_queries=4, rng=15)
        server.open_session("fleeting", episode)
        ticket = server.submit("fleeting", episode.queries[0])
        clock.advance(11.0)
        results = server.drain()
        assert server.stats.sessions_expired == 1
        assert len(results) == 1
        assert results[0].request_id == ticket
        assert not results[0].ok
        assert results[0].error == "session-expired"

    def test_result_lookup_and_ledger(self, served):
        dataset, config, model = served
        server = PromptServer(model, dataset, max_batch_size=2, rng=4)
        episode = sample_episode(dataset, num_ways=3, num_queries=6, rng=16)
        server.open_session("s", episode)
        tickets = [server.submit("s", q) for q in episode.queries]
        assert server.result(tickets[0]) is None  # nothing processed yet
        server.drain()
        for ticket in tickets:
            result = server.result(ticket)
            assert result is not None and result.ok
            assert result.latency_s >= result.service_s >= 0
        state = server.sessions.get("s")
        assert state.stats.queries == 6
        assert state.cache_stats().insertions == state.stats.cache_insertions

    def test_result_buffer_is_bounded(self, served):
        """Old results fall out of the lookup buffer; memory stays flat."""
        dataset, config, model = served
        server = PromptServer(model, dataset, max_batch_size=2,
                              result_buffer_size=3, rng=5)
        episode = sample_episode(dataset, num_ways=3, num_queries=8, rng=19)
        server.open_session("s", episode)
        tickets = [server.submit("s", q) for q in episode.queries]
        server.drain()
        assert len(server._results) == 3
        assert server.result(tickets[0]) is None  # aged out
        assert server.result(tickets[-1]) is not None
        with pytest.raises(ValueError):
            PromptServer(model, dataset, result_buffer_size=0)

    def test_step_respects_release_policy(self, served):
        dataset, config, model = served
        clock = FakeClock()
        server = PromptServer(model, dataset, max_batch_size=4,
                              max_wait_s=5.0, rng=0, clock=clock)
        episode = sample_episode(dataset, num_ways=3, num_queries=4, rng=17)
        server.open_session("s", episode)
        server.submit("s", episode.queries[0])
        assert server.step() == []  # neither full nor waited long enough
        clock.advance(6.0)
        assert len(server.step()) == 1  # max-wait release

    def test_from_pretrained_warm_start(self, served, tmp_path, monkeypatch):
        """Warm-start builds a working server from the artifact cache."""
        import repro.experiments.common as common

        dataset, config, model = served
        monkeypatch.setattr(common, "CACHE_DIR", str(tmp_path))
        from repro.experiments.common import ExperimentContext

        context = ExperimentContext(pretrain_steps=5, use_disk_cache=True)
        server = PromptServer.from_pretrained(
            "wiki", dataset, config=config, context=context,
            max_batch_size=4)
        episode = sample_episode(dataset, num_ways=3, num_queries=4, rng=18)
        server.open_session("warm", episode)
        for query in episode.queries:
            server.submit("warm", query)
        results = server.drain()
        assert len(results) == 4 and all(r.ok for r in results)
        # The artifact now exists on disk: a second context re-loads it.
        again = ExperimentContext(pretrain_steps=5, use_disk_cache=True)
        assert again.pretrained_state("wiki", config) is not None


class TestSessionStats:
    def test_record_accumulates(self):
        stats = SessionStats()
        stats.record(wait_s=0.1, service_s=0.2, inserted=2, now=5.0)
        stats.record(wait_s=0.3, service_s=0.4, inserted=1, now=6.0)
        assert stats.queries == 2
        assert stats.cache_insertions == 3
        assert stats.total_wait_s == pytest.approx(0.4)
        assert stats.total_service_s == pytest.approx(0.6)
        assert stats.last_active == 6.0


# ----------------------------------------------------------------------
# Live graph updates: cache-epoch invalidation
# ----------------------------------------------------------------------
def two_component_setup():
    """A graph of two disconnected halves, one serving session per half.

    Disconnection makes dependency scoping provable: a mutation inside
    one component cannot change any subgraph sampled in the other.
    """
    from repro.graph import Graph

    rng = np.random.default_rng(0)
    half, m = 40, 160
    src = np.concatenate([rng.integers(0, half, m),
                          rng.integers(half, 2 * half, m)])
    dst = np.concatenate([rng.integers(0, half, m),
                          rng.integers(half, 2 * half, m)])
    rel = rng.integers(0, 3, 2 * m)
    graph = Graph(2 * half, src, dst, rel=rel, num_relations=3,
                  node_features=rng.normal(size=(2 * half, 6)),
                  name="two-component")
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    config = GraphPrompterConfig(hidden_dim=8, mutable_graph=True)
    model = GraphPrompterModel(graph.feature_dim, graph.num_relations,
                               config)
    model.eval()
    return graph, dataset, config, model


def component_episode(graph, lo, hi, rng, per_class=4, num_queries=4):
    """A 2-way edge episode whose datapoints all live inside [lo, hi)."""
    from repro.core.episodes import Episode
    from repro.graph import EdgeInput

    ids = np.flatnonzero((graph.src >= lo) & (graph.src < hi))
    candidates, labels, queries, query_labels = [], [], [], []
    for local, relation in enumerate((0, 1)):
        members = [int(e) for e in ids if graph.rel[e] == relation]
        rng.shuffle(members)
        assert len(members) >= per_class + num_queries // 2
        for e in members[:per_class]:
            candidates.append(EdgeInput(int(graph.src[e]),
                                        int(graph.dst[e]),
                                        relation=relation))
            labels.append(local)
        for e in members[per_class:per_class + num_queries // 2]:
            queries.append(EdgeInput(int(graph.src[e]), int(graph.dst[e])))
            query_labels.append(local)
    return Episode(way_classes=np.array([0, 1]),
                   candidates=candidates,
                   candidate_labels=np.array(labels, dtype=np.int64),
                   queries=queries,
                   query_labels=np.array(query_labels, dtype=np.int64))


class TestGraphMutationServing:
    def test_update_requires_mutable_config(self):
        from repro.graph import GraphUpdate

        graph = synthetic_knowledge_graph(80, 3, 400, feature_dim=6, rng=0)
        dataset = Dataset(graph, EDGE_TASK, rng=0)
        config = GraphPrompterConfig(hidden_dim=8)  # mutable_graph off
        model = GraphPrompterModel(graph.feature_dim, graph.num_relations,
                                   config)
        server = PromptServer(model, dataset, rng=0)
        with pytest.raises(RuntimeError, match="mutable_graph"):
            server.update_graph(GraphUpdate(add_src=[0], add_dst=[1]))

    def test_mutated_session_invalidated_untouched_keeps_cache(self):
        from repro.graph import GraphUpdate

        graph, dataset, config, model = two_component_setup()
        server = PromptServer(model, dataset, max_batch_size=4, rng=0)
        rng = np.random.default_rng(1)
        episode_a = component_episode(graph, 0, 40, rng)
        episode_b = component_episode(graph, 40, 80, rng)
        server.open_session("a", episode_a)
        server.open_session("b", episode_b)
        for q in range(4):
            server.submit("a", episode_a.queries[q])
            server.submit("b", episode_b.queries[q])
        server.drain()

        state_a = server.sessions.get("a")
        state_b = server.sessions.get("b")
        assert len(state_a.augmenter) > 0 and len(state_b.augmenter) > 0
        assert state_a.dependent_nodes and state_b.dependent_nodes
        assert max(state_a.dependent_nodes) < 40 <= min(
            state_b.dependent_nodes)
        pool_b = state_b.candidate_emb
        cache_b = state_b.augmenter.stats()

        # Mutate strictly inside component A, on nodes session A depends on.
        touched = sorted(state_a.dependent_nodes)[:2]
        applied = server.update_graph(GraphUpdate(
            add_src=[touched[0]], add_dst=[touched[-1]], add_rel=[2]))
        assert applied.version == graph.version
        assert state_a.stale and not state_b.stale
        assert server.stats.sessions_invalidated == 1
        assert server.stats.graph_version == graph.version

        # Next predictions: A refreshes (pool re-encoded, cache purged —
        # counted as stale evictions), B answers from its intact cache.
        server.submit("a", episode_a.queries[0])
        server.submit("b", episode_b.queries[0])
        server.drain()
        assert not state_a.stale
        assert state_a.graph_version == graph.version
        assert state_a.augmenter.stats().stale_evictions > 0
        assert server.stats.stale_evictions > 0
        assert state_b.candidate_emb is pool_b
        after_b = state_b.augmenter.stats()
        assert after_b.stale_evictions == 0
        assert after_b.insertions >= cache_b.insertions
        assert state_b.graph_version < graph.version  # never re-encoded

    def test_mutated_session_matches_cold_server(self):
        """Post-refresh answers == a cold server's: no pre-mutation cache
        (pool encodings or pseudo-label prompts) survives into them."""
        from repro.graph import GraphUpdate

        graph, dataset, config, model = two_component_setup()
        server = PromptServer(model, dataset, max_batch_size=4, rng=0)
        rng = np.random.default_rng(2)
        episode_a = component_episode(graph, 0, 40, rng)
        server.open_session("a", episode_a)
        for q in range(4):
            server.submit("a", episode_a.queries[q])
        server.drain()
        state_a = server.sessions.get("a")

        touched = sorted(state_a.dependent_nodes)[:2]
        server.update_graph(GraphUpdate(
            add_src=[touched[0], touched[-1]],
            add_dst=[touched[-1], touched[0]], add_rel=[2, 1]))
        assert state_a.stale

        cold_dataset = Dataset(graph.rebuild(), EDGE_TASK, rng=0)
        cold = PromptServer(model, cold_dataset, max_batch_size=4, rng=0)
        cold.open_session("a", episode_a)
        live_preds, cold_preds = [], []
        for q in range(4):
            server.submit("a", episode_a.queries[q])
            cold.submit("a", episode_a.queries[q])
            live_preds.extend(
                (r.prediction, r.confidence) for r in server.drain())
            cold_preds.extend(
                (r.prediction, r.confidence) for r in cold.drain())
        assert live_preds == cold_preds

    def test_version_epoch_monotonic_and_dependencies_grow(self):
        from repro.graph import GraphUpdate

        graph, dataset, config, model = two_component_setup()
        server = PromptServer(model, dataset, max_batch_size=4, rng=0)
        rng = np.random.default_rng(3)
        episode = component_episode(graph, 0, 40, rng)
        state = server.open_session("a", episode)
        deps_after_open = set(state.dependent_nodes)
        server.submit("a", episode.queries[0])
        server.drain()
        # Query subgraph nodes joined the dependency set.
        assert state.dependent_nodes >= deps_after_open
        versions = [graph.version]
        for _ in range(3):
            server.update_graph(GraphUpdate(add_src=[50], add_dst=[51]))
            versions.append(graph.version)
        assert versions == sorted(set(versions))
        assert server.stats.graph_updates == 3
        # Component-B mutations never invalidate the component-A session.
        assert server.stats.sessions_invalidated == 0

    def test_sharded_mutating_server_matches_monolithic(self):
        """Updates routed through the shard layer change nothing: the
        K-shard mutable server predicts exactly like the monolithic one
        before and after the same update batch."""
        from repro.graph import GraphUpdate

        config = GraphPrompterConfig(hidden_dim=8, mutable_graph=True)
        graph = synthetic_knowledge_graph(150, 3, 900, feature_dim=6, rng=0)
        model = GraphPrompterModel(graph.feature_dim, graph.num_relations,
                                   config)
        model.eval()
        base_dataset = Dataset(graph, EDGE_TASK, rng=0)
        episodes = [sample_episode(base_dataset, num_ways=3, num_queries=4,
                                   rng=50 + i) for i in range(2)]
        rng = np.random.default_rng(4)
        update = GraphUpdate(
            add_src=rng.integers(0, graph.num_nodes, 12),
            add_dst=rng.integers(0, graph.num_nodes, 12),
            add_rel=rng.integers(0, graph.num_relations, 12),
            remove_edges=rng.choice(graph.num_edges, 8, replace=False))

        outputs = {}
        for num_shards in (1, 2):
            dataset = Dataset(graph.rebuild(), EDGE_TASK, rng=0)
            server = PromptServer(model, dataset, max_batch_size=4, rng=0,
                                  num_shards=num_shards,
                                  num_workers=num_shards,
                                  worker_backend="serial")
            results = []
            for i, episode in enumerate(episodes):
                server.open_session(f"s{i}", episode)
            for q in range(2):
                for i, episode in enumerate(episodes):
                    server.submit(f"s{i}", episode.queries[q])
            results.extend(server.drain())
            server.update_graph(update)
            for q in range(2, 4):
                for i, episode in enumerate(episodes):
                    server.submit(f"s{i}", episode.queries[q])
            results.extend(server.drain())
            outputs[num_shards] = [(r.session_id, r.prediction)
                                   for r in results]
            server.close()
        assert outputs[2] == outputs[1]
