"""Tests for the LRU/FIFO cache policies and their Augmenter integration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CACHE_POLICIES, FIFOCache, LFUCache, LRUCache, make_cache
from repro.core import GraphPrompterConfig, PromptAugmenter


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_cache("lfu", 2), LFUCache)
        assert isinstance(make_cache("lru", 2), LRUCache)
        assert isinstance(make_cache("fifo", 2), FIFOCache)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_cache("arc", 2)

    def test_registry_complete(self):
        assert set(CACHE_POLICIES) == {"lfu", "lru", "fifo"}


class TestLRU:
    def test_evicts_least_recent(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")               # refresh a
        assert cache.put("c", 3) == "b"
        assert "a" in cache and "c" in cache

    def test_touch_refreshes(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.touch("a")
        assert cache.put("c", 3) == "b"

    def test_touch_missing(self):
        assert not LRUCache(2).touch("ghost")

    def test_put_existing_refreshes(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.put("c", 3) == "b"
        assert cache.peek("a") == 10

    def test_items_lru_order(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key)
        cache.get("a")
        assert [k for k, _ in cache.items()] == ["b", "c", "a"]

    def test_frequency_tracking(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.frequency("a") == 1
        cache.get("a")
        assert cache.frequency("a") == 2
        assert cache.frequency("nope") == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_clear(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0


class TestFIFO:
    def test_evicts_oldest_regardless_of_hits(self):
        cache = FIFOCache(2)
        cache.put("old", 1)
        cache.put("new", 2)
        for _ in range(5):
            cache.get("old")
            cache.touch("old")
        assert cache.put("c", 3) == "old"  # hits do not protect FIFO entries

    def test_update_keeps_slot(self):
        cache = FIFOCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)           # update, stays oldest
        assert cache.put("c", 3) == "a"

    def test_items_insertion_order(self):
        cache = FIFOCache(3)
        for key in "abc":
            cache.put(key, key)
        cache.get("a")
        assert [k for k, _ in cache.items()] == ["a", "b", "c"]

    def test_frequency_and_clear(self):
        cache = FIFOCache(2)
        cache.put("a", 1)
        cache.get("a")
        assert cache.frequency("a") == 2
        cache.clear()
        assert cache.frequency("a") == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FIFOCache(0)


class TestAugmenterPolicies:
    @pytest.mark.parametrize("policy", ["lfu", "lru", "fifo"])
    def test_augmenter_works_with_policy(self, policy):
        cfg = GraphPrompterConfig(cache_size=2, cache_policy=policy)
        aug = PromptAugmenter(cfg, rng=0)
        for i in range(4):
            aug.update(np.array([[float(i), 1.0]]), np.array([i]),
                       np.array([0.5]))
        assert len(aug) == 2
        emb, labels = aug.cached_prompts()
        assert emb.shape == (2, 2)
        assert aug.record_hits(np.array([[3.0, 1.0]]), top_k=1) == 1

    def test_invalid_policy_rejected_by_config(self):
        with pytest.raises(ValueError):
            GraphPrompterConfig(cache_policy="arc").validate()


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=6),
    keys=st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                  max_size=40),
)
def test_property_fifo_matches_queue_model(capacity, keys):
    """FIFO matches a simple queue model (re-puts keep their slot)."""
    cache = FIFOCache(capacity)
    queue: list[int] = []
    for key in keys:
        cache.put(key, key)
        if key in queue:
            continue  # update in place, insertion slot unchanged
        if len(queue) >= capacity:
            queue.pop(0)
        queue.append(key)
    assert list(cache.keys()) == queue


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=5),
    ops=st.lists(st.tuples(st.booleans(),
                           st.integers(min_value=0, max_value=8)),
                 min_size=1, max_size=40),
)
def test_property_lru_matches_ordereddict_model(capacity, ops):
    """LRU behaviour matches a reference OrderedDict simulation."""
    from collections import OrderedDict

    cache = LRUCache(capacity)
    ref: OrderedDict = OrderedDict()
    for is_put, key in ops:
        if is_put:
            if key in ref:
                ref.move_to_end(key)
            elif len(ref) >= capacity:
                ref.popitem(last=False)
            ref[key] = key
            cache.put(key, key)
        else:
            if key in ref:
                ref.move_to_end(key)
            cache.get(key)
    assert list(cache.keys()) == list(ref.keys())
