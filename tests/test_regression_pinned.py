"""Pinned end-to-end regression guard.

A tiny, fully-seeded pre-train → evaluate run whose outcome must stay in a
narrow corridor.  If a refactor silently changes model behaviour (autograd
semantics, sampler distributions, selector logic), this trips before the
expensive benchmarks do.
"""

import numpy as np
import pytest

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    GraphPrompterPipeline,
    PretrainConfig,
    Pretrainer,
    prodigy_config,
    sample_episode,
)
from repro.datasets import Dataset, EDGE_TASK
from repro.datasets.synthetic import synthetic_knowledge_graph


@pytest.fixture(scope="module")
def setup():
    # In-domain pin: evaluation episodes use the *test split* of the
    # pre-training graph.  Cross-domain behaviour is covered by the
    # benchmarks; a pin needs a stable, high-signal corridor.
    source = Dataset(
        synthetic_knowledge_graph(400, 10, 3200, feature_noise=0.45,
                                  rng=11, name="pin-src"),
        EDGE_TASK, rng=0)
    target = source
    config = GraphPrompterConfig(hidden_dim=16, max_subgraph_nodes=12)
    model = GraphPrompterModel(source.graph.feature_dim,
                               source.graph.num_relations, config)
    history = Pretrainer(model, source,
                         PretrainConfig(steps=120, num_ways=5),
                         rng=0).train()
    return source, target, config, model, history


def _evaluate(target, config, state, runs=4):
    accs = []
    for seed in range(runs):
        model = GraphPrompterModel(target.graph.feature_dim,
                                   target.graph.num_relations, config)
        model.load_state_dict(state)
        episode = sample_episode(target, num_ways=5, num_queries=30,
                                 rng=500 + seed)
        result = GraphPrompterPipeline(model, target,
                                       rng=600 + seed).run_episode(episode)
        accs.append(result.accuracy)
    return float(np.mean(accs))


def test_pretraining_reaches_expected_loss_range(setup):
    *_, history = setup
    # Converged tiny model: loss well below the ~ln(5)x2 starting point but
    # not degenerate.
    assert history.final_loss < 3.2
    assert history.final_loss > 0.3


def test_transfer_accuracy_corridor(setup):
    source, target, config, model, _ = setup
    accuracy = _evaluate(target, config, model.state_dict())
    # Untrained chance level is 0.2; a healthy build lands comfortably
    # above it on this easy 5-way transfer.
    assert accuracy > 0.35, f"cross-domain accuracy regressed: {accuracy}"


def test_full_beats_prodigy_on_average(setup):
    source, target, config, model, _ = setup
    state = model.state_dict()
    ours = _evaluate(target, config, state, runs=6)
    prodigy = _evaluate(target, prodigy_config(config), state, runs=6)
    # The headline ordering with a tolerance for tiny-run noise.
    assert ours > prodigy - 0.05, (ours, prodigy)
