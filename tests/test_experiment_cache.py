"""Tests for the experiment artifact disk cache."""

import os

import numpy as np
import pytest

import repro.experiments.common as common
from repro.experiments import ExperimentContext, default_config


@pytest.fixture
def tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setattr(common, "CACHE_DIR", str(tmp_path / "artifacts"))
    return str(tmp_path / "artifacts")


class TestHashKey:
    def test_stable(self):
        assert common._hash_key("a", 1) == common._hash_key("a", 1)

    def test_distinct_inputs_distinct_keys(self):
        assert common._hash_key("a", 1) != common._hash_key("a", 2)

    def test_config_changes_key(self):
        a = common._hash_key("gp", "wiki", default_config(), 60, 0)
        b = common._hash_key("gp", "wiki", default_config(cache_size=5),
                             60, 0)
        assert a != b


class TestDiskCache:
    def test_pretrain_writes_artifact(self, tmp_cache):
        ctx = ExperimentContext(fast=True, use_disk_cache=True)
        ctx.pretrained_state("conceptnet")
        files = os.listdir(tmp_cache)
        assert len(files) == 1 and files[0].endswith(".npz")

    def test_second_context_loads_without_retraining(self, tmp_cache):
        first = ExperimentContext(fast=True, use_disk_cache=True)
        state = first.pretrained_state("conceptnet")

        second = ExperimentContext(fast=True, use_disk_cache=True)
        loaded = second.pretrained_state("conceptnet")
        # Loaded from disk: no training history was produced.
        assert not second._histories
        for key in state:
            np.testing.assert_allclose(state[key], loaded[key])

    def test_disk_cache_disabled_writes_nothing(self, tmp_cache):
        ctx = ExperimentContext(fast=True, use_disk_cache=False)
        ctx.pretrained_state("conceptnet")
        assert not os.path.exists(tmp_cache)

    def test_history_retrains_when_only_state_cached(self, tmp_cache):
        warm = ExperimentContext(fast=True, use_disk_cache=True)
        warm.pretrained_state("conceptnet")

        fresh = ExperimentContext(fast=True, use_disk_cache=True)
        history = fresh.pretraining_history("conceptnet")
        assert len(history.losses) >= 1
