"""Tests for the seeded workload generator (determinism contracts)."""

import numpy as np
import pytest

from repro.workload import (
    PRIORITY_CLASSES,
    DiurnalArrivals,
    FlashCrowdQueries,
    MarkovModulatedArrivals,
    PoissonArrivals,
    TenantSpec,
    UniformQueries,
    WorkloadGenerator,
    WorkloadTrace,
    ZipfQueries,
    ZipfTenants,
    generate_trace,
)

TENANTS = ZipfTenants((
    TenantSpec("acme", "interactive", 2),
    TenantSpec("globex", "batch", 2),
    TenantSpec("initech", "background", 1),
), skew=1.0)

ARRIVALS = [
    PoissonArrivals(rate_qps=30.0),
    MarkovModulatedArrivals(base_qps=10.0, burst_qps=150.0,
                            p_enter=0.1, p_exit=0.1),
    DiurnalArrivals(base_qps=25.0, amplitude=0.5, period_s=3.0),
]

QUERIES = [
    UniformQueries(),
    ZipfQueries(skew=1.2),
    FlashCrowdQueries(base=ZipfQueries(skew=1.0), window=(0.5, 1.5),
                      hot_query=0, hot_weight=0.9),
]


def make_trace(arrivals, queries, seed, n=60):
    return generate_trace(arrivals, TENANTS, queries=queries,
                          num_queries=8, seed=seed, num_events=n)


# ----------------------------------------------------------------------
# Determinism: the issue's satellite contract.
# ----------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("arrivals", ARRIVALS,
                             ids=lambda a: type(a).__name__)
    @pytest.mark.parametrize("queries", QUERIES,
                             ids=lambda q: type(q).__name__)
    def test_same_seed_byte_identical_across_runs(self, arrivals, queries):
        a = make_trace(arrivals, queries, seed=7)
        b = make_trace(arrivals, queries, seed=7)
        assert a.to_jsonl() == b.to_jsonl()
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("arrivals", ARRIVALS,
                             ids=lambda a: type(a).__name__)
    def test_chunked_equals_one_shot(self, arrivals):
        one_shot = make_trace(arrivals, QUERIES[2], seed=3, n=60)
        generator = WorkloadGenerator(arrivals, TENANTS,
                                      queries=QUERIES[2], num_queries=8,
                                      seed=3)
        chunks = ()
        for size in (1, 7, 13, 25, 14):
            chunks += generator.take(size)
        assert WorkloadTrace(chunks).to_jsonl() == one_shot.to_jsonl()

    def test_distinct_seeds_distinct_traces(self):
        a = make_trace(ARRIVALS[0], QUERIES[0], seed=0)
        b = make_trace(ARRIVALS[0], QUERIES[0], seed=1)
        assert a.fingerprint() != b.fingerprint()

    def test_generator_tracks_generated_count(self):
        generator = WorkloadGenerator(ARRIVALS[0], TENANTS, seed=0)
        generator.take(5)
        generator.take(3)
        assert generator.generated == 8


# ----------------------------------------------------------------------
# Event/trace semantics.
# ----------------------------------------------------------------------
class TestTrace:
    def test_events_well_formed(self):
        trace = make_trace(ARRIVALS[1], QUERIES[1], seed=11)
        last = 0.0
        for event in trace:
            assert event.arrival_s > last
            last = event.arrival_s
            assert event.priority in PRIORITY_CLASSES
            assert 0 <= event.query < 8
            assert event.session.startswith(event.tenant + "/")
        assert trace.duration_s == last

    def test_sessions_unique_in_first_arrival_order(self):
        trace = make_trace(ARRIVALS[0], QUERIES[0], seed=5)
        plan = trace.sessions()
        assert len({session for _, _, session in plan}) == len(plan)
        first_seen = []
        seen = set()
        for event in trace:
            if event.session not in seen:
                seen.add(event.session)
                first_seen.append(event.session)
        assert [session for _, _, session in plan] == first_seen

    def test_ticks_partition_the_trace_in_order(self):
        trace = make_trace(ARRIVALS[1], QUERIES[0], seed=9)
        rebuilt = []
        previous = -1
        for tick, events in trace.ticks(0.25):
            assert tick > previous
            previous = tick
            assert events
            for event in events:
                assert int(event.arrival_s / 0.25) == tick
            rebuilt.extend(events)
        assert tuple(rebuilt) == trace.events

    def test_fingerprint_sensitive_to_any_event(self):
        trace = make_trace(ARRIVALS[0], QUERIES[0], seed=2, n=10)
        mutated = WorkloadTrace(trace.events[:-1])
        assert mutated.fingerprint() != trace.fingerprint()


# ----------------------------------------------------------------------
# Model smoke (shape, not statistics).
# ----------------------------------------------------------------------
class TestModels:
    def test_zipf_concentrates_on_first_ranks(self):
        rng = np.random.default_rng(0)
        skewed = ZipfQueries(skew=2.0)
        draws = [skewed.sample(rng, 0.0, 8) for _ in range(400)]
        counts = np.bincount(draws, minlength=8)
        assert counts[0] > counts[-1]
        assert counts[0] == max(counts)

    def test_flash_crowd_hot_inside_window_only(self):
        model = FlashCrowdQueries(base=UniformQueries(),
                                  window=(10.0, 20.0), hot_query=3,
                                  hot_weight=1.0)
        rng = np.random.default_rng(0)
        inside = [model.sample(rng, 15.0, 8) for _ in range(50)]
        assert set(inside) == {3}
        outside = [model.sample(rng, 5.0, 8) for _ in range(200)]
        assert len(set(outside)) > 1

    def test_tenant_mix_respects_declared_sessions(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            spec, session = TENANTS.sample(rng)
            assert session.split("/s")[0] == spec.tenant
            assert int(session.split("/s")[1]) < spec.sessions

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate_qps=0.0)
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(base_qps=1.0, burst_qps=10.0,
                                    p_enter=0.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(base_qps=5.0, amplitude=1.0)
        with pytest.raises(ValueError):
            TenantSpec("x", "urgent")
        with pytest.raises(ValueError):
            ZipfTenants((TenantSpec("a", "batch"),
                         TenantSpec("a", "batch")))
        with pytest.raises(ValueError):
            FlashCrowdQueries(base=UniformQueries(), window=(2.0, 1.0))
        with pytest.raises(ValueError):
            WorkloadGenerator(ARRIVALS[0], TENANTS, num_queries=0)
        with pytest.raises(ValueError):
            list(make_trace(ARRIVALS[0], QUERIES[0], seed=0).ticks(0.0))
