"""Tests for t-SNE, embedding-quality metrics and ascii rendering."""

import numpy as np
import pytest

from repro.viz import (
    format_table,
    intra_inter_ratio,
    render_series,
    silhouette_score,
    tsne,
)


def two_blobs(n_per=20, sep=10.0, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n_per, dim))
    b = rng.normal(size=(n_per, dim)) + sep
    x = np.vstack([a, b])
    labels = np.array([0] * n_per + [1] * n_per)
    return x, labels


class TestTSNE:
    def test_output_shape(self):
        x, _ = two_blobs()
        y = tsne(x, num_dims=2, iterations=60, rng=0)
        assert y.shape == (40, 2)

    def test_separated_blobs_stay_separated(self):
        x, labels = two_blobs(sep=25.0)
        y = tsne(x, iterations=150, rng=0)
        # After embedding, the blobs should still be linearly separated:
        # intra/inter ratio well below 1.
        assert intra_inter_ratio(y, labels) < 0.8

    def test_centered_output(self):
        x, _ = two_blobs()
        y = tsne(x, iterations=50, rng=1)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-8)

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((2, 3)))

    def test_deterministic_given_seed(self):
        x, _ = two_blobs(n_per=8)
        a = tsne(x, iterations=30, rng=7)
        b = tsne(x, iterations=30, rng=7)
        np.testing.assert_allclose(a, b)


class TestEmbeddingQuality:
    def test_ratio_lower_for_tighter_clusters(self):
        x_tight, labels = two_blobs(sep=20.0, seed=2)
        x_loose, _ = two_blobs(sep=2.0, seed=2)
        assert intra_inter_ratio(x_tight, labels) < intra_inter_ratio(
            x_loose, labels)

    def test_ratio_validates(self):
        with pytest.raises(ValueError):
            intra_inter_ratio(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            intra_inter_ratio(np.zeros((3, 2)), np.zeros(3))  # one class

    def test_silhouette_range_and_ordering(self):
        x_good, labels = two_blobs(sep=20.0, seed=3)
        x_bad, _ = two_blobs(sep=0.5, seed=3)
        s_good = silhouette_score(x_good, labels)
        s_bad = silhouette_score(x_bad, labels)
        assert -1.0 <= s_bad <= s_good <= 1.0
        assert s_good > 0.5

    def test_silhouette_validates_classes(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((4, 2)), np.zeros(4))


class TestRenderSeries:
    def test_contains_markers_and_legend(self):
        out = render_series([1, 2, 3], {"prodigy": [0.5, 0.6, 0.4],
                                        "ours": [0.6, 0.7, 0.65]})
        assert "o prodigy" in out
        assert "x ours" in out
        assert "┤" in out

    def test_title_included(self):
        out = render_series([0, 1], {"a": [1.0, 2.0]}, title="Fig X")
        assert out.splitlines()[0] == "Fig X"

    def test_flat_series_no_crash(self):
        out = render_series([0, 1], {"flat": [1.0, 1.0]})
        assert "flat" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series([0, 1], {"a": [1.0]})

    def test_empty_series(self):
        with pytest.raises(ValueError):
            render_series([0, 1], {})


class TestFormatTable:
    def test_basic_table(self):
        out = format_table(["ways", "acc"], [[5, 0.78], [10, 0.65]],
                           title="Table X")
        lines = out.splitlines()
        assert lines[0] == "Table X"
        assert "ways" in lines[1]
        assert "0.78" in out

    def test_alignment(self):
        out = format_table(["m"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        assert len(lines[1]) == len(lines[2])  # separator matches header

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [])
