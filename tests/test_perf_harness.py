"""Tests for the perf-regression harness (``src/repro/perf``)."""

import json

import pytest

from repro.cli import main as cli_main
from repro.perf import (PROFILES, baseline_profile_section, check_regression,
                        run_benchmarks, time_callable)

EXPECTED_BENCHMARKS = {
    "sampling_bfs", "sampling_random_walk", "batching_arena",
    "encoding_nograd", "encoding_fast", "pool_bytes_per_session",
    "serving_microbatch",
}


@pytest.fixture(scope="module")
def smoke_results():
    return run_benchmarks("smoke")


class TestMicrobench:
    def test_time_callable_measures_positive_time(self):
        m = time_callable(lambda: sum(range(100)), min_runtime_s=0.001)
        assert m.per_call_s > 0
        assert m.inner_loops >= 1
        assert m.per_call_us == pytest.approx(m.per_call_s * 1e6)

    def test_inner_loop_calibration_scales_with_cheap_calls(self):
        cheap = time_callable(lambda: None, min_runtime_s=0.005)
        assert cheap.inner_loops > 1

    def test_inner_cap_still_times_at_the_capped_count(self):
        """When calibration hits max_inner, per_call_s must come from a
        block measured at that count, not a stale smaller one."""
        m = time_callable(lambda: None, min_runtime_s=10.0, repeats=1,
                          max_inner=64)
        assert m.inner_loops == 64
        # A no-op costs well under a microsecond but strictly more than
        # zero; a stale elapsed/inner mismatch shows up as a gross
        # under-estimate of 0 or an over-estimate from inner=1.
        assert 0 < m.per_call_s < 1e-4

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestRunBenchmarks:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            run_benchmarks("warp")

    def test_smoke_profile_produces_all_benchmarks(self, smoke_results):
        assert smoke_results["profile"] == "smoke"
        assert set(smoke_results["benchmarks"]) == EXPECTED_BENCHMARKS
        for name, cells in smoke_results["benchmarks"].items():
            assert cells["speedup"] > 0, name

    def test_results_are_json_serialisable(self, smoke_results):
        parsed = json.loads(json.dumps(smoke_results))
        assert set(parsed["benchmarks"]) == EXPECTED_BENCHMARKS

    def test_profiles_cover_expected_scales(self):
        assert set(PROFILES) == {"full", "quick", "smoke", "shard",
                                 "mutate", "gateway"}
        assert (PROFILES["full"]["sample_edges"]
                > PROFILES["quick"]["sample_edges"]
                > PROFILES["smoke"]["sample_edges"])


class TestCheckRegression:
    def _results(self, speedups):
        return {"benchmarks": {name: {"speedup": value}
                               for name, value in speedups.items()}}

    def test_no_failures_when_at_baseline(self):
        base = self._results({"a": 3.0, "b": 2.0})
        assert check_regression(base, base) == []

    def test_within_tolerance_passes(self):
        current = self._results({"a": 2.1})
        baseline = self._results({"a": 3.0})
        assert check_regression(current, baseline, tolerance=1.5) == []

    def test_environment_mismatch_is_skipped(self):
        # A ratio measured under a different backend/core count (e.g. the
        # process pool on an 8-core runner vs. the serial fallback on the
        # 1-core box that recorded the baseline) describes a different
        # experiment — never compared, in either direction.
        current = {"benchmarks": {"shard_parallel_qps": {
            "speedup": 0.2, "backend": "process", "cores": 8}}}
        baseline = {"benchmarks": {"shard_parallel_qps": {
            "speedup": 1.0, "backend": "serial", "cores": 1}}}
        assert check_regression(current, baseline) == []
        matched = {"benchmarks": {"shard_parallel_qps": {
            "speedup": 0.2, "backend": "serial", "cores": 1}}}
        assert len(check_regression(matched, baseline)) == 1

    def test_environment_skip_is_reported_explicitly(self):
        # The skip must not be silent: callers passing a ``skipped`` list
        # get one message naming the benchmark and the diverging keys.
        current = {"benchmarks": {"shard_parallel_qps": {
            "speedup": 0.2, "backend": "process", "cores": 8}}}
        baseline = {"benchmarks": {"shard_parallel_qps": {
            "speedup": 1.0, "backend": "serial", "cores": 1}}}
        skipped: list[str] = []
        assert check_regression(current, baseline, skipped=skipped) == []
        assert len(skipped) == 1
        assert "shard_parallel_qps" in skipped[0]
        assert "environment-skipped" in skipped[0]
        assert "backend" in skipped[0] and "cores" in skipped[0]
        assert "'process'" in skipped[0] and "'serial'" in skipped[0]
        # No mismatch -> nothing reported.
        skipped.clear()
        check_regression(baseline, baseline, skipped=skipped)
        assert skipped == []

    def test_regression_detected(self):
        current = self._results({"a": 1.0})
        baseline = self._results({"a": 3.0})
        failures = check_regression(current, baseline, tolerance=1.5)
        assert len(failures) == 1
        assert "a" in failures[0]

    def test_unknown_benchmarks_ignored(self):
        current = self._results({"new_one": 0.1})
        baseline = self._results({"other": 5.0})
        assert check_regression(current, baseline) == []

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            check_regression(self._results({}), self._results({}),
                             tolerance=0.5)

    def test_baseline_profile_section_schemas(self):
        multi = {"schema": 2, "profiles": {"quick": {"benchmarks": {}}}}
        assert baseline_profile_section(multi, "quick") == {"benchmarks": {}}
        assert baseline_profile_section(multi, "full") is None
        flat = {"schema": 1, "profile": "quick", "benchmarks": {}}
        assert baseline_profile_section(flat, "quick") is flat
        assert baseline_profile_section(flat, "full") is None


class TestBenchCLI:
    def test_bench_writes_json_and_checks_baseline(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert cli_main(["bench", "--profile", "smoke",
                         "--output", str(out)]) == 0
        written = json.loads(out.read_text())
        assert set(written["profiles"]) == {"smoke"}
        assert (set(written["profiles"]["smoke"]["benchmarks"])
                == EXPECTED_BENCHMARKS)
        # Re-run against itself as baseline: identical machine, fresh
        # measurement — must pass the tolerance check.
        assert cli_main(["bench", "--profile", "smoke", "--no-write",
                         "--baseline", str(out),
                         "--tolerance", "4.0"]) == 0

    def test_bench_fails_on_regression(self, tmp_path, capsys):
        baseline = {"schema": 2, "profiles": {"smoke": {"benchmarks": {
            "sampling_bfs": {"speedup": 1e9}}}}}
        path = tmp_path / "impossible.json"
        path.write_text(json.dumps(baseline))
        code = cli_main(["bench", "--profile", "smoke", "--no-write",
                         "--baseline", str(path)])
        assert code == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_bench_fails_when_baseline_lacks_profile(self, tmp_path, capsys):
        path = tmp_path / "other-profile.json"
        path.write_text(json.dumps(
            {"schema": 2, "profiles": {"full": {"benchmarks": {}}}}))
        code = cli_main(["bench", "--profile", "smoke", "--no-write",
                         "--baseline", str(path)])
        assert code == 1
        assert "no section" in capsys.readouterr().err

    def test_bench_never_overwrites_its_own_baseline(self, tmp_path, capsys):
        """output == baseline must not clobber the baseline (which would
        also turn the check into a self-comparison)."""
        baseline = {"schema": 2, "profiles": {"smoke": {"benchmarks": {
            "sampling_bfs": {"speedup": 1e9}}}}}
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        code = cli_main(["bench", "--profile", "smoke",
                         "--output", str(path), "--baseline", str(path)])
        assert code == 1  # impossible baseline still detected...
        assert json.loads(path.read_text()) == baseline  # ...and kept

    def test_bench_floor_gate(self, tmp_path, capsys):
        # A floor far below any plausible measurement passes and says so.
        assert cli_main(["bench", "--profile", "smoke", "--no-write",
                         "--floor", "sampling_bfs=0.0001"]) == 0
        assert "floor" in capsys.readouterr().out
        # An impossible floor fails, naming the benchmark — unlike
        # --baseline, the gate cannot drift when baselines regenerate.
        assert cli_main(["bench", "--profile", "smoke", "--no-write",
                         "--floor", "sampling_bfs=1e9"]) == 1
        err = capsys.readouterr().err
        assert "PERF FLOOR" in err and "sampling_bfs" in err

    def test_bench_floor_rejects_bad_specs(self, capsys):
        # Malformed spec: usage error before any benchmark runs.
        assert cli_main(["bench", "--profile", "smoke", "--no-write",
                         "--floor", "sampling_bfs"]) == 2
        assert "NAME=VALUE" in capsys.readouterr().err
        assert cli_main(["bench", "--profile", "smoke", "--no-write",
                         "--floor", "sampling_bfs=fast"]) == 2
        assert "NAME=VALUE" in capsys.readouterr().err
        # A floor naming a benchmark that never ran is a failure, not a
        # silently green gate.
        assert cli_main(["bench", "--profile", "smoke", "--no-write",
                         "--floor", "no_such_bench=0.5"]) == 1
        assert "no such benchmark" in capsys.readouterr().err

    def test_bench_listed_in_cli_help(self, capsys):
        assert cli_main(["list"]) == 0
        assert "bench" in capsys.readouterr().out
