"""Gradient-correctness and semantics tests for the autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, no_grad
from repro.nn.tensor import _unbroadcast


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(op, shapes, seed=0, tol=1e-5):
    """Compare autograd gradients of ``op(*tensors).sum()`` to finite diffs."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=s) * 0.5 + 0.1 for s in shapes]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = op(*tensors)
    loss = out.sum()
    loss.backward()
    for idx, (arr, tensor) in enumerate(zip(arrays, tensors)):
        def scalar_fn(x, idx=idx):
            inputs = [a.copy() for a in arrays]
            inputs[idx] = x
            with no_grad():
                return op(*[Tensor(v) for v in inputs]).sum().item()

        expected = numeric_grad(scalar_fn, arr.copy())
        assert tensor.grad is not None, f"input {idx} missing grad"
        np.testing.assert_allclose(tensor.grad, expected, rtol=tol, atol=tol)


class TestElementwiseGrads:
    def test_add(self):
        check_grad(lambda a, b: a + b, [(3, 4), (3, 4)])

    def test_add_broadcast(self):
        check_grad(lambda a, b: a + b, [(3, 4), (4,)])

    def test_add_broadcast_row(self):
        check_grad(lambda a, b: a + b, [(3, 1), (1, 4)])

    def test_mul(self):
        check_grad(lambda a, b: a * b, [(2, 5), (2, 5)])

    def test_mul_broadcast(self):
        check_grad(lambda a, b: a * b, [(2, 5), (5,)])

    def test_sub(self):
        check_grad(lambda a, b: a - b, [(4,), (4,)])

    def test_div(self):
        check_grad(lambda a, b: a / (b + 2.0), [(3, 3), (3, 3)])

    def test_pow(self):
        check_grad(lambda a: (a + 2.0) ** 3, [(4, 2)])

    def test_neg(self):
        check_grad(lambda a: -a, [(5,)])

    def test_exp(self):
        check_grad(lambda a: a.exp(), [(3, 2)])

    def test_log(self):
        check_grad(lambda a: (a + 3.0).log(), [(3, 2)])

    def test_sigmoid(self):
        check_grad(lambda a: a.sigmoid(), [(4, 4)])

    def test_tanh(self):
        check_grad(lambda a: a.tanh(), [(4, 4)])

    def test_relu(self):
        check_grad(lambda a: (a + 0.05).relu(), [(6,)])

    def test_leaky_relu(self):
        check_grad(lambda a: (a + 0.05).leaky_relu(0.1), [(6,)])

    def test_abs(self):
        check_grad(lambda a: (a + 0.3).abs(), [(5,)])

    def test_sqrt(self):
        check_grad(lambda a: (a + 2.0).sqrt(), [(3, 3)])

    def test_clip_interior(self):
        check_grad(lambda a: a.clip(-10.0, 10.0), [(4,)])


class TestMatmulGrads:
    def test_matmul_2d(self):
        check_grad(lambda a, b: a @ b, [(3, 4), (4, 5)])

    def test_matmul_vec_right(self):
        check_grad(lambda a, b: a @ b, [(3, 4), (4,)])

    def test_matmul_vec_left(self):
        check_grad(lambda a, b: a @ b, [(4,), (4, 3)])

    def test_chained_matmul(self):
        check_grad(lambda a, b, c: (a @ b) @ c, [(2, 3), (3, 4), (4, 2)])


class TestReductionGrads:
    def test_sum_all(self):
        check_grad(lambda a: a.sum(), [(3, 4)])

    def test_sum_axis0(self):
        check_grad(lambda a: a.sum(axis=0), [(3, 4)])

    def test_sum_axis1_keepdims(self):
        check_grad(lambda a: a.sum(axis=1, keepdims=True), [(3, 4)])

    def test_mean(self):
        check_grad(lambda a: a.mean(axis=1), [(3, 4)])

    def test_max(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=(3, 5))
        t = Tensor(a, requires_grad=True)
        t.max(axis=1).sum().backward()
        # Gradient flows only to row maxima.
        expected = np.zeros_like(a)
        expected[np.arange(3), a.argmax(axis=1)] = 1.0
        np.testing.assert_allclose(t.grad, expected)


class TestShapeGrads:
    def test_reshape(self):
        check_grad(lambda a: (a.reshape(6, 2) @ np.ones((2, 3))).sum(axis=0),
                   [(3, 4)])

    def test_transpose(self):
        check_grad(lambda a: a.transpose() * 2.0, [(3, 4)])

    def test_getitem_rows(self):
        check_grad(lambda a: a[np.array([0, 0, 2])], [(3, 4)])

    def test_gather_rows(self):
        check_grad(lambda a: a.gather_rows(np.array([1, 1, 0, 2])), [(3, 4)])

    def test_scatter_add(self):
        check_grad(lambda a: a.scatter_add(np.array([0, 1, 0, 2, 1]), 3),
                   [(5, 4)])

    def test_concatenate(self):
        check_grad(lambda a, b: Tensor.concatenate([a, b], axis=1),
                   [(2, 3), (2, 2)])

    def test_stack(self):
        check_grad(lambda a, b: Tensor.stack([a, b], axis=0), [(2, 3), (2, 3)])


class TestSemantics:
    def test_requires_grad_propagates(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 2)))
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_no_grad_blocks_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_backward_scalar_only(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_without_grad_flag(self):
        a = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_grad_accumulates_across_backwards(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a.sum() * 1.0).backward()
        (a.sum() * 1.0).backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones(3))

    def test_detach_cuts_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = (a.detach() * 3.0).sum()
        assert not out.requires_grad

    def test_shared_node_grad(self):
        # y = x*x + x should give dy/dx = 2x + 1.
        x = Tensor(np.array([2.0, -1.0]), requires_grad=True)
        y = (x * x + x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, 2 * x.data + 1)

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        y = (a * b).sum()  # y = 2x(x+1) => dy/dx = 4x + 2
        y.backward()
        np.testing.assert_allclose(x.grad, [4 * 3.0 + 2.0])

    def test_item_and_len(self):
        t = Tensor([[1.0, 2.0]])
        assert len(t) == 1
        assert Tensor([5.0]).item() == 5.0

    def test_repr(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert _unbroadcast(g, (3, 4)) is g

    def test_leading_axis(self):
        g = np.ones((5, 3, 4))
        np.testing.assert_allclose(_unbroadcast(g, (3, 4)), 5 * np.ones((3, 4)))

    def test_keepdim_axis(self):
        g = np.ones((3, 4))
        np.testing.assert_allclose(_unbroadcast(g, (3, 1)), 4 * np.ones((3, 1)))

    def test_scalar(self):
        g = np.ones((2, 2))
        np.testing.assert_allclose(_unbroadcast(g, ()), 4.0)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=5),
    cols=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_add_grad_is_ones(rows, cols, seed):
    """d(sum(a+b))/da is exactly ones regardless of shape."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    b = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((rows, cols)))
    np.testing.assert_allclose(b.grad, np.ones((rows, cols)))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_sigmoid_range_and_grad_sign(n, seed):
    """Sigmoid outputs lie in (0,1) and its gradient is positive."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=n) * 3, requires_grad=True)
    y = x.sigmoid()
    assert np.all(y.data > 0) and np.all(y.data < 1)
    y.sum().backward()
    assert np.all(x.grad > 0)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=6),
    d=st.integers(min_value=1, max_value=4),
    targets=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_scatter_then_sum_preserves_mass(n, d, targets, seed):
    """scatter_add conserves total mass: sum(out) == sum(in)."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(n, d)))
    index = rng.integers(0, targets, size=n)
    out = x.scatter_add(index, targets)
    np.testing.assert_allclose(out.data.sum(), x.data.sum(), rtol=1e-9)
