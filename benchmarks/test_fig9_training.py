"""Fig. 9 benchmark: pre-training convergence on Wiki.

Shape claims (paper Fig. 9): GraphPrompter's added reconstruction and
selection layers do not hurt convergence — its loss falls like Prodigy's
and ends in the same range, at comparable training accuracy.
"""

import numpy as np

from repro.experiments import fig9_training_curves


def test_fig9_training_curves(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: fig9_training_curves(ctx), rounds=1, iterations=1)
    save_result("fig9_training", result)

    ours = result.data["ours"]
    prodigy = result.data["prodigy"]
    # Both converge: last-quarter mean loss is clearly below the first
    # logged loss.
    quarter = max(1, len(ours.losses) // 4)
    ours_tail = float(np.mean(ours.losses[-quarter:]))
    prodigy_tail = float(np.mean(prodigy.losses[-quarter:]))
    assert ours_tail < ours.losses[0]
    assert prodigy_tail < prodigy.losses[0]
    # Comparable convergence (paper: curves overlap).
    assert ours_tail < prodigy_tail * 1.5 + 0.5
    # Comparable or better final training accuracy.
    tail_acc = float(np.mean(ours.accuracies[-quarter:]))
    prodigy_acc = float(np.mean(prodigy.accuracies[-quarter:]))
    assert tail_acc > prodigy_acc - 0.15
