"""Shared fixtures for the table/figure reproduction benchmarks.

The session-scoped :func:`ctx` fixture caches pre-trained artifacts on disk
(``.cache/repro-artifacts``), so the first benchmark run pays for
pre-training once and later runs start from the cached weights.

Each benchmark writes its reproduced table to ``benchmarks/results/`` and
prints it, so ``pytest benchmarks/ --benchmark-only -rA`` (or the saved
files) shows the paper-style rows next to the timing table.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentContext

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(pretrain_steps=400)


@pytest.fixture(scope="session")
def save_result():
    """Persist a TableResult under benchmarks/results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, result) -> None:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(str(result) + "\n")
        print(f"\n{result}\n[saved to {path}]")

    return _save


def mean_of(grid_cells) -> float:
    """Average MethodScore means over an iterable of cells."""
    cells = list(grid_cells)
    return sum(c.mean for c in cells) / len(cells)
