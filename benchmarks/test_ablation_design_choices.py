"""Design-choice ablations from the paper's Further Discussion.

Not a numbered table/figure — these defend the defaults the paper picks:
cosine retrieval, LFU eviction and the MLP reconstruction scorer should be
competitive with (not dominated by) the alternatives the paper says are
swappable.
"""

import numpy as np

from repro.experiments import (
    ablation_cache_policy,
    ablation_knn_metric,
    ablation_recon_scorer,
)


def _aggregate(data, option):
    return float(np.mean([data[t][w][option].mean
                          for t in data for w in data[t]]))


def test_ablation_knn_metric(benchmark, ctx, save_result):
    result = benchmark.pedantic(lambda: ablation_knn_metric(ctx),
                                rounds=1, iterations=1)
    save_result("ablation_knn_metric", result)
    cosine = _aggregate(result.data, "cosine")
    for metric in ("euclidean", "manhattan"):
        other = _aggregate(result.data, metric)
        assert cosine > other - 0.05, (
            f"cosine ({cosine:.3f}) should be competitive with {metric} "
            f"({other:.3f})")


def test_ablation_cache_policy(benchmark, ctx, save_result):
    result = benchmark.pedantic(lambda: ablation_cache_policy(ctx),
                                rounds=1, iterations=1)
    save_result("ablation_cache_policy", result)
    lfu = _aggregate(result.data, "lfu")
    for policy in ("lru", "fifo"):
        other = _aggregate(result.data, policy)
        assert lfu > other - 0.05, (
            f"LFU ({lfu:.3f}) should be competitive with {policy} "
            f"({other:.3f})")


def test_ablation_recon_scorer(benchmark, ctx, save_result):
    result = benchmark.pedantic(lambda: ablation_recon_scorer(ctx),
                                rounds=1, iterations=1)
    save_result("ablation_recon_scorer", result)
    mlp = _aggregate(result.data, "mlp")
    for scorer in ("bilinear", "cosine_gate"):
        other = _aggregate(result.data, scorer)
        assert mlp > other - 0.08, (
            f"MLP scorer ({mlp:.3f}) should be competitive with {scorer} "
            f"({other:.3f})")
