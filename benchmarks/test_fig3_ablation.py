"""Fig. 3 benchmark: stage ablations on FB15K-237 and NELL.

Shape claims (paper Fig. 3): the full model is the best variant on average;
every single-stage removal costs accuracy (kNN removal being the largest
hit in our reproduction, consistent with the paper's discussion that the
retrieval is where most of the adaptive gain lives).
"""

import numpy as np

from repro.experiments import ABLATIONS, fig3_ablation

WAYS = (5, 10, 20, 40)


def _aggregate(data, label):
    values = [data[t][w][label].mean for t in data for w in data[t]]
    return float(np.mean(values))


def test_fig3_ablation(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: fig3_ablation(ctx, ways_list=WAYS), rounds=1, iterations=1)
    save_result("fig3_ablation", result)
    data = result.data

    full = _aggregate(data, "Full")
    for label in ABLATIONS:
        if label == "Full":
            continue
        ablated = _aggregate(data, label)
        assert full > ablated - 0.02, (
            f"removing a stage should not help: Full={full:.3f} "
            f"{label}={ablated:.3f}")
    # At least the retrieval ablation must show a clear gap.
    assert full > _aggregate(data, "w/o kNN")
