"""Fig. 4 benchmark: GraphSAGE vs GAT as the data-graph encoder.

Shape claim (paper Fig. 4): the GraphSAGE-based generator is at least as
good as the GAT variant (the paper attributes this to SAGE scaling better
on large pre-training graphs).
"""

import numpy as np

from repro.experiments import fig4_gnn_architectures

WAYS = (5, 10, 20, 40)


def test_fig4_gnn_architectures(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: fig4_gnn_architectures(ctx, ways_list=WAYS), rounds=1,
        iterations=1)
    save_result("fig4_gnn_arch", result)
    data = result.data

    sage = np.mean([data[t][w]["SAGE"].mean for t in data for w in data[t]])
    gat = np.mean([data[t][w]["GAT"].mean for t in data for w in data[t]])
    assert sage > gat - 0.03, (
        f"SAGE generator ({sage:.3f}) should not trail GAT ({gat:.3f})")
