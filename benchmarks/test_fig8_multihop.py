"""Fig. 8 benchmark: 1/2/3-hop subgraph prompts.

Shape claims: GraphPrompter stays ahead of Prodigy at every hop count on
average, and every configuration stays above chance.  The paper's further
observation — monotone accuracy decline with the hop radius — does not
reproduce on the CPU-scale synthetic graphs (hop-2/3 subgraphs are
sometimes *more* informative here); see EXPERIMENTS.md for the measured
series and the deviation note.
"""

import numpy as np

from repro.experiments import fig8_multi_hop

HOPS = (1, 2, 3)
WAYS = (10, 20, 40)


def test_fig8_multi_hop(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: fig8_multi_hop(ctx, hops_list=HOPS, ways_list=WAYS),
        rounds=1, iterations=1)
    save_result("fig8_multihop", result)
    data = result.data

    def avg(method, hops):
        return float(np.mean([data[t][w][method][hops].mean
                              for t in data for w in data[t]]))

    # Ours ahead at every hop count (the figure's robust ordering claim).
    for hops in HOPS:
        ours, prodigy = avg("GraphPrompter", hops), avg("Prodigy", hops)
        assert ours > prodigy - 0.02, (
            f"{hops}-hop: GraphPrompter ({ours:.3f}) should stay ahead of "
            f"Prodigy ({prodigy:.3f})")
    # Above chance everywhere (worst cell: 40 ways -> chance 2.5%).
    for t in data:
        for w in data[t]:
            for method in ("Prodigy", "GraphPrompter"):
                for hops in HOPS:
                    assert data[t][w][method][hops].mean > 1.0 / w
