"""Fig. 6 benchmark: accuracy vs number of prompt examples (shots).

Shape claim (paper Fig. 6): GraphPrompter dominates Prodigy at every shot
count on every dataset (on average); the benefit of more shots saturates
(the k=20 cell does not dramatically beat the best small-k cell).
"""

import numpy as np

from repro.experiments import fig6_shots_sweep

SHOTS = (1, 2, 3, 5, 8, 12, 16, 20)


def test_fig6_shots_sweep(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: fig6_shots_sweep(ctx, shots_list=SHOTS), rounds=1,
        iterations=1)
    save_result("fig6_shots", result)
    data = result.data

    for target, series in data.items():
        ours = np.mean([series["GraphPrompter"][k].mean for k in SHOTS])
        prodigy = np.mean([series["Prodigy"][k].mean for k in SHOTS])
        assert ours > prodigy - 0.02, (
            f"{target}: GraphPrompter ({ours:.3f}) should dominate Prodigy "
            f"({prodigy:.3f}) across shots")
    # Saturation: the largest shot count is not the clear global optimum
    # averaged over datasets.
    avg = {k: np.mean([data[t]["GraphPrompter"][k].mean for t in data])
           for k in SHOTS}
    assert avg[20] <= max(avg.values()) + 1e-9
    assert max(avg, key=avg.get) != 1  # one shot is not enough either
