"""Serving benchmark: cross-session micro-batching throughput.

Shape claims (serving subsystem, not a paper artifact): coalescing queries
from many sessions into one GNN encoding pass yields more queries/sec than
per-query (batch size 1) serving of the same workload, without changing a
single prediction — micro-batching is a pure throughput optimization.
"""

from repro.experiments import serve_bench

BATCH_SIZES = (1, 4, 16)


def test_serving_throughput(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: serve_bench(ctx, batch_sizes=BATCH_SIZES), rounds=1,
        iterations=1)
    save_result("serving_throughput", result)

    cells = result.data["cells"]
    # Batching never changes an answer.
    assert all(cells[bs]["identical"] for bs in BATCH_SIZES), (
        "micro-batched predictions diverged from per-query serving")
    # The scheduler actually coalesced across sessions.
    assert cells[16]["mean_batch"] > 4.0
    # The acceptance claim: some batched setting beats per-query serving.
    best_batched = max(cells[bs]["qps"] for bs in BATCH_SIZES if bs > 1)
    assert best_batched > cells[1]["qps"], (
        f"micro-batching gave no speedup: {best_batched:.1f} vs "
        f"{cells[1]['qps']:.1f} queries/s")
