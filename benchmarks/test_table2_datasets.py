"""Table II benchmark: dataset statistics of the simulated suite."""


from repro.experiments import table2_dataset_statistics


def test_table2_dataset_statistics(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: table2_dataset_statistics(ctx), rounds=1, iterations=1)
    save_result("table2_datasets", result)

    by_name = {row["dataset"]: row for row in result.data["rows"]}
    # The downstream class vocabularies match the paper exactly.
    assert by_name["arxiv-sim"]["classes"] == 40
    assert by_name["conceptnet-sim"]["classes"] == 14
    assert by_name["fb15k237-sim"]["classes"] == 200
    assert by_name["nell-sim"]["classes"] == 291
    # Pre-training graphs are the largest, as in the paper.
    assert by_name["mag240m-sim"]["nodes"] >= by_name["arxiv-sim"]["nodes"]
    assert by_name["wiki-sim"]["nodes"] >= by_name["conceptnet-sim"]["nodes"]
