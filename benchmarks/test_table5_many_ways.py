"""Table V benchmark: 50–100-way episodes on FB15K-237 and NELL.

Shape claims (paper Table V): the GraphPrompter margin over Prodigy
persists in the many-class regime, ProG stays unstable/behind, and
accuracy declines as the class count grows.
"""

from conftest import mean_of

from repro.experiments import table5_many_ways

WAYS = (50, 60, 80, 100)


def test_table5_many_ways(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: table5_many_ways(ctx, ways_list=WAYS), rounds=1,
        iterations=1)
    save_result("table5_many_ways", result)

    for target in ("fb15k237", "nell"):
        grid = result.data[target]
        ours = mean_of(grid[w]["GraphPrompter"] for w in WAYS)
        prodigy = mean_of(grid[w]["Prodigy"] for w in WAYS)
        prog = mean_of(grid[w]["ProG"] for w in WAYS)
        assert ours > prodigy, (
            f"{target}: GraphPrompter ({ours:.3f}) must beat Prodigy "
            f"({prodigy:.3f}) at 50-100 ways")
        assert ours > prog, f"{target}: GraphPrompter must beat ProG"
        # More classes → harder.
        assert grid[100]["GraphPrompter"].mean < grid[50]["GraphPrompter"].mean
        assert grid[100]["Prodigy"].mean < grid[50]["Prodigy"].mean
