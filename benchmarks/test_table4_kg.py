"""Table IV benchmark: KG edge classification (ConceptNet / FB15K-237 / NELL).

Shape claims (paper Table IV): GraphPrompter posts the best average across
datasets and way counts; all pre-trained methods beat NoPretrain; accuracy
decays with ways on every dataset.
"""

from conftest import mean_of

from repro.experiments import table4_kg

METHODS = ("NoPretrain", "Contrastive", "Finetune", "Prodigy", "ProG",
           "OFA", "GraphPrompter")


def _all_cells(data, name):
    for target, grid in data.items():
        for ways in grid:
            yield grid[ways][name]


def test_table4_kg(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: table4_kg(ctx, method_names=METHODS), rounds=1, iterations=1)
    save_result("table4_kg", result)
    data = result.data

    ours = mean_of(_all_cells(data, "GraphPrompter"))
    prodigy = mean_of(_all_cells(data, "Prodigy"))
    no_pretrain = mean_of(_all_cells(data, "NoPretrain"))
    assert ours > prodigy, (
        f"GraphPrompter ({ours:.3f}) must beat Prodigy ({prodigy:.3f})")
    assert prodigy > no_pretrain
    assert ours > mean_of(_all_cells(data, "Contrastive"))

    # Way-decay inside FB15K-237 and NELL.
    for target in ("fb15k237", "nell"):
        grid = data[target]
        assert grid[40]["GraphPrompter"].mean < grid[5]["GraphPrompter"].mean
        assert grid[40]["Prodigy"].mean < grid[5]["Prodigy"].mean
