"""Table VII benchmark: random vs max-confidence pseudo-labels.

Shape claims (paper Table VII): filling the Augmenter cache with *random*
queries instead of the most confident ones costs a couple of points but the
method remains usable — the pseudo-label policy is robust.
"""

import numpy as np

from repro.experiments import table7_random_pseudo_labels

SEEDS = (10, 30, 50, 70, 90)


def test_table7_pseudo_labels(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: table7_random_pseudo_labels(ctx, seeds=SEEDS, num_ways=20),
        rounds=1, iterations=1)
    save_result("table7_pseudo", result)

    for target in ("fb15k237", "nell"):
        cell = result.data[target]
        random_mean = float(np.mean(cell["random_by_seed"]))
        max_conf = cell["max_confidence"].mean_percent
        # Random pseudo-labels must not collapse the method (paper: ~2%
        # drop).  Allow a generous corridor around the max-confidence run.
        assert random_mean > max_conf - 15.0, (
            f"{target}: random pseudo-labels collapsed "
            f"({random_mean:.1f} vs {max_conf:.1f})")
        # Seed-to-seed variation stays bounded (paper std ~1.5).
        assert float(np.std(cell["random_by_seed"])) < 12.0
