"""Fig. 5 benchmark: accuracy vs Augmenter cache size.

Shape claims (paper Fig. 5): the best cache size is small (the paper picks
c = 3; beyond that pseudo-label noise outweighs the benefit), so the curve
should peak at a small c and not improve monotonically to c = 10.
"""

import numpy as np

from repro.experiments import fig5_cache_size

CACHE_SIZES = tuple(range(1, 11))
WAYS = (5, 10, 20)


def test_fig5_cache_size(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: fig5_cache_size(ctx, cache_sizes=CACHE_SIZES,
                                ways_list=WAYS),
        rounds=1, iterations=1)
    save_result("fig5_cache", result)
    data = result.data

    # Average the curve over datasets and way counts.
    curve = {
        c: float(np.mean([data[t][w][c].mean
                          for t in data for w in data[t]]))
        for c in CACHE_SIZES
    }
    best_overall = max(curve.values())
    best_small = max(curve[c] for c in CACHE_SIZES if c <= 5)
    # Small caches capture (nearly) all of the benefit: going beyond c = 5
    # buys at most one accuracy point (paper picks c = 3; our curve is
    # flatter — see EXPERIMENTS.md — but shares the "big caches don't pay"
    # conclusion).
    assert best_small >= best_overall - 0.01, (
        f"large caches should not dominate: {curve}")
    # No runaway growth at the tail.
    assert curve[10] <= best_overall
