"""Micro-benchmarks of the substrate hot paths.

Not a paper table — these time the primitives every experiment is built
from (encoder forward, scatter ops, LFU cache, selector, sampler) so
performance regressions in the substrate are visible separately from the
science benchmarks.
"""

import numpy as np
import pytest

from repro.cache import LFUCache
from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PromptGenerator,
    PromptSelector,
    sample_episode,
)
from repro.datasets import load_dataset
from repro.gnn import SubgraphBatch, scatter_sum, segment_softmax
from repro.nn import Tensor


@pytest.fixture(scope="module")
def fb():
    return load_dataset("fb15k237")


@pytest.fixture(scope="module")
def encoder_setup(fb):
    config = GraphPrompterConfig(hidden_dim=24, max_subgraph_nodes=16)
    model = GraphPrompterModel(fb.graph.feature_dim, fb.graph.num_relations,
                               config)
    model.eval()
    generator = PromptGenerator(fb.graph, config, rng=0)
    episode = sample_episode(fb, num_ways=10, num_queries=8, rng=0)
    batch = SubgraphBatch.from_subgraphs(
        generator.subgraphs_for(episode.candidates))
    return model, batch


def test_bench_encoder_forward(benchmark, encoder_setup):
    model, batch = encoder_setup
    out = benchmark(lambda: model.encode_batch(batch))
    assert out.shape[0] == batch.num_graphs


def test_bench_scatter_sum(benchmark):
    rng = np.random.default_rng(0)
    values = Tensor(rng.normal(size=(5000, 32)))
    index = rng.integers(0, 500, size=5000)
    out = benchmark(lambda: scatter_sum(values, index, 500))
    assert out.shape == (500, 32)


def test_bench_segment_softmax(benchmark):
    rng = np.random.default_rng(1)
    scores = Tensor(rng.normal(size=5000))
    index = rng.integers(0, 500, size=5000)
    out = benchmark(lambda: segment_softmax(scores, index, 500))
    assert out.shape == (5000,)


def test_bench_lfu_cache(benchmark):
    def run():
        cache = LFUCache(64)
        for i in range(1000):
            cache.put(i % 128, i)
            cache.get((i * 7) % 128)
        return cache

    cache = benchmark(run)
    assert len(cache) == 64


def test_bench_subgraph_sampling(benchmark, fb):
    config = GraphPrompterConfig(max_subgraph_nodes=16)
    generator = PromptGenerator(fb.graph, config, rng=0)
    episode = sample_episode(fb, num_ways=5, num_queries=4, rng=1)
    subs = benchmark(lambda: generator.subgraphs_for(episode.candidates))
    assert len(subs) == len(episode.candidates)


def test_bench_prompt_selection(benchmark):
    rng = np.random.default_rng(2)
    config = GraphPrompterConfig()
    selector = PromptSelector(config, rng=0)
    candidates = rng.normal(size=(400, 24))
    labels = np.repeat(np.arange(40), 10)
    queries = rng.normal(size=(8, 24))
    selected = benchmark(
        lambda: selector.select(candidates, rng.random(400), queries,
                                rng.random(8), labels, 3))
    assert len(selected) == 120
