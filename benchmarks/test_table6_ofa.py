"""Table VI benchmark: OFA(-joint-lr analogue) vs GraphPrompter.

Shape claims (paper Table VI): GraphPrompter is better *and more stable*
(smaller std) than the jointly-trained low-resource OFA model under random
category selection.
"""

import numpy as np
from conftest import mean_of

from repro.experiments import table6_ofa_comparison


def test_table6_ofa(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: table6_ofa_comparison(ctx), rounds=1, iterations=1)
    save_result("table6_ofa", result)

    for target in ("arxiv", "fb15k237"):
        grid = result.data[target]
        ways = sorted(grid)
        ours = mean_of(grid[w]["GraphPrompter"] for w in ways)
        ofa = mean_of(grid[w]["OFA"] for w in ways)
        assert ours > ofa, (
            f"{target}: GraphPrompter ({ours:.3f}) must beat OFA "
            f"({ofa:.3f})")
    # Stability: average std across all cells is no worse for ours.
    all_ours_std = np.mean([grid[w]["GraphPrompter"].std
                            for grid in result.data.values() for w in grid])
    all_ofa_std = np.mean([grid[w]["OFA"].std
                           for grid in result.data.values() for w in grid])
    assert all_ours_std <= all_ofa_std + 0.05
