"""Fig. 7 benchmark: data-node embedding geometry (t-SNE analysis).

Shape claim (paper Fig. 7): with the same number of shots, GraphPrompter's
selected prompt + query embeddings form tighter per-class clusters than
Prodigy's random selection.  We assert the quantitative analogue: a lower
intra/inter class distance ratio on average.
"""

import numpy as np

from repro.experiments import fig7_embedding_distribution

SHOTS = (20, 50)


def test_fig7_embedding_distribution(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: fig7_embedding_distribution(ctx, shots_list=SHOTS,
                                            num_ways=5),
        rounds=1, iterations=1)
    save_result("fig7_tsne", result)
    data = result.data

    ours = np.mean([data[t][s]["GraphPrompter"]["ratio"]
                    for t in data for s in SHOTS])
    prodigy = np.mean([data[t][s]["Prodigy"]["ratio"]
                       for t in data for s in SHOTS])
    assert ours <= prodigy + 0.02, (
        f"GraphPrompter clusters (ratio {ours:.3f}) should be tighter than "
        f"Prodigy's ({prodigy:.3f})")
    # The t-SNE projections exist and have the right shape for plotting.
    sample = data["fb15k237"][20]["GraphPrompter"]
    assert sample["tsne"].shape[1] == 2
    assert sample["tsne"].shape[0] == sample["labels"].shape[0]
