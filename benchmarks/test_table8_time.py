"""Table VIII benchmark: per-query inference time.

Shape claims (paper Table VIII + Eqs. 15–16): GraphPrompter costs more per
query than Prodigy (retrieval + cache-extended task graph; paper reports
~2-3×), and both methods get slower as the number of ways grows.
"""

from repro.experiments import table8_inference_time

WAYS = (10, 20, 40)


def test_table8_inference_time(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: table8_inference_time(ctx, ways_list=WAYS), rounds=1,
        iterations=1)
    save_result("table8_time", result)

    for target in ("fb15k237", "nell"):
        cells = result.data[target]
        for ways in WAYS:
            assert cells[ways]["slowdown"] > 1.0, (
                f"{target}/{ways}: GraphPrompter should cost more per query")
        # Both methods scale up with the number of ways.
        assert (cells[40]["prodigy"].ms_per_query
                > cells[10]["prodigy"].ms_per_query)
        assert (cells[40]["ours"].ms_per_query
                > cells[10]["ours"].ms_per_query)
