"""Table III benchmark: arXiv in-context accuracy vs number of ways.

Shape claims (paper Table III):
  * GraphPrompter beats Prodigy on average across way counts;
  * pre-trained in-context methods beat NoPretrain everywhere;
  * accuracy decays as the number of ways grows.
"""

from conftest import mean_of

from repro.experiments import table3_arxiv

WAYS = (3, 5, 10, 20, 40)
METHODS = ("NoPretrain", "Contrastive", "Finetune", "Prodigy", "ProG",
           "OFA", "GraphPrompter")


def test_table3_arxiv(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: table3_arxiv(ctx, ways_list=WAYS, method_names=METHODS),
        rounds=1, iterations=1)
    save_result("table3_arxiv", result)
    grid = result.data["grid"]

    ours = mean_of(grid[w]["GraphPrompter"] for w in WAYS)
    prodigy = mean_of(grid[w]["Prodigy"] for w in WAYS)
    no_pretrain = mean_of(grid[w]["NoPretrain"] for w in WAYS)

    assert ours > prodigy, (
        f"GraphPrompter ({ours:.3f}) must beat Prodigy ({prodigy:.3f})")
    for name in ("Contrastive", "Finetune", "Prodigy", "GraphPrompter"):
        trained = mean_of(grid[w][name] for w in WAYS)
        assert trained > no_pretrain, f"{name} should beat NoPretrain"
    # Monotone-ish decay: the hardest cell is worse than the easiest.
    assert grid[40]["GraphPrompter"].mean < grid[3]["GraphPrompter"].mean
    assert grid[40]["Prodigy"].mean < grid[3]["Prodigy"].mean
