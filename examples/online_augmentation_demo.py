"""Prompt Augmenter deep dive: watching the LFU pseudo-label cache work.

Streams queries through the pipeline batch by batch and prints the cache
state after each step — which pseudo-labelled test samples are held, their
LFU frequencies, and how accuracy compares with the Augmenter disabled
(the Sec. IV-C mechanism made visible).

Run:  python examples/online_augmentation_demo.py      (~1 min; --fast for CI)
"""

import argparse

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    GraphPrompterPipeline,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.datasets import load_dataset


def run_with_cache_trace(model, dataset, episode, shots=3, batch=8):
    """Replay run_episode batch-by-batch, printing the cache each step."""
    pipeline = GraphPrompterPipeline(model, dataset, rng=11)
    correct = 0
    seen = 0
    # Process the episode in slices so we can inspect the cache between
    # batches; reset_cache=False keeps the LFU state across slices.
    for start in range(0, episode.num_queries, batch):
        sub_episode = type(episode)(
            way_classes=episode.way_classes,
            candidates=episode.candidates,
            candidate_labels=episode.candidate_labels,
            queries=episode.queries[start:start + batch],
            query_labels=episode.query_labels[start:start + batch],
        )
        result = pipeline.run_episode(sub_episode, shots=shots,
                                      query_batch_size=batch,
                                      reset_cache=(start == 0))
        correct += int((result.predictions == result.labels).sum())
        seen += result.num_queries
        entries = [
            (key, entry.pseudo_label, round(entry.confidence, 2),
             pipeline.augmenter.cache.frequency(key))
            for key, entry in pipeline.augmenter.cache.items()
        ]
        print(f"  after queries {start + 1:3d}-{start + result.num_queries:3d}: "
              f"running acc {correct / seen:.3f}  "
              f"cache [(id, pseudo-label, conf, freq)] = {entries}")
    return correct / seen


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="CI scale: fewer pre-training steps")
    steps = 30 if parser.parse_args().fast else 200
    config = GraphPrompterConfig(hidden_dim=24, max_subgraph_nodes=16,
                                 cache_size=3)
    wiki = load_dataset("wiki")
    nell = load_dataset("nell")

    print("pre-training on", wiki.name, "…")
    model = GraphPrompterModel(wiki.graph.feature_dim,
                               wiki.graph.num_relations, config)
    Pretrainer(model, wiki, PretrainConfig(steps=steps, num_ways=8),
               rng=0).train()

    target_model = GraphPrompterModel(nell.graph.feature_dim,
                                      nell.graph.num_relations, config)
    target_model.load_state_dict(model.state_dict())

    episode = sample_episode(nell, num_ways=10, num_queries=48, rng=5)
    print(f"\nstreaming {episode.num_queries} queries "
          f"({episode.num_ways}-way) with the Augmenter cache (c=3):")
    with_cache = run_with_cache_trace(target_model, nell, episode)

    no_aug_model = GraphPrompterModel(
        nell.graph.feature_dim, nell.graph.num_relations,
        config.ablate(use_augmenter=False))
    no_aug_model.load_state_dict(model.state_dict())
    result = GraphPrompterPipeline(no_aug_model, nell, rng=11).run_episode(
        episode, shots=3)

    print(f"\nwith Augmenter:    {with_cache:.3f}")
    print(f"without Augmenter: {result.accuracy:.3f}")
    print("(single-episode comparison — the augmenter's benefit depends on "
          "pseudo-label quality;\n averaged gains appear in "
          "benchmarks/test_fig3_ablation.py and test_fig5_cache.py)")


if __name__ == "__main__":
    main()
