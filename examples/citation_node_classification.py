"""Citation-network node classification — the Table III setting.

Pre-trains on the MAG240M analogue and classifies paper categories on the
arXiv analogue in-context, sweeping the number of ways to show the
many-class degradation the Prompt Augmenter mitigates.

Run:  python examples/citation_node_classification.py      (~2 min)
"""

from repro.baselines import GraphPrompterMethod, NoPretrainBaseline, ProdigyBaseline
from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
)
from repro.datasets import load_dataset
from repro.eval import EvaluationSetting, compare_methods
from repro.viz import format_table, render_series


def main():
    config = GraphPrompterConfig(hidden_dim=24, max_subgraph_nodes=16)
    mag = load_dataset("mag240m")
    arxiv = load_dataset("arxiv")

    print("pre-training on", mag.name, "…")
    model = GraphPrompterModel(mag.graph.feature_dim,
                               mag.graph.num_relations, config)
    Pretrainer(model, mag, PretrainConfig(steps=250, num_ways=8),
               rng=0).train()
    state = model.state_dict()

    methods = [
        NoPretrainBaseline(config),
        ProdigyBaseline(state, config, mag.graph.feature_dim),
        GraphPrompterMethod(state, config, mag.graph.feature_dim),
    ]

    ways_list = (3, 5, 10, 20)
    rows = []
    series = {m.name: [] for m in methods}
    for ways in ways_list:
        setting = EvaluationSetting(num_ways=ways, shots=3,
                                    queries_per_run=30, runs=3)
        scores = compare_methods(methods, arxiv, setting, seed=ways)
        rows.append([ways] + [str(scores[m.name]) for m in methods])
        for m in methods:
            series[m.name].append(scores[m.name].mean_percent)
        print(f"  {ways}-way done")

    print()
    print(format_table(["Ways"] + [m.name for m in methods], rows,
                       title="arXiv-sim paper-category classification"))
    print()
    print(render_series(list(ways_list), series,
                        title="accuracy (%) vs ways"))


if __name__ == "__main__":
    main()
