"""Quickstart: pre-train GraphPrompter and run in-context inference.

The smallest end-to-end tour of the public API:

1. build a synthetic knowledge graph (a stand-in for the paper's Wiki),
2. pre-train the model with Neighbor Matching + Multi-Task (Alg. 1),
3. sample an m-way k-shot episode on a *different* graph,
4. run the three-stage pipeline (Alg. 2) and inspect the result.

Run:  python examples/quickstart.py        (~30 s on a laptop CPU)
"""

import numpy as np

from repro import (
    GraphPrompterConfig,
    GraphPrompterModel,
    GraphPrompterPipeline,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.core import prodigy_config
from repro.datasets import Dataset, EDGE_TASK
from repro.datasets.synthetic import synthetic_knowledge_graph


def main():
    # ------------------------------------------------------------------
    # 1. A source graph to pre-train on and a target graph to adapt to.
    #    Their relation vocabularies are disjoint — this is the paper's
    #    cross-domain setting.
    # ------------------------------------------------------------------
    source_graph = synthetic_knowledge_graph(
        num_entities=800, num_relations=30, num_edges=6000, rng=0,
        name="source-kg")
    target_graph = synthetic_knowledge_graph(
        num_entities=600, num_relations=12, num_edges=4000, rng=1,
        name="target-kg")
    source = Dataset(source_graph, EDGE_TASK, rng=0)
    target = Dataset(target_graph, EDGE_TASK, rng=1)
    print(f"source: {source_graph}")
    print(f"target: {target_graph}")

    # ------------------------------------------------------------------
    # 2. Pre-train (Alg. 1).  All GraphPrompter components — encoder,
    #    reconstruction layers, selection layers, task GNN — are trained
    #    jointly; nothing is ever updated again after this.
    # ------------------------------------------------------------------
    config = GraphPrompterConfig(hidden_dim=24, max_subgraph_nodes=16)
    model = GraphPrompterModel(source_graph.feature_dim,
                               source_graph.num_relations, config)
    trainer = Pretrainer(model, source,
                         PretrainConfig(steps=150, num_ways=6), rng=0)
    history = trainer.train(
        lambda step, loss, acc: print(
            f"  step {step:4d}  loss {loss:.3f}  episode-acc {acc:.2f}"))
    print(f"pre-trained: final loss {history.final_loss:.3f}")

    # ------------------------------------------------------------------
    # 3. One 5-way episode on the unseen target graph: 10 labelled
    #    candidates per class, 40 unlabelled queries.
    # ------------------------------------------------------------------
    episode = sample_episode(target, num_ways=5,
                             num_candidates_per_class=10, num_queries=40,
                             rng=42)
    print(f"episode: {episode.num_ways}-way, "
          f"{len(episode.candidates)} candidates, "
          f"{episode.num_queries} queries")

    # ------------------------------------------------------------------
    # 4. In-context inference (Alg. 2) — no gradient updates.  The same
    #    weights drive both GraphPrompter and the Prodigy baseline; only
    #    the prompt-optimization stages differ.
    # ------------------------------------------------------------------
    target_model = GraphPrompterModel(target_graph.feature_dim,
                                      target_graph.num_relations, config)
    target_model.load_state_dict(model.state_dict())
    ours = GraphPrompterPipeline(target_model, target, rng=7).run_episode(
        episode, shots=3)

    baseline_model = GraphPrompterModel(target_graph.feature_dim,
                                        target_graph.num_relations,
                                        prodigy_config(config))
    baseline_model.load_state_dict(model.state_dict())
    prodigy = GraphPrompterPipeline(baseline_model, target,
                                    rng=7).run_episode(episode, shots=3)

    print(f"GraphPrompter accuracy: {ours.accuracy:.3f} "
          f"({ours.num_cache_insertions} pseudo-label cache insertions)")
    print(f"Prodigy accuracy:       {prodigy.accuracy:.3f}")
    print(f"mean confidence:        {np.mean(ours.confidences):.3f}")


if __name__ == "__main__":
    main()
