"""Knowledge-graph relation classification — the paper's headline workload.

Pre-trains on the Wiki analogue and evaluates in-context edge (relation)
classification on the FB15K-237 analogue across several way counts,
comparing GraphPrompter against Prodigy and the hard-coded nearest-neighbour
Contrastive baseline (the Table IV setting, shrunk for a quick run).

Run:  python examples/kg_relation_classification.py      (~2 min)
"""

from repro.baselines import (
    ContrastiveBaseline,
    GraphPrompterMethod,
    ProdigyBaseline,
)
from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
)
from repro.datasets import load_dataset
from repro.eval import EvaluationSetting, compare_methods
from repro.viz import format_table


def main():
    config = GraphPrompterConfig(hidden_dim=24, max_subgraph_nodes=16)
    wiki = load_dataset("wiki")
    fb = load_dataset("fb15k237")

    print("pre-training on", wiki.name, "…")
    model = GraphPrompterModel(wiki.graph.feature_dim,
                               wiki.graph.num_relations, config)
    Pretrainer(model, wiki, PretrainConfig(steps=250, num_ways=8),
               rng=0).train()
    state = model.state_dict()

    print("training contrastive baseline …")
    contrastive = ContrastiveBaseline.pretrained(wiki, config, steps=100,
                                                 rng=0)

    methods = [
        contrastive,
        ProdigyBaseline(state, config, wiki.graph.feature_dim),
        GraphPrompterMethod(state, config, wiki.graph.feature_dim),
    ]

    rows = []
    for ways in (5, 10, 20):
        setting = EvaluationSetting(num_ways=ways, shots=3,
                                    queries_per_run=30, runs=3)
        scores = compare_methods(methods, fb, setting, seed=ways)
        rows.append([ways] + [str(scores[m.name]) for m in methods])
        print(f"  {ways}-way done")

    print()
    print(format_table(
        ["Ways"] + [m.name for m in methods], rows,
        title=f"In-context relation classification on {fb.name} "
              f"(pre-trained on {wiki.name})"))


if __name__ == "__main__":
    main()
