"""Gateway demo: multi-tenant QoS in front of one GraphPrompter server.

Three tenants at three priority classes share one pre-trained model
behind :class:`repro.serving.ServingGateway`:

1. normal traffic — everything admitted, answers bit-identical to
   calling :class:`PromptServer` directly;
2. a burst at twice the admission-queue capacity — batch/background
   requests get typed ``Overloaded`` rejections (reason + retry hint,
   never a hang) while the interactive tenant stays un-shed;
3. a live graph update mid-stream — queued requests drain first
   (zero drops), then the mutation lands and sessions re-anchor.

Run:  python examples/gateway_demo.py      (~1 min; --fast for CI scale)
"""

import argparse
import asyncio

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.datasets import Dataset, load_dataset
from repro.graph import GraphUpdate
from repro.serving import Overloaded, Priority, PromptServer, ServingGateway

QUERIES = 8
TENANTS = [
    ("dashboard", Priority.INTERACTIVE),
    ("reports", Priority.BATCH),
    ("crawler", Priority.BACKGROUND),
]


def print_tenants(stats):
    print(f"  {'tenant':<10} {'class':<12} {'adm':>4} {'shed':>5} "
          f"{'p95 wait ms':>12} {'miss':>5}")
    for t in stats.tenants:
        print(f"  {t.tenant_id:<10} {t.priority.name.lower():<12} "
              f"{t.admitted:>4} {t.shed:>5} "
              f"{1000.0 * t.wait_p95_s:>12.2f} {t.deadline_misses:>5}")


async def serve(gateway, episodes, queries, flush_each_round=False):
    futures, shed = [], []
    for q in queries:
        for (tenant, _), episode in zip(TENANTS, episodes):
            outcome = gateway.submit_nowait(f"{tenant}-s", episode.queries[q])
            if isinstance(outcome, Overloaded):
                shed.append(outcome)
            else:
                futures.append(outcome)
        if flush_each_round:
            await gateway.flush()
    await gateway.flush()
    return [f.result() for f in futures], shed


async def main_async(model, dataset, episodes):
    server = PromptServer(model, dataset, max_batch_size=8, rng=0)
    gateway = ServingGateway(server, max_queue=12, max_batch_size=8,
                             auto_drain=False)
    for (tenant, priority), episode in zip(TENANTS, episodes):
        gateway.open_session(tenant, f"{tenant}-s", episode,
                             priority=priority)

    print("\n1. normal traffic (3 queries/tenant):")
    results, shed = await serve(gateway, episodes, range(3),
                                flush_each_round=True)
    print(f"   {len(results)} answered, {len(shed)} shed")
    print_tenants(gateway.stats)

    print("\n2. burst at 2x queue capacity (one giant round):")
    burst = [q for q in range(3, 6) for _ in range(3)]  # 9/tenant ≥ 2x12
    results, shed = await serve(gateway, episodes, burst)
    reasons = sorted({o.reason for o in shed})
    print(f"   {len(results)} answered, {len(shed)} shed "
          f"(reasons: {', '.join(reasons)})")
    for outcome in shed[:2]:
        print(f"   shed example: tenant={outcome.tenant_id} "
              f"reason={outcome.reason} "
              f"retry_after={outcome.retry_after_s:.3f}s")
    print_tenants(gateway.stats)

    print("\n3. live graph update with requests in flight:")
    queued = [gateway.submit_nowait(f"{TENANTS[0][0]}-s",
                                    episodes[0].queries[6])
              for _ in range(3)]
    print(f"   queued {gateway.queue_depth()} requests, applying update …")
    applied = await gateway.update_graph(GraphUpdate(
        add_src=[0, 1, 2], add_dst=[5, 6, 7], add_rel=[0, 1, 2]))
    drained = sum(f.done() and f.result().ok for f in queued)
    print(f"   drained {drained}/3 in-flight requests before the "
          f"mutation touched {applied.touched_nodes.size} nodes")
    stats = gateway.stats
    print(f"   graph version {stats.graph_version}, "
          f"{stats.sessions_invalidated} session(s) re-anchored")
    await gateway.close()


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="CI scale: fewer pre-training steps")
    steps = 30 if parser.parse_args().fast else 200
    config = GraphPrompterConfig(hidden_dim=24, max_subgraph_nodes=16,
                                 mutable_graph=True)
    wiki = load_dataset("wiki")
    nell = load_dataset("nell")

    print("pre-training on", wiki.name, "…")
    model = GraphPrompterModel(wiki.graph.feature_dim,
                               wiki.graph.num_relations, config)
    Pretrainer(model, wiki, PretrainConfig(steps=steps, num_ways=8),
               rng=0).train()
    target = GraphPrompterModel(nell.graph.feature_dim,
                                nell.graph.num_relations, config)
    target.load_state_dict(model.state_dict())

    # Private graph copy: the demo mutates it in part 3.
    dataset = Dataset(nell.graph.rebuild(), nell.task,
                      name=f"{nell.name}-gateway", rng=0)
    episodes = [sample_episode(dataset, num_ways=5, num_queries=QUERIES,
                               rng=10 + i)
                for i in range(len(TENANTS))]
    asyncio.run(main_async(target, dataset, episodes))


if __name__ == "__main__":
    main()
