"""Sharded serving demo: partition → store → workers → router.

Splits a knowledge graph into shards, shows that sampling over the
sharded store is bit-identical to the monolithic engines, then serves the
same multi-session workload unsharded and sharded and prints the
per-shard counters (requests routed, halo fetches across shard
boundaries, worker busy time) — with identical predictions.

Run:  python examples/sharded_serving_demo.py      (~1 min; --fast for CI)
"""

import argparse
import time

import numpy as np

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.datasets import load_dataset
from repro.graph.sampling import random_walk_neighborhood
from repro.serving import PromptServer
from repro.shard import ShardedGraphStore, partition_graph

NUM_SESSIONS = 4
QUERIES_PER_SESSION = 10
NUM_SHARDS = 4


def run_workload(server, episodes):
    for i, episode in enumerate(episodes):
        server.open_session(f"tenant-{i}", episode)
    start = time.perf_counter()
    for q in range(QUERIES_PER_SESSION):
        for i, episode in enumerate(episodes):
            server.submit(f"tenant-{i}", episode.queries[q])
    results = server.drain()
    return results, time.perf_counter() - start


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="CI scale: fewer pre-training steps")
    steps = 30 if parser.parse_args().fast else 200
    config = GraphPrompterConfig(hidden_dim=24, max_subgraph_nodes=16)
    wiki = load_dataset("wiki")
    nell = load_dataset("nell")

    # 1. Partition the serving graph and inspect the shards.
    plan = partition_graph(nell.graph, NUM_SHARDS, "greedy")
    print(f"partitioned {nell.name}: {nell.graph.num_nodes} nodes, "
          f"{nell.graph.num_edges} edges -> {NUM_SHARDS} shards")
    for shard in plan.shards:
        print(f"  shard {shard.shard_id}: {shard.num_owned} nodes, "
              f"{shard.edge_ids.size} edges, {shard.num_ghosts} ghosts")

    # 2. Sharded sampling is bit-identical to the monolithic engine.
    view = ShardedGraphStore(nell.graph, plan).view()
    seeds = np.array([3])
    mono = random_walk_neighborhood(nell.graph, seeds, 3, 16,
                                    np.random.default_rng(0))
    sharded = random_walk_neighborhood(view, seeds, 3, 16,
                                       np.random.default_rng(0))
    print(f"\nsharded sampling bit-identical: "
          f"{np.array_equal(mono, sharded)}")

    # 3. Serve the same workload unsharded and sharded.
    print("\npre-training on", wiki.name, "…")
    model = GraphPrompterModel(wiki.graph.feature_dim,
                               wiki.graph.num_relations, config)
    Pretrainer(model, wiki, PretrainConfig(steps=steps, num_ways=8),
               rng=0).train()
    target = GraphPrompterModel(nell.graph.feature_dim,
                                nell.graph.num_relations, config)
    target.load_state_dict(model.state_dict())

    episodes = [sample_episode(nell, num_ways=5,
                               num_queries=QUERIES_PER_SESSION, rng=i)
                for i in range(NUM_SESSIONS)]

    outcomes = {}
    for label, kwargs in (
            ("unsharded", {}),
            (f"{NUM_SHARDS} shards", dict(num_shards=NUM_SHARDS,
                                          num_workers=NUM_SHARDS))):
        with PromptServer(target, nell, max_batch_size=16, rng=7,
                          **kwargs) as server:
            results, elapsed = run_workload(server, episodes)
            outcomes[label] = results
            backend = server.router.backend if server.router else "inline"
            print(f"\n  {label} ({backend}): "
                  f"{len(results) / elapsed:7.1f} queries/s")
            for counters in server.stats.shards:
                print(f"    shard {counters.shard_id}: "
                      f"{counters.requests} requests, "
                      f"{counters.halo_fetches} halo fetches, "
                      f"{1000 * counters.worker_busy_s:.1f} ms busy")

    labels = list(outcomes)
    same = ([r.prediction for r in outcomes[labels[0]]]
            == [r.prediction for r in outcomes[labels[1]]])
    print(f"\nsharded == unsharded predictions: {same}")
    print("(sharding fans the encode hot path out across shard workers — "
          "a throughput lever,\n never an accuracy knob; see "
          "'python -m repro serve-bench-sharded' for the measured table)")


if __name__ == "__main__":
    main()
