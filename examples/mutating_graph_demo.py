"""Live-graph mutation demo: delta overlay → epoch invalidation → serving.

Mutates a knowledge graph while it is being served: adds and removes
edges (and appends nodes) through the `DeltaAdjacency` overlay, shows
that every read stays bit-identical to a from-scratch rebuild, watches
the overlay grow and compact, then runs a `PromptServer` with
`mutable_graph=True` and demonstrates cache-epoch invalidation — the
session whose subgraphs the mutation touched is refreshed (its
pseudo-label cache purged as `stale_evictions`) while untouched sessions
keep their caches, and post-mutation predictions equal a cold rebuild's.

Run:  python examples/mutating_graph_demo.py      (~1 min; --fast for CI)
"""

import argparse

import numpy as np

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.datasets import Dataset, load_dataset
from repro.graph import GraphUpdate
from repro.graph.sampling import random_walk_neighborhood
from repro.serving import PromptServer
from repro.shard import ShardedGraphStore

NUM_SESSIONS = 3
QUERIES_PER_SESSION = 8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="CI scale: fewer pre-training steps")
    steps = 20 if parser.parse_args().fast else 60
    rng = np.random.default_rng(0)
    config = GraphPrompterConfig(hidden_dim=24, max_subgraph_nodes=16,
                                 mutable_graph=True, compact_threshold=0.15)

    # ------------------------------------------------------------------
    # 1. The overlay write path: mutate, read, compare against a rebuild.
    # ------------------------------------------------------------------
    base = load_dataset("nell")
    graph = base.graph.rebuild()  # private copy we are free to mutate
    graph.undirected_adjacency    # CSRs in service before the first write
    graph.adjacency
    print(f"live graph: {graph.num_nodes} nodes, "
          f"{graph.num_live_edges} edges")

    graph.add_edges(rng.integers(0, graph.num_nodes, 200),
                    rng.integers(0, graph.num_nodes, 200),
                    rng.integers(0, graph.num_relations, 200))
    _, _, _, live = graph.live_edges()
    graph.remove_edges(rng.choice(live, 100, replace=False))
    new = graph.add_nodes(rng.normal(size=(5, graph.feature_dim)))
    graph.add_edges(new, rng.integers(0, graph.num_nodes, new.size))
    print(f"after updates: {graph.num_live_edges} live edges, "
          f"overlay {100 * graph.overlay_fraction:.1f}% "
          f"(auto-compacts past {100 * config.compact_threshold:.0f}%)")

    reference = graph.rebuild()
    sample = random_walk_neighborhood(graph, np.array([7]), 3, 24,
                                      np.random.default_rng(5))
    expect = random_walk_neighborhood(reference, np.array([7]), 3, 24,
                                      np.random.default_rng(5))
    assert np.array_equal(sample, expect)
    print("sampling over the overlay == from-scratch rebuild: OK")

    # Tiered compaction: rows the sampler keeps re-reading are promoted
    # into contiguous side storage (read-transparent — same rows, back on
    # the fused gather path); a later write would demote them again.
    adj = graph.undirected_adjacency
    everything = np.arange(graph.num_nodes, dtype=np.int64)
    for _ in range(3):
        adj.gather_neighbors(everything)
    tiers = adj.overlay_stats()
    print(f"tiering: {tiers['promoted_rows']} hot dirty rows promoted "
          f"({tiers['promotions']} promotions, "
          f"{tiers['demotions']} demotions, "
          f"{tiers['side_slots']} side slots)")

    # Halo row cache: a 2-shard store over the same mutated graph pulls
    # each remote row once; the repeat pass is answered locally.
    store = ShardedGraphStore.from_graph(graph, 2, "greedy")
    frontier = rng.integers(0, graph.num_nodes, 64)
    store.gather_neighbors(frontier)  # cold pass fills the cache
    store.gather_neighbors(frontier)  # warm pass: pure hits
    cache = store.cache_stats()
    print(f"halo cache: {cache['hits']} hits / {cache['misses']} misses, "
          f"{cache['cached_rows']} rows cached, "
          f"{cache['invalidations']} epoch flushes")

    graph.compact()
    assert graph.overlay_fraction == 0.0
    print("compacted: overlay folded back into clean CSR bases\n")

    # ------------------------------------------------------------------
    # 2. Serving while mutating: epoch invalidation.
    # ------------------------------------------------------------------
    dataset = Dataset(graph, base.task, name="nell-live", rng=0)
    model = GraphPrompterModel(graph.feature_dim, graph.num_relations,
                               config)
    Pretrainer(model, dataset, PretrainConfig(steps=steps),
               rng=0).train()

    server = PromptServer(model, dataset, max_batch_size=8, rng=0)
    episodes = [sample_episode(dataset, num_ways=3,
                               num_queries=QUERIES_PER_SESSION, rng=10 + i)
                for i in range(NUM_SESSIONS)]
    for i, episode in enumerate(episodes):
        server.open_session(f"tenant-{i}", episode)
    for q in range(QUERIES_PER_SESSION // 2):
        for i, episode in enumerate(episodes):
            server.submit(f"tenant-{i}", episode.queries[q])
    server.drain()

    # Mutate nodes tenant-0 depends on.  Every session whose sampled
    # subgraphs overlap the touched nodes is invalidated (on this shared
    # graph the tenants' regions overlap, so typically all of them);
    # tests/test_serving.py shows disjoint sessions keeping their caches.
    deps = sorted(server.sessions.get("tenant-0").dependent_nodes)
    server.update_graph(GraphUpdate(add_src=[deps[0]], add_dst=[deps[-1]],
                                    add_rel=[0]))
    stats = server.stats
    print(f"update touched nodes {deps[0]} and {deps[-1]}: "
          f"{stats.sessions_invalidated} session(s) marked stale "
          f"(graph epoch {stats.graph_version})")

    for q in range(QUERIES_PER_SESSION // 2, QUERIES_PER_SESSION):
        for i, episode in enumerate(episodes):
            server.submit(f"tenant-{i}", episode.queries[q])
    server.drain()
    for i in range(NUM_SESSIONS):
        state = server.sessions.get(f"tenant-{i}")
        cache = state.augmenter.stats()
        print(f"  tenant-{i}: stale_evictions={cache.stale_evictions} "
              f"cache_size={cache.size} epoch={state.graph_version}")

    # ------------------------------------------------------------------
    # 3. The acceptance property: mutated server == cold rebuild.
    # ------------------------------------------------------------------
    cold_dataset = Dataset(graph.rebuild(), base.task, name="nell-cold",
                           rng=0)
    cold = PromptServer(model, cold_dataset, max_batch_size=8, rng=0)
    answers = {}
    for tag, srv in (("mutated", server), ("cold", cold)):
        for i, episode in enumerate(episodes):
            srv.open_session(f"check-{i}", episode)
        for q in range(QUERIES_PER_SESSION):
            for i, episode in enumerate(episodes):
                srv.submit(f"check-{i}", episode.queries[q])
        answers[tag] = [(r.session_id, r.prediction) for r in srv.drain()]
    assert answers["mutated"] == answers["cold"]
    print("\npost-mutation predictions == cold rebuild: OK")


if __name__ == "__main__":
    main()
