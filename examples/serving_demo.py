"""Online serving demo: many sessions, one model, micro-batched encoding.

Opens several concurrent logical sessions against one pre-trained
GraphPrompter model, streams interleaved single-query requests through
:class:`repro.serving.PromptServer`, and prints what the serving layer did:
micro-batch sizes, per-session Augmenter cache ledgers, and the throughput
difference against per-query (batch size 1) serving of the same workload.

Run:  python examples/serving_demo.py      (~1 min; --fast for CI scale)
"""

import argparse
import time

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.datasets import load_dataset
from repro.serving import PromptServer

NUM_SESSIONS = 4
QUERIES_PER_SESSION = 12


def parse_fast() -> bool:
    """Shared demo flag: ``--fast`` shrinks the workload to CI scale."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="CI scale: fewer pre-training steps and queries")
    return parser.parse_args().fast


def run_workload(server, episodes, queries_per_session):
    """Round-robin submit + drain; returns (results, wall_seconds)."""
    for i, episode in enumerate(episodes):
        server.open_session(f"tenant-{i}", episode)
    start = time.perf_counter()
    for q in range(queries_per_session):
        for i, episode in enumerate(episodes):
            server.submit(f"tenant-{i}", episode.queries[q])
    results = server.drain()
    return results, time.perf_counter() - start


def main():
    fast = parse_fast()
    steps = 30 if fast else 200
    num_sessions = 2 if fast else NUM_SESSIONS
    queries = 4 if fast else QUERIES_PER_SESSION
    config = GraphPrompterConfig(hidden_dim=24, max_subgraph_nodes=16,
                                 cache_size=3)
    wiki = load_dataset("wiki")
    nell = load_dataset("nell")

    print("pre-training on", wiki.name, "…")
    model = GraphPrompterModel(wiki.graph.feature_dim,
                               wiki.graph.num_relations, config)
    Pretrainer(model, wiki, PretrainConfig(steps=steps, num_ways=8),
               rng=0).train()
    target = GraphPrompterModel(nell.graph.feature_dim,
                                nell.graph.num_relations, config)
    target.load_state_dict(model.state_dict())

    episodes = [sample_episode(nell, num_ways=5,
                               num_queries=queries, rng=i)
                for i in range(num_sessions)]

    print(f"\nserving {num_sessions} sessions × {queries} "
          f"queries on {nell.name}:")
    outcomes = {}
    for batch_size in (1, 16):
        server = PromptServer(target, nell, max_batch_size=batch_size,
                              session_ttl_s=300.0, rng=7)
        results, elapsed = run_workload(server, episodes, queries)
        outcomes[batch_size] = results
        print(f"\n  max_batch_size={batch_size:>2}: "
              f"{len(results) / elapsed:7.1f} queries/s  "
              f"(mean micro-batch {server.stats.mean_batch_size:.1f})")
        for sid in server.sessions.ids():
            state = server.sessions.get(sid)
            cache = state.cache_stats()
            print(f"    {sid}: {state.stats.queries} queries, "
                  f"{state.stats.cache_insertions} cache insertions, "
                  f"{cache.hits} cache hits, {cache.evictions} evictions")

    same = ([r.prediction for r in outcomes[1]]
            == [r.prediction for r in outcomes[16]])
    print(f"\nbatched == per-query predictions: {same}")
    print("(micro-batching coalesces the GNN encoding across sessions — "
          "it changes throughput,\n never answers; see "
          "benchmarks/test_serving_throughput.py for the measured table)")


if __name__ == "__main__":
    main()
