"""Observability demo: live metrics + sampled traces during a burst.

One :class:`repro.obs.MetricsRegistry` instruments the whole stack —
gateway admission counters, server batch histograms, shard worker
timings, kernel stage profiles — and this demo watches it move:

1. a mixed-priority burst runs through :class:`ServingGateway` with
   1-in-2 request tracing switched on;
2. **mid-burst** a metrics snapshot is printed straight from the live
   registry (no scrape endpoint needed);
3. after the burst, the full Prometheus exposition is rendered via
   :func:`repro.obs.scrape` and one sampled trace's per-stage latency
   breakdown (admission → queue → encode → predict → total) is shown;
4. a durability mini-cycle (WAL-logged graph updates → snapshot →
   warm-start recovery → a replica kill with tenant failover) runs in
   the same registry so the persist-tier counters
   (``repro_wal_appends_total``, ``repro_snapshot_writes_total``,
   ``repro_recovery_*``, ``repro_replicaset_*``) are live too.

Tracing is sampled with a counter, not an RNG, so the predictions here
are bit-identical to running the same burst untraced.

Run:  python examples/observability_demo.py      (~1 min; --fast for CI)
"""

import argparse
import asyncio
import os
import tempfile

import numpy as np

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.datasets import Dataset, load_dataset
from repro.graph import GraphUpdate
from repro.obs import MetricsRegistry, scrape
from repro.persist import PersistentStore
from repro.serving import (
    Priority,
    PromptServer,
    ReplicaSet,
    ServingGateway,
)

QUERIES = 6
TENANTS = [
    ("dashboard", Priority.INTERACTIVE),
    ("reports", Priority.BATCH),
    ("crawler", Priority.BACKGROUND),
]


def print_snapshot(registry, round_id):
    """A compact mid-burst view pulled straight off the live registry."""
    submitted = registry.counter("repro_gateway_submitted_total")
    completed = registry.counter("repro_gateway_completed_total")
    stage = registry.histogram("repro_stage_seconds")
    print(f"   [after round {round_id}] "
          f"submitted={submitted.sum():.0f} "
          f"completed={completed.sum():.0f} "
          f"encode_mean={1e3 * stage.mean(stage='encode'):.2f}ms "
          f"sample_mean={1e3 * stage.mean(stage='sample'):.2f}ms")


async def main_async(model, dataset, episodes):
    registry = MetricsRegistry()
    server = PromptServer(model, dataset, max_batch_size=8, rng=0,
                          num_shards=2, registry=registry)
    gateway = ServingGateway(server, max_batch_size=8, auto_drain=False,
                             trace_every=2, registry=registry)
    for (tenant, priority), episode in zip(TENANTS, episodes):
        gateway.open_session(tenant, f"{tenant}-s", episode,
                             priority=priority)

    print(f"\n1. burst: {QUERIES} rounds x {len(TENANTS)} tenants, "
          f"tracing 1-in-2 …")
    futures = []
    for q in range(QUERIES):
        for (tenant, _), episode in zip(TENANTS, episodes):
            futures.append(gateway.submit_nowait(f"{tenant}-s",
                                                 episode.queries[q]))
        await gateway.flush()
        if q % 2 == 1:
            print_snapshot(registry, q + 1)  # 2. live mid-burst snapshots
    answered = sum(f.result().ok for f in futures)
    print(f"   {answered}/{len(futures)} answered ok")

    print("\n3. Prometheus exposition (first 14 lines of the scrape):")
    for line in scrape(gateway, registry).splitlines()[:14]:
        print(f"   {line}")

    tracer = gateway.tracer
    print(f"\n4. traces: {tracer.sampled}/{tracer.seen} requests sampled")
    trace = tracer.completed()[-1]
    print(f"   {trace.trace_id} ({trace.meta['tenant']}, "
          f"{trace.meta['priority']}, outcome={trace.meta['outcome']}):")
    for stage, seconds in trace.stage_seconds().items():
        print(f"     {stage:<16} {1e6 * seconds:>9.1f} us")
    await gateway.close()
    await durability_cycle(registry, model, dataset)


async def durability_cycle(registry, model, dataset):
    """WAL → snapshot → recovery → replica failover, counters printed.

    Same registry as the burst, so the persist-tier series sit next to
    the gateway ones — exactly how a production scrape would see them.
    """
    print("\n5. durability: WAL → snapshot → recovery → replica kill …")
    with tempfile.TemporaryDirectory(prefix="repro-demo-") as tmp:
        base = Dataset(dataset.graph.rebuild(), dataset.task, rng=0,
                       name="kg-demo")
        store = PersistentStore(tmp, registry=registry)
        server = PromptServer(model, base, max_batch_size=4, rng=0,
                              persist=store, registry=registry)
        episode = sample_episode(base, num_ways=5, num_queries=2, rng=42)
        server.open_session("durable", episode, tenant_id="dashboard")
        rng = np.random.default_rng(11)
        server.update_graph(GraphUpdate(
            add_src=rng.integers(0, base.graph.num_nodes, size=4),
            add_dst=rng.integers(0, base.graph.num_nodes, size=4),
            add_rel=rng.integers(0, base.graph.num_relations, size=4)))
        server.save_snapshot()
        server.update_graph(GraphUpdate(
            add_src=rng.integers(0, base.graph.num_nodes, size=2),
            add_dst=rng.integers(0, base.graph.num_nodes, size=2),
            add_rel=rng.integers(0, base.graph.num_relations, size=2)))
        server.close()
        recovered = PromptServer.restore(
            model, PersistentStore(tmp, registry=registry), base.task,
            name="kg-demo", rng=0, max_batch_size=4, registry=registry)
        replayed = recovered.last_recovery_replayed
        recovered.close()

        fleet_store = PersistentStore(os.path.join(tmp, "fleet"),
                                      registry=registry)

        def factory(replica_id):
            replica_data = Dataset(dataset.graph.rebuild(), dataset.task,
                                   rng=0, name="kg-demo-fleet")
            replica = PromptServer(model, replica_data, max_batch_size=4,
                                   rng=0, persist=fleet_store,
                                   registry=registry)
            return ServingGateway(replica, auto_drain=False,
                                  registry=registry)

        fleet = ReplicaSet(factory, num_replicas=2, store=fleet_store,
                           registry=registry)
        episodes = {}
        for index, (tenant, priority) in enumerate(TENANTS):
            episodes[tenant] = sample_episode(base, num_ways=5,
                                              num_queries=2,
                                              rng=50 + index)
            fleet.open_session(tenant, f"{tenant}-d", episodes[tenant],
                               priority=priority)
        fleet.kill(fleet.route(TENANTS[0][0]))
        served = 0
        for tenant, _ in TENANTS:
            gateway = fleet.replicas[fleet.route(tenant)]
            future = gateway.submit_nowait(f"{tenant}-d",
                                           episodes[tenant].queries[1])
            await gateway.flush()
            served += bool(isinstance(future, asyncio.Future)
                           and future.result().ok)
        await fleet.close()

    def total(name):
        return registry.counter(name).sum()

    recovery = registry.histogram("repro_recovery_seconds")
    print(f"   wal_appends={total('repro_wal_appends_total'):.0f} "
          f"snapshot_writes={total('repro_snapshot_writes_total'):.0f} "
          f"recovery_replayed={replayed} "
          f"recovery_mean_ms={1e3 * recovery.mean():.1f}")
    print(f"   replica_kills={total('repro_replicaset_kills_total'):.0f} "
          f"failovers={total('repro_replicaset_failovers_total'):.0f} "
          f"served_after_failover={served}/{len(TENANTS)} "
          f"worker_respawns="
          f"{total('repro_worker_pool_respawns_total'):.0f}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="CI scale: fewer pre-training steps")
    steps = 30 if parser.parse_args().fast else 200
    config = GraphPrompterConfig(hidden_dim=24, max_subgraph_nodes=16,
                                 mutable_graph=True)
    wiki = load_dataset("wiki")
    nell = load_dataset("nell")

    print("pre-training on", wiki.name, "…")
    model = GraphPrompterModel(wiki.graph.feature_dim,
                               wiki.graph.num_relations, config)
    Pretrainer(model, wiki, PretrainConfig(steps=steps, num_ways=8),
               rng=0).train()
    target = GraphPrompterModel(nell.graph.feature_dim,
                                nell.graph.num_relations, config)
    target.load_state_dict(model.state_dict())

    dataset = Dataset(nell.graph, nell.task, rng=0)
    episodes = [sample_episode(dataset, num_ways=5, num_queries=QUERIES,
                               rng=10 + i)
                for i in range(len(TENANTS))]
    asyncio.run(main_async(target, dataset, episodes))


if __name__ == "__main__":
    main()
