"""Bring your own graph: plugging a custom dataset into GraphPrompter.

Shows the integration surface a downstream user needs:

1. build a :class:`repro.graph.Graph` from plain edge arrays + features,
2. wrap it in a :class:`repro.datasets.Dataset` (node or edge task),
3. reuse a model pre-trained elsewhere (weight shapes are dataset-
   independent) and run in-context episodes on the new graph.

The toy graph here is a tiny "movie" knowledge graph in the spirit of the
paper's Fig. 10 walk-through (actors, films, countries).

Run:  python examples/custom_dataset.py      (~30 s)
"""

import numpy as np

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    GraphPrompterPipeline,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.datasets import Dataset, EDGE_TASK, load_dataset
from repro.datasets.synthetic import semantic_basis
from repro.graph import Graph


def build_movie_graph(num_people=120, num_films=60, num_countries=12,
                      feature_dim=32, rng_seed=3) -> Graph:
    """A typed KG: person -[acted_in]-> film, person -[citizen_of]-> country,
    film -[produced_in]-> country, person -[collaborates]-> person."""
    rng = np.random.default_rng(rng_seed)
    total = num_people + num_films + num_countries
    people = np.arange(num_people)
    films = num_people + np.arange(num_films)
    countries = num_people + num_films + np.arange(num_countries)

    # Entity features live in the shared semantic space so a pre-trained
    # model can read them (in a real deployment: the same text encoder).
    basis = semantic_basis(feature_dim)
    type_protos = basis[:3]
    features = np.zeros((total, feature_dim))
    features[people] = type_protos[0]
    features[films] = type_protos[1]
    features[countries] = type_protos[2]
    features += 0.6 * rng.normal(size=features.shape)

    src, dst, rel = [], [], []
    for person in people:
        for film in rng.choice(films, size=2, replace=False):
            src.append(person), dst.append(film), rel.append(0)   # acted_in
        src.append(person)
        dst.append(int(rng.choice(countries)))
        rel.append(1)                                             # citizen_of
        src.append(person)
        dst.append(int(rng.choice(people)))
        rel.append(3)                                             # collaborates
    for film in films:
        src.append(film)
        dst.append(int(rng.choice(countries)))
        rel.append(2)                                             # produced_in

    relation_features = basis[3:7] * 1.0  # one semantic direction per relation
    return Graph(
        total, np.array(src), np.array(dst), rel=np.array(rel),
        num_relations=4,
        node_features=features,
        relation_features=relation_features,
        name="movie-kg",
    )


def main():
    # A model pre-trained on the Wiki analogue — in practice you would ship
    # these weights with your application.
    config = GraphPrompterConfig(hidden_dim=24, max_subgraph_nodes=16)
    wiki = load_dataset("wiki")
    print("pre-training reference model on", wiki.name, "…")
    pretrained = GraphPrompterModel(wiki.graph.feature_dim,
                                    wiki.graph.num_relations, config)
    Pretrainer(pretrained, wiki, PretrainConfig(steps=150, num_ways=6),
               rng=0).train()

    # Your own graph + task.
    movie_graph = build_movie_graph()
    movies = Dataset(movie_graph, EDGE_TASK, name="movies", rng=0)
    print(f"custom dataset: {movies}")

    # Transfer: same weight shapes, zero gradient updates.
    model = GraphPrompterModel(movie_graph.feature_dim,
                               movie_graph.num_relations, config)
    model.load_state_dict(pretrained.state_dict())

    episode = sample_episode(movies, num_ways=4,
                             num_candidates_per_class=10,
                             num_queries=40, rng=9)
    result = GraphPrompterPipeline(model, movies, rng=10).run_episode(
        episode, shots=3)
    relation_names = ["acted_in", "citizen_of", "produced_in",
                      "collaborates"]
    picked = [relation_names[c] for c in episode.way_classes]
    print(f"4-way relation classification over {picked}")
    print(f"in-context accuracy: {result.accuracy:.3f} "
          f"(chance = {1 / episode.num_ways:.3f})")


if __name__ == "__main__":
    main()
