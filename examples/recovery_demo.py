"""Durability demo: snapshot + WAL recovery, and replica failover.

Walks the crash-recovery story end to end:

1. a server with a `PersistentStore` attached serves live traffic and
   absorbs a graph update (WAL-logged before the in-memory apply);
2. the process "crashes" at the worst moment — an update is durably
   logged but never applied, and a half-written record is torn at the
   WAL tail;
3. `PromptServer.restore` warm-starts from the directory the corpse
   left behind (snapshot → ordered replay → manifest-ordered session
   re-open) and serves the next round **bit-identically** to an
   uninterrupted reference run;
4. a 2-replica `ReplicaSet` loses a replica mid-flight: every in-flight
   request settles with a typed `Unavailable`, tenants fail over to the
   survivor, and serving continues.

Run:  python examples/recovery_demo.py      (~1 min; --fast for CI scale)
"""

import argparse
import asyncio
import tempfile

import numpy as np

from repro.core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
    sample_episode,
)
from repro.datasets import Dataset, load_dataset
from repro.graph import GraphUpdate
from repro.persist import PersistentStore
from repro.serving import PromptServer, ReplicaSet, ServingGateway

NUM_SESSIONS = 3
QUERIES = 6


def fresh_dataset():
    base = load_dataset("nell")
    return Dataset(base.graph.rebuild(), base.task, name=base.name, rng=0)


def make_update(graph, episodes, seed):
    """A seeded update that touches every session's first candidate."""
    rng = np.random.default_rng(seed)
    anchors = np.array(sorted({int(ep.candidates[0].nodes[0])
                               for ep in episodes}), dtype=np.int64)
    _, _, _, live = graph.live_edges()
    return GraphUpdate(
        add_src=np.concatenate(
            [anchors, rng.integers(0, graph.num_nodes, size=6)]),
        add_dst=rng.integers(0, graph.num_nodes, size=anchors.size + 6),
        add_rel=rng.integers(0, graph.num_relations,
                             size=anchors.size + 6),
        remove_edges=rng.choice(live, size=4, replace=False))


def serve_round(server, episodes, queries):
    for q in queries:
        for i, episode in enumerate(episodes):
            server.submit(f"session-{i}", episode.queries[q])
    return [(r.session_id, r.prediction) for r in server.drain()]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="CI scale: fewer pre-training steps")
    steps = 30 if parser.parse_args().fast else 120
    config = GraphPrompterConfig(hidden_dim=24, max_subgraph_nodes=16,
                                 mutable_graph=True)
    dataset = fresh_dataset()
    model = GraphPrompterModel(dataset.graph.feature_dim,
                               dataset.graph.num_relations, config)
    Pretrainer(model, dataset, PretrainConfig(steps=steps, num_ways=5),
               rng=0).train()
    episodes = [sample_episode(dataset, num_ways=5, num_queries=QUERIES,
                               rng=100 + i) for i in range(NUM_SESSIONS)]

    with tempfile.TemporaryDirectory(prefix="recovery-demo-") as tmp:
        # 1. Durable serving: snapshot on first attach, WAL per update.
        store = PersistentStore(tmp + "/store")
        server = PromptServer(model, dataset, max_batch_size=8, rng=0,
                              persist=store)
        for i, episode in enumerate(episodes):
            server.open_session(f"session-{i}", episode)
        serve_round(server, episodes, range(2))
        server.update_graph(make_update(dataset.graph, episodes, 7))
        serve_round(server, episodes, range(2, 4))
        print(f"served 2 rounds around 1 update; graph version "
              f"{dataset.graph.version}, WAL has {len(store.wal)} records")

        # 2. Crash at the write-ahead point: the next update is durably
        #    logged (fsynced) but the process dies before applying it.
        doomed = make_update(dataset.graph, episodes, 8)
        store.log_update(doomed, base_version=dataset.graph.version)
        server.close()
        print("crashed: 1 update durable but unapplied, sessions lost")

        # 3. Warm-start and prove bit-identity against a reference run
        #    that never crashed (same timeline, update applied normally).
        reference_ds = fresh_dataset()
        reference = PromptServer(model, reference_ds, max_batch_size=8,
                                 rng=0)
        for i, episode in enumerate(episodes):
            reference.open_session(f"session-{i}", episode)
        serve_round(reference, episodes, range(2))
        reference.update_graph(make_update(reference_ds.graph, episodes, 7))
        serve_round(reference, episodes, range(2, 4))
        reference.update_graph(make_update(reference_ds.graph, episodes, 8))
        expected = serve_round(reference, episodes, range(4, 6))

        recovered = PromptServer.restore(
            model, PersistentStore(tmp + "/store"), dataset.task,
            rng=0, max_batch_size=8)
        print(f"recovered: replayed {recovered.last_recovery_replayed} WAL "
              f"records, re-opened {len(recovered.sessions)} sessions, "
              f"graph version {recovered.dataset.graph.version}")
        got = serve_round(recovered, episodes, range(4, 6))
        print(f"post-crash round bit-identical to uninterrupted run: "
              f"{got == expected}")
        recovered.close()
        reference.close()

        # 4. Replica failover: two gateways over one shared store.
        async def failover():
            shared = PersistentStore(tmp + "/fleet")

            def replica(replica_id):
                srv = PromptServer(model, fresh_dataset(),
                                   max_batch_size=8, rng=0, persist=shared)
                return ServingGateway(srv, auto_drain=False)

            rs = ReplicaSet(replica, num_replicas=2, store=shared)
            tenants = [f"tenant-{i}" for i in range(NUM_SESSIONS)]
            for i, tenant in enumerate(tenants):
                rs.open_session(tenant, f"{tenant}-s", episodes[i])
            victim = rs.route(tenants[0])
            inflight = [rs.replicas[victim].submit_nowait(
                f"{tenant}-s", episodes[i].queries[0])
                for i, tenant in enumerate(tenants)
                if rs.route(tenant) == victim]
            settled = rs.kill(victim)
            print(f"killed replica {victim}: {settled} in-flight "
                  f"requests settled with typed Unavailable "
                  f"({sum(not f.result().ok for f in inflight)} not-ok)")
            survivor = 1 - victim
            futures = [rs.replicas[rs.route(tenant)].submit_nowait(
                f"{tenant}-s", episodes[i].queries[1])
                for i, tenant in enumerate(tenants)]
            await rs.replicas[survivor].flush()
            print(f"failover: {sum(f.result().ok for f in futures)}/"
                  f"{len(tenants)} tenants served by replica {survivor}")
            await rs.close()

        asyncio.run(failover())


if __name__ == "__main__":
    main()
