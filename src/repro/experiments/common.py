"""Shared infrastructure for the per-table / per-figure experiments.

Pre-training is by far the most expensive step, so trained artifacts
(GraphPrompter state dicts, contrastive encoders, OFA joint models) are
cached in-process *and* on disk under ``.cache/repro-artifacts`` keyed by
their configuration, letting every benchmark share one pre-training run.

The paper's protocol constants live here: 3-shot prompts, ``N = 10``
candidates per class, pre-train MAG240M→arXiv for node tasks and
Wiki→{ConceptNet, FB15K-237, NELL} for edge tasks.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

import numpy as np

from ..baselines import (
    ContrastiveBaseline,
    FinetuneBaseline,
    GraphPrompterMethod,
    NoPretrainBaseline,
    OFALikeBaseline,
    ProdigyBaseline,
    ProGBaseline,
)
from ..core import (
    GraphPrompterConfig,
    GraphPrompterModel,
    PretrainConfig,
    Pretrainer,
    TrainingHistory,
)
from ..datasets import Dataset, load_dataset
from ..viz import format_table

__all__ = [
    "ExperimentContext",
    "TableResult",
    "default_config",
    "CACHE_DIR",
]

CACHE_DIR = os.environ.get(
    "REPRO_CACHE_DIR",
    os.path.join(os.path.dirname(__file__), "..", "..", "..", ".cache",
                 "repro-artifacts"),
)


def default_config(**overrides) -> GraphPrompterConfig:
    """The CPU-scale analogue of the paper's model configuration."""
    base = dict(hidden_dim=24, max_subgraph_nodes=16, num_gnn_layers=2)
    base.update(overrides)
    return GraphPrompterConfig(**base)


@dataclass
class TableResult:
    """A reproduced table/figure: printable rows + structured data."""

    title: str
    headers: list[str]
    rows: list[list]
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


# Bump when a weight-shape-affecting code change invalidates cached
# artifacts (e.g. new attention parameterisation).
_CACHE_VERSION = "v2"


def _hash_key(*parts) -> str:
    text = "|".join(str(p) for p in (_CACHE_VERSION,) + parts)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


class ExperimentContext:
    """Caches datasets and pre-trained artifacts across experiments.

    Parameters
    ----------
    pretrain_steps:
        Steps for GraphPrompter/Prodigy pre-training (paper: 10k on GPU).
    fast:
        Shrinks every knob for smoke tests (used by the test suite).
    """

    def __init__(self, pretrain_steps: int = 400, fast: bool = False,
                 use_disk_cache: bool = True):
        self.fast = fast
        self.pretrain_steps = 60 if fast else pretrain_steps
        self.contrastive_steps = 30 if fast else 120
        self.ofa_steps_per_dataset = 10 if fast else 40
        self.use_disk_cache = use_disk_cache
        self._datasets: dict[str, Dataset] = {}
        self._states: dict[str, dict] = {}
        self._histories: dict[str, TrainingHistory] = {}
        self._encoders: dict[str, object] = {}
        self._methods: dict[str, object] = {}

    # ------------------------------------------------------------------
    def dataset(self, name: str) -> Dataset:
        if name not in self._datasets:
            self._datasets[name] = load_dataset(name)
        return self._datasets[name]

    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> str:
        return os.path.join(CACHE_DIR, f"{key}.npz")

    def _load_from_disk(self, key: str) -> dict | None:
        path = self._disk_path(key)
        if not (self.use_disk_cache and os.path.exists(path)):
            return None
        with np.load(path) as archive:
            return {k: archive[k] for k in archive.files}

    def _save_to_disk(self, key: str, state: dict) -> None:
        if not self.use_disk_cache:
            return
        os.makedirs(CACHE_DIR, exist_ok=True)
        np.savez(self._disk_path(key), **state)

    # ------------------------------------------------------------------
    def pretrained_state(self, source: str,
                         config: GraphPrompterConfig | None = None,
                         seed: int = 0) -> dict:
        """State dict of a GraphPrompter model pre-trained on ``source``."""
        config = config or default_config()
        key = _hash_key("gp", source, config, self.pretrain_steps, seed)
        if key in self._states:
            return self._states[key]
        state = self._load_from_disk(key)
        if state is None:
            dataset = self.dataset(source)
            model = GraphPrompterModel(dataset.graph.feature_dim,
                                       dataset.graph.num_relations, config)
            trainer = Pretrainer(
                model, dataset,
                PretrainConfig(steps=self.pretrain_steps, num_ways=8),
                rng=seed)
            self._histories[key] = trainer.train()
            state = model.state_dict()
            self._save_to_disk(key, state)
        self._states[key] = state
        return state

    def pretraining_history(self, source: str,
                            config: GraphPrompterConfig | None = None,
                            seed: int = 0) -> TrainingHistory:
        """Training history (Fig. 9); forces an in-process pre-train run."""
        config = config or default_config()
        key = _hash_key("gp", source, config, self.pretrain_steps, seed)
        if key not in self._histories:
            # Disk-cached state has no history: retrain in memory.
            dataset = self.dataset(source)
            model = GraphPrompterModel(dataset.graph.feature_dim,
                                       dataset.graph.num_relations, config)
            trainer = Pretrainer(
                model, dataset,
                PretrainConfig(steps=self.pretrain_steps, num_ways=8),
                rng=seed)
            self._histories[key] = trainer.train()
            self._states[key] = model.state_dict()
            self._save_to_disk(key, self._states[key])
        return self._histories[key]

    # ------------------------------------------------------------------
    def contrastive_encoder(self, source: str,
                            config: GraphPrompterConfig | None = None):
        """Contrastively pre-trained encoder shared by three baselines."""
        config = config or default_config()
        key = _hash_key("contrastive", source, config,
                        self.contrastive_steps)
        if key not in self._encoders:
            baseline = ContrastiveBaseline.pretrained(
                self.dataset(source), config,
                steps=self.contrastive_steps, rng=0)
            self._encoders[key] = baseline.encoder
        return self._encoders[key]

    # ------------------------------------------------------------------
    def methods(self, source: str, names: list[str],
                config: GraphPrompterConfig | None = None) -> list:
        """Build the requested evaluation methods sharing cached artifacts.

        ``names`` may contain: NoPretrain, Contrastive, Finetune, Prodigy,
        ProG, OFA, GraphPrompter.
        """
        config = config or default_config()
        feature_dim = self.dataset(source).graph.feature_dim
        built = []
        for name in names:
            key = _hash_key("method", name, source, config,
                            self.pretrain_steps)
            if key in self._methods:
                built.append(self._methods[key])
                continue
            if name == "NoPretrain":
                method = NoPretrainBaseline(config)
            elif name == "Contrastive":
                method = ContrastiveBaseline(
                    self.contrastive_encoder(source, config), config)
            elif name == "Finetune":
                method = FinetuneBaseline(
                    self.contrastive_encoder(source, config), config,
                    head_steps=20 if self.fast else 60)
            elif name == "Prodigy":
                method = ProdigyBaseline(
                    self.pretrained_state(source, config), config,
                    feature_dim)
            elif name == "ProG":
                method = ProGBaseline(
                    self.contrastive_encoder(source, config), config,
                    tune_steps=5 if self.fast else 25)
            elif name == "OFA":
                targets = ["wiki", "conceptnet", "fb15k237"]
                if source == "mag240m":
                    targets = ["mag240m", "arxiv"]
                method = OFALikeBaseline.trained_on(
                    [self.dataset(t) for t in targets], config,
                    steps_per_dataset=self.ofa_steps_per_dataset)
            elif name == "GraphPrompter":
                method = GraphPrompterMethod(
                    self.pretrained_state(source, config), config,
                    feature_dim)
            else:
                raise KeyError(f"unknown method {name!r}")
            self._methods[key] = method
            built.append(method)
        return built
