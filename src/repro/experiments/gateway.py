"""serve-gateway / serve-bench-gateway — multi-tenant QoS experiments.

Not paper artifacts: these characterise the async serving gateway
(:mod:`repro.serving.gateway`) that fronts :class:`PromptServer` with
admission control, priority batching, and load shedding — the regime
PRODIGY-style prompt serving actually runs in (bursty, heterogeneous,
multi-tenant traffic).

``serve-bench-gateway`` runs two phases and **raises** (the CI
gateway-smoke gate) when either QoS contract breaks:

* **Equivalence** — a mixed-tenant workload where everything is admitted:
  every prediction that comes back through the gateway must be
  bit-identical to replaying the same per-session query streams directly
  on a cold :class:`PromptServer` (admission, priority reordering across
  sessions, and deadline batching must never change answers).
* **Overload** — the same tenants offer 2× the admission-queue capacity
  per round.  Required outcomes: every submission resolves (admitted →
  result, shed → typed ``Overloaded``; zero hangs), the interactive
  class is never shed and its p95 queue wait stays under its deadline
  budget, lower classes absorb the shedding, and the admitted subset is
  again bit-identical to a direct replay.

``serve-gateway`` is the CLI demo driver: a smaller version of the same
traffic with per-tenant rate limits switched on, printing the tenant
ledger table (admitted/shed/QPS/p95 wait/deadline misses).
"""

from __future__ import annotations

import asyncio
import time

from ..core import GraphPrompterModel, sample_episode
from ..obs import MetricsRegistry
from ..serving import Overloaded, Priority, PromptServer, ServingGateway
from ..serving.qos import (
    SHED_QUEUE_FULL,
    SHED_QUOTA_EXHAUSTED,
    SHED_RATE_LIMITED,
)
from .common import ExperimentContext, TableResult, default_config

__all__ = ["serve_bench_gateway", "serve_gateway_demo"]

#: (tenant id, priority, number of sessions) — the fixed tenant mix both
#: experiments replay.  Interactive first: within each burst round the
#: most urgent traffic reaches admission first, mirroring a front door
#: that drains its listener queue in priority order.
TENANT_MIX = (
    ("acme-interactive", Priority.INTERACTIVE, 2),
    ("globex-batch", Priority.BATCH, 2),
    ("initech-background", Priority.BACKGROUND, 1),
)


def _load_model(context: ExperimentContext, source: str, target: str):
    config = default_config()
    state = context.pretrained_state(source)
    dataset = context.dataset(target)
    model = GraphPrompterModel(dataset.graph.feature_dim,
                               dataset.graph.num_relations, config)
    model.load_state_dict(state)
    return model, dataset


def _tenant_sessions(num_ways: int, queries: int, seed: int, dataset):
    """One (tenant, priority, session_id, episode) row per session."""
    plan = []
    index = 0
    for tenant_id, priority, sessions in TENANT_MIX:
        for _ in range(sessions):
            episode = sample_episode(dataset, num_ways=num_ways,
                                     num_queries=queries,
                                     rng=seed * 1000 + index)
            plan.append((tenant_id, priority, f"session-{index}", episode))
            index += 1
    return plan


def _replay_direct(model, dataset, plan, admitted, seed: int) -> dict:
    """Per-query reference predictions for the admitted subset.

    Opens the same sessions in the same order on a cold server (same rng
    seed → same per-session Augmenter streams), then serves each
    session's admitted queries one by one in their original order.
    """
    server = PromptServer(model, dataset, max_batch_size=1, rng=seed)
    for _, _, session_id, episode in plan:
        server.open_session(session_id, episode)
    episodes = {session_id: episode
                for _, _, session_id, episode in plan}
    reference: dict[tuple[str, int], int] = {}
    for session_id, query_index in admitted:
        server.submit(session_id,
                      episodes[session_id].queries[query_index])
        (result,) = server.drain()
        reference[(session_id, query_index)] = result.prediction
    return reference


async def _run_rounds(gateway, plan, rounds: int, per_round: int):
    """Submit ``per_round`` queries per session per round, flush between.

    Returns (outcomes, admitted order, elapsed seconds): ``outcomes`` maps
    (session, query index) → GatewayResult | Overloaded, ``admitted``
    lists the admitted keys in submission order.
    """
    outcomes: dict[tuple[str, int], object] = {}
    admitted: list[tuple[str, int]] = []
    futures: dict[tuple[str, int], asyncio.Future] = {}
    start = time.perf_counter()
    for round_id in range(rounds):
        for offset in range(per_round):
            query_index = round_id * per_round + offset
            for _, _, session_id, episode in plan:
                key = (session_id, query_index)
                submitted = gateway.submit_nowait(
                    session_id, episode.queries[query_index])
                if isinstance(submitted, Overloaded):
                    outcomes[key] = submitted
                else:
                    futures[key] = submitted
                    admitted.append(key)
        await gateway.flush()
    await gateway.flush()
    elapsed = time.perf_counter() - start
    for key, future in futures.items():
        if not future.done():
            raise RuntimeError(
                f"request {key} never resolved — the gateway must never "
                f"hang an admitted request")
        outcomes[key] = future.result()
    return outcomes, admitted, elapsed


def _check_identical(outcomes, admitted, reference) -> None:
    for key in admitted:
        prediction = outcomes[key].prediction
        if prediction != reference[key]:
            raise RuntimeError(
                f"gateway prediction diverged from direct serving at "
                f"{key}: {prediction} != {reference[key]} — admission and "
                f"priority batching must never change answers")


def serve_bench_gateway(context: ExperimentContext,
                        source: str = "wiki", target: str = "nell",
                        num_ways: int = 5, seed: int = 0) -> TableResult:
    """Gateway equivalence + 2×-overload QoS bench (raises on violation)."""
    model, dataset = _load_model(context, source, target)
    rounds = 2 if context.fast else 3
    per_round = 3 if context.fast else 6
    queries = rounds * per_round
    plan = _tenant_sessions(num_ways, queries, seed, dataset)
    num_sessions = len(plan)
    interactive_budget_s = model.config.gateway_deadline_interactive_s

    headers = ["Phase", "Tenant", "Class", "Submitted", "Admitted",
               "Shed", "p95 wait ms", "Miss", "QPS"]
    rows: list[list] = []
    data: dict = {"phases": {}}

    def tenant_rows(phase: str, stats, qps: float) -> None:
        for tenant in stats.tenants:
            rows.append([
                phase, tenant.tenant_id, tenant.priority.name.lower(),
                tenant.submitted, tenant.admitted, tenant.shed,
                f"{1000.0 * tenant.wait_p95_s:.2f}",
                tenant.deadline_misses, f"{qps:.1f}"])
        data["phases"][phase] = {
            "qps": qps,
            "tenants": {t.tenant_id: {
                "priority": t.priority.name,
                "submitted": t.submitted, "admitted": t.admitted,
                "shed": t.shed, "shed_rate": t.shed_rate,
                "wait_p50_s": t.wait_p50_s, "wait_p95_s": t.wait_p95_s,
                "deadline_misses": t.deadline_misses,
                "qps": t.qps} for t in stats.tenants},
        }

    async def run() -> None:
        # ------------------------------------------------------------------
        # Phase A: no shedding pressure — pure equivalence + throughput.
        # ------------------------------------------------------------------
        server = PromptServer(model, dataset, rng=seed)
        gateway = ServingGateway(server, max_queue=4096, max_batch_size=8,
                                 auto_drain=False)
        for tenant_id, priority, session_id, episode in plan:
            gateway.open_session(tenant_id, session_id, episode,
                                 priority=priority)
        outcomes, admitted, elapsed = await _run_rounds(
            gateway, plan, rounds, per_round)
        if len(admitted) != queries * num_sessions:
            raise RuntimeError("equivalence phase must admit everything")
        reference = _replay_direct(model, dataset, plan, admitted, seed)
        _check_identical(outcomes, admitted, reference)
        tenant_rows("equivalence", gateway.stats,
                    len(admitted) / elapsed)
        data["phases"]["equivalence"]["identical"] = True
        await gateway.close()

        # ------------------------------------------------------------------
        # Phase B: 2× overload — bounded interactive latency, typed sheds.
        # ------------------------------------------------------------------
        # Each round offers rounds × per_round × sessions requests against
        # an admission queue sized to half of that: 2×-capacity overload.
        max_queue = max(num_sessions * per_round // 2, 4)
        server = PromptServer(model, dataset, rng=seed)
        # A private registry for this phase: its live shed counters are
        # the source of the per-reason breakdown below, so they must not
        # mix with phase A's (or any ambient) counts.
        registry = MetricsRegistry()
        gateway = ServingGateway(server, max_queue=max_queue,
                                 max_batch_size=8, auto_drain=False,
                                 registry=registry)
        for tenant_id, priority, session_id, episode in plan:
            gateway.open_session(tenant_id, session_id, episode,
                                 priority=priority)
        outcomes, admitted, elapsed = await _run_rounds(
            gateway, plan, rounds, per_round)
        stats = gateway.stats
        reference = _replay_direct(model, dataset, plan, admitted, seed)
        _check_identical(outcomes, admitted, reference)

        interactive = [t for t in stats.tenants
                       if t.priority == Priority.INTERACTIVE]
        lower = [t for t in stats.tenants
                 if t.priority != Priority.INTERACTIVE]
        if any(t.shed for t in interactive):
            raise RuntimeError(
                "interactive traffic was shed under 2x overload — lower "
                "classes must absorb the shedding first")
        if not any(t.shed for t in lower):
            raise RuntimeError(
                "2x overload shed nothing — admission bound not binding")
        worst_wait = max(t.wait_p95_s for t in interactive)
        if worst_wait > interactive_budget_s:
            raise RuntimeError(
                f"interactive p95 queue wait {worst_wait * 1e3:.1f}ms "
                f"exceeded the {interactive_budget_s * 1e3:.0f}ms deadline "
                f"budget under overload — priority drain failed to bound "
                f"latency")
        # Per-reason shed breakdown from the live registry counters (the
        # observability layer's view of the same events the ledgers
        # aggregate) — and a consistency check that the two agree.
        shed_counter = registry.counter("repro_gateway_shed_total")
        shed_reasons = {
            reason: int(shed_counter.sum(reason=reason))
            for reason in (SHED_QUOTA_EXHAUSTED, SHED_RATE_LIMITED,
                           SHED_QUEUE_FULL)
        }
        shed_total = sum(t.shed for t in stats.tenants)
        if sum(shed_reasons.values()) != shed_total:
            raise RuntimeError(
                f"shed-reason breakdown {shed_reasons} does not sum to "
                f"the ledger shed total {shed_total} — registry counters "
                f"and tenant ledgers disagree")
        tenant_rows("2x-overload", stats, len(admitted) / elapsed)
        data["phases"]["2x-overload"].update({
            "identical": True, "max_queue": max_queue,
            "offered": queries * num_sessions,
            "admitted": len(admitted),
            "interactive_wait_p95_s": worst_wait,
            "interactive_budget_s": interactive_budget_s,
            "shed_total": shed_total,
            "shed_reasons": shed_reasons,
        })
        await gateway.close()

    asyncio.run(run())
    shed = data["phases"]["2x-overload"]["shed_total"]
    offered = data["phases"]["2x-overload"]["offered"]
    rows.append(["2x-overload", "(total)", "-", offered,
                 data["phases"]["2x-overload"]["admitted"], shed, "-", "-",
                 "identical: yes"])
    breakdown = data["phases"]["2x-overload"]["shed_reasons"]
    rows.append(["2x-overload", "(shed reasons)", "-", "-", "-", shed,
                 "-", "-",
                 " ".join(f"{reason}={count}"
                          for reason, count in breakdown.items())])
    return TableResult(
        title=(f"serve-bench-gateway: {len(TENANT_MIX)} tenants / "
               f"{sum(s for _, _, s in TENANT_MIX)} sessions × "
               f"{rounds * per_round} queries, {num_ways}-way {target}"),
        headers=headers, rows=rows, data=data)


def serve_gateway_demo(context: ExperimentContext,
                       source: str = "wiki", target: str = "nell",
                       num_ways: int = 5, seed: int = 0) -> TableResult:
    """CLI demo: rate-limited mixed-tenant traffic through the gateway."""
    model, dataset = _load_model(context, source, target)
    rounds = 2
    per_round = 2 if context.fast else 4
    queries = rounds * per_round
    plan = _tenant_sessions(num_ways, queries, seed, dataset)

    async def run():
        server = PromptServer(model, dataset, rng=seed)
        # A tight per-tenant burst allowance: a tenant may burst roughly
        # a round's worth of queries, then its bucket has to refill — so
        # the two-session tenants overrun their rate and collect typed
        # rate-limited sheds while the single-session tenant stays under.
        gateway = ServingGateway(server, max_batch_size=8,
                                 tenant_rate_qps=50.0,
                                 tenant_burst=float(2 * per_round + 1),
                                 auto_drain=False)
        for tenant_id, priority, session_id, episode in plan:
            gateway.open_session(tenant_id, session_id, episode,
                                 priority=priority)
        outcomes, admitted, elapsed = await _run_rounds(
            gateway, plan, rounds, per_round)
        stats = gateway.stats
        await gateway.close()
        return outcomes, admitted, elapsed, stats

    outcomes, admitted, elapsed, stats = asyncio.run(run())
    headers = ["Tenant", "Class", "Submitted", "Admitted", "Shed",
               "Shed rate", "QPS", "p50 ms", "p95 ms", "Miss"]
    rows = []
    data = {"tenants": {}, "admitted": len(admitted),
            "elapsed_s": elapsed}
    for tenant in stats.tenants:
        rows.append([
            tenant.tenant_id, tenant.priority.name.lower(),
            tenant.submitted, tenant.admitted, tenant.shed,
            f"{100.0 * tenant.shed_rate:.0f}%", f"{tenant.qps:.1f}",
            f"{1000.0 * tenant.wait_p50_s:.2f}",
            f"{1000.0 * tenant.wait_p95_s:.2f}",
            tenant.deadline_misses])
        data["tenants"][tenant.tenant_id] = {
            "priority": tenant.priority.name,
            "submitted": tenant.submitted,
            "admitted": tenant.admitted, "shed": tenant.shed,
            "qps": tenant.qps, "wait_p95_s": tenant.wait_p95_s,
            "deadline_misses": tenant.deadline_misses,
        }
    shed_kinds = sorted({outcome.reason
                         for outcome in outcomes.values()
                         if isinstance(outcome, Overloaded)})
    rows.append(["(total)", "-", len(outcomes), len(admitted),
                 len(outcomes) - len(admitted),
                 "reasons: " + (", ".join(shed_kinds) or "none"),
                 f"{len(admitted) / elapsed:.1f}", "-", "-", "-"])
    return TableResult(
        title=(f"serve-gateway: {len(TENANT_MIX)} tenants, "
               f"{queries} queries/session, rate-limited demo"),
        headers=headers, rows=rows, data=data)
