"""serve-bench-recovery — crash/recovery differential + replica failover.

Not a paper artifact: this experiment certifies the durability tier
(:mod:`repro.persist`) end to end and **raises** (the CI recovery-smoke
gate) when any contract breaks:

* **Crash differential** — a "doomed" server (snapshot + WAL attached)
  opens sessions, serves two query rounds around one applied
  :class:`~repro.graph.GraphUpdate`, durably logs a second update, and
  dies *between the fsync and the in-memory apply* — the worst-case
  write-ahead crash point — leaving a torn half-record at the WAL tail
  for good measure.  A recovered server
  (:meth:`~repro.serving.PromptServer.restore`: snapshot-load → ordered
  WAL replay → manifest-ordered session re-open) then serves the final
  query round, which must be **bit-identical** (predictions and
  confidences) to an uninterrupted reference run that applied both
  updates normally.  Checked for the monolithic server and K-shard
  configurations — a sharded restore must rebuild the *same* partition
  from the snapshot's owner map.
* **Real ``kill -9``** (full mode only) — the doomed timeline runs in a
  subprocess that ``SIGKILL``s itself at the write-ahead point; the
  parent recovers from the directory the corpse left behind.  Fast/CI
  mode simulates the same crash in-process (abandon the server after
  logging, inject the torn tail by hand).
* **Replica failover** — a 2-replica :class:`~repro.serving.ReplicaSet`
  over one shared store serves several tenants, absorbs one fleet-wide
  update (logged once, fanned out), then loses a replica while requests
  are in flight.  Required outcomes: every in-flight request on the dead
  replica settles with a typed :class:`~repro.serving.Unavailable`
  (zero hangs), every tenant re-routes to the survivor — sessions
  re-opened from the shared manifests — and the next round serves all
  tenants successfully.

The updates deliberately touch every session's seed nodes so the
reference run invalidates (and re-anchors) all sessions — making its
final round equivalent to the recovered server's freshly re-opened
sessions, which is exactly the state a real restart is in.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile

import numpy as np

from ..core import GraphPrompterModel, sample_episode
from ..datasets import Dataset, load_dataset
from ..graph import GraphUpdate
from ..nn import load_state, save_state
from ..persist import PersistentStore
from ..persist.wal import _record_crc, update_to_jsonable
from ..serving import (
    Priority,
    PromptServer,
    ReplicaSet,
    ServingGateway,
    Unavailable,
)
from .common import ExperimentContext, TableResult, default_config

__all__ = ["serve_bench_recovery"]

#: Rounds in every timeline: served, update, served, update+crash, served.
NUM_ROUNDS = 3


def _touching_update(graph, episodes, rng: np.random.Generator,
                     num_add: int, num_remove: int,
                     num_new_nodes: int = 0) -> GraphUpdate:
    """A seeded mutation guaranteed to invalidate *every* session.

    One added edge is anchored at each episode's first candidate node, so
    each session's dependent-node set intersects the touched region; the
    rest is uniform noise like :func:`..serving.random_graph_update`.
    """
    seeds = np.array(sorted({int(ep.candidates[0].nodes[0])
                             for ep in episodes}), dtype=np.int64)
    total_nodes = graph.num_nodes + num_new_nodes
    extra = max(num_add - seeds.size, 0)
    add_src = np.concatenate(
        [seeds, rng.integers(0, total_nodes, size=extra)])
    _, _, _, live_ids = graph.live_edges()
    num_remove = min(num_remove, live_ids.size)
    features = None
    if num_new_nodes:
        features = rng.normal(size=(num_new_nodes, graph.feature_dim))
    return GraphUpdate(
        add_src=add_src,
        add_dst=rng.integers(0, total_nodes, size=add_src.size),
        add_rel=rng.integers(0, graph.num_relations, size=add_src.size),
        remove_edges=rng.choice(live_ids, size=num_remove, replace=False),
        add_node_features=features,
    )


def _build_workload(target: str, seed: int, num_ways: int,
                    num_sessions: int, queries_per_session: int):
    """Deterministic (dataset, episodes): identical in every process.

    Each run gets a private graph copy (``rebuild()``) so mutations never
    leak across the doomed / reference / recovered runs — or into the
    experiment context's shared dataset cache.
    """
    base = load_dataset(target)
    dataset = Dataset(base.graph.rebuild(), base.task, name=base.name,
                      rng=seed)
    episodes = [
        sample_episode(dataset, num_ways=num_ways,
                       num_queries=queries_per_session,
                       rng=seed * 1000 + i)
        for i in range(num_sessions)
    ]
    return dataset, episodes


def _make_server(model, dataset, seed: int, num_shards: int,
                 persist: PersistentStore | None = None) -> PromptServer:
    return PromptServer(model, dataset, max_batch_size=8, rng=seed,
                        num_shards=num_shards, num_workers=num_shards,
                        worker_backend="serial", persist=persist)


def _serve_round(server: PromptServer, episodes, round_id: int):
    per_round = episodes[0].num_queries // NUM_ROUNDS
    for q in range(round_id * per_round, (round_id + 1) * per_round):
        for i, episode in enumerate(episodes):
            server.submit(f"session-{i}", episode.queries[q])
    return server.drain()


def _final_round(server: PromptServer, episodes) -> list[tuple]:
    """The post-crash round both sides of the differential compare."""
    return [(r.session_id, r.prediction, float(r.confidence))
            for r in _serve_round(server, episodes, NUM_ROUNDS - 1)]


def _pre_crash_timeline(server: PromptServer, episodes,
                        seed: int) -> GraphUpdate:
    """Everything both timelines share before the crash point.

    Opens sessions, serves rounds 0-1 around one applied update, then
    *constructs* (but does not apply) the second update.  The doomed run
    WAL-logs it and dies; the reference run applies it and keeps going.
    """
    graph = server.dataset.graph
    for i, episode in enumerate(episodes):
        server.open_session(f"session-{i}", episode)
    rng = np.random.default_rng(seed + 777)
    grow = max(graph.num_live_edges // 30, 6)
    _serve_round(server, episodes, 0)
    server.update_graph(
        _touching_update(graph, episodes, rng, grow, grow // 2))
    _serve_round(server, episodes, 1)
    return _touching_update(graph, episodes, rng, grow, grow // 2,
                            num_new_nodes=2)


def _inject_torn_tail(persist: PersistentStore, graph, episodes,
                      seed: int) -> None:
    """Append the first half of a *valid* record — death mid-``write``.

    Recovery must silently drop this torn tail (the update was never
    acknowledged) while still replaying every intact record before it.
    """
    update = _touching_update(graph, episodes,
                              np.random.default_rng(seed + 999), 4, 2)
    payload = update_to_jsonable(update)
    seq = persist.wal._next_seq
    record = {"seq": seq, "base_version": graph.version,
              "update": payload,
              "crc": _record_crc(seq, graph.version, payload)}
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    with open(persist.wal.path, "a", encoding="utf-8") as handle:
        handle.write(line[:max(len(line) // 2, 1)])


def _run_doomed(model, target: str, store_dir: str, seed: int,
                num_ways: int, num_sessions: int,
                queries_per_session: int, num_shards: int) -> None:
    """The pre-crash process: stops at the write-ahead point.

    After this returns, ``store_dir`` holds exactly what a ``kill -9``
    between ``log_update``'s fsync and the in-memory apply leaves behind
    (plus a torn tail from a third, never-acknowledged update).
    """
    dataset, episodes = _build_workload(target, seed, num_ways,
                                        num_sessions, queries_per_session)
    persist = PersistentStore(store_dir)
    server = _make_server(model, dataset, seed, num_shards,
                          persist=persist)
    update = _pre_crash_timeline(server, episodes, seed)
    persist.log_update(update, base_version=dataset.graph.version)
    # -- crash point: the update is durable but was never applied. --
    _inject_torn_tail(persist, dataset.graph, episodes, seed)
    server.close()


def _crash_child(store_dir: str, model_path: str, target: str, seed: int,
                 num_ways: int, num_sessions: int,
                 queries_per_session: int, num_shards: int) -> None:
    """Subprocess entry point: run the doomed timeline, then ``kill -9``
    ourselves at the write-ahead point — no torn-tail simulation needed,
    the crash is real."""
    config = default_config(mutable_graph=True)
    dataset, episodes = _build_workload(target, seed, num_ways,
                                        num_sessions, queries_per_session)
    model = GraphPrompterModel(dataset.graph.feature_dim,
                               dataset.graph.num_relations, config)
    load_state(model, model_path)
    persist = PersistentStore(store_dir)
    server = _make_server(model, dataset, seed, num_shards,
                          persist=persist)
    update = _pre_crash_timeline(server, episodes, seed)
    persist.log_update(update, base_version=dataset.graph.version)
    os.kill(os.getpid(), signal.SIGKILL)


def _spawn_crash_child(store_dir: str, model_path: str, target: str,
                       seed: int, num_ways: int, num_sessions: int,
                       queries_per_session: int, num_shards: int) -> None:
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    code = (
        "from repro.experiments.recovery import _crash_child; "
        f"_crash_child({store_dir!r}, {model_path!r}, {target!r}, {seed}, "
        f"{num_ways}, {num_sessions}, {queries_per_session}, {num_shards})")
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=600)
    if proc.returncode != -signal.SIGKILL:
        raise RuntimeError(
            f"crash child exited with {proc.returncode} instead of dying "
            f"by SIGKILL; stderr tail: {proc.stderr[-2000:]}")


async def _failover_phase(model, target: str, store_dir: str, seed: int,
                          num_ways: int, queries_per_session: int) -> dict:
    """2-replica fleet: shared store, one update, kill one mid-flight."""
    store = PersistentStore(store_dir)

    def factory(replica_id: int) -> ServingGateway:
        dataset, _ = _build_workload(target, seed, num_ways, 1,
                                     queries_per_session)
        server = _make_server(model, dataset, seed, 1, persist=store)
        return ServingGateway(server, auto_drain=False)

    rs = ReplicaSet(factory, num_replicas=2, store=store)
    _, episodes = _build_workload(target, seed, num_ways, 4,
                                  queries_per_session)
    tenants = [f"tenant-{i}" for i in range(len(episodes))]
    for i, tenant in enumerate(tenants):
        rs.open_session(tenant, f"{tenant}-s", episodes[i],
                        priority=Priority.INTERACTIVE)
    home = {tenant: rs.route(tenant) for tenant in tenants}

    async def serve_all(query_index: int) -> dict:
        outcomes: dict[str, object] = {}
        by_gateway: dict[int, list] = {}
        for i, tenant in enumerate(tenants):
            index = rs.route(tenant)
            future = rs.replicas[index].submit_nowait(
                f"{tenant}-s", episodes[i].queries[query_index])
            by_gateway.setdefault(index, []).append((tenant, future))
        for index in by_gateway:
            await asyncio.wait_for(rs.replicas[index].flush(), timeout=120)
        for pairs in by_gateway.values():
            for tenant, future in pairs:
                outcomes[tenant] = (future.result()
                                    if isinstance(future, asyncio.Future)
                                    else future)
        return outcomes

    first = await serve_all(0)
    await rs.update_graph(_touching_update(
        rs.replicas[0].server.dataset.graph, episodes,
        np.random.default_rng(seed + 777), 6, 3))

    # In-flight requests on the victim at the moment it dies.
    victim = rs.route(tenants[0])
    inflight = []
    for i, tenant in enumerate(tenants):
        if rs.route(tenant) == victim:
            inflight.append(rs.replicas[victim].submit_nowait(
                f"{tenant}-s", episodes[i].queries[1]))
    settled = rs.kill(victim)
    hung = sum(1 for f in inflight
               if isinstance(f, asyncio.Future) and not f.done())
    unavailable = sum(1 for f in inflight
                      if isinstance(f, asyncio.Future) and f.done()
                      and isinstance(f.result(), Unavailable))

    second = await serve_all(2)
    moved = sum(1 for tenant in tenants
                if home[tenant] == victim and rs.route(tenant) != victim)
    await rs.close()

    served_ok = sum(1 for o in second.values()
                    if getattr(o, "ok", False))
    return {
        "tenants": len(tenants),
        "first_round_ok": sum(1 for o in first.values()
                              if getattr(o, "ok", False)),
        "inflight": len(inflight),
        "settled": settled,
        "hung": hung,
        "unavailable": unavailable,
        "failed_over": moved,
        "served_ok_after": served_ok,
    }


def serve_bench_recovery(context: ExperimentContext,
                         source: str = "wiki", target: str = "nell",
                         num_ways: int = 5, seed: int = 0) -> TableResult:
    """Crash/recovery differential + replica failover (raises on breach)."""
    config = default_config(mutable_graph=True)
    state = context.pretrained_state(source)
    num_sessions = 3 if context.fast else 4
    queries_per_session = 6 if context.fast else 12
    base = context.dataset(target)

    model = GraphPrompterModel(base.graph.feature_dim,
                               base.graph.num_relations, config)
    model.load_state_dict(state)

    configs = [("monolithic", 1), ("2-shard", 2)]
    if not context.fast:
        configs.append(("4-shard", 4))

    headers = ["Config", "Crash", "Replayed", "Sessions", "Version",
               "Identical"]
    rows: list[list] = []
    data: dict = {"cells": {}}

    with tempfile.TemporaryDirectory(prefix="repro-recovery-") as tmp:
        for label, num_shards in configs:
            store_dir = os.path.join(tmp, f"store-{label}")
            # Full mode exercises one real kill -9; the rest (and all of
            # CI fast mode) crash in-process at the same write-ahead
            # point, plus a torn WAL tail the subprocess path gets free.
            crash = ("sigkill" if (not context.fast
                                   and label == "monolithic")
                     else "in-process")
            if crash == "sigkill":
                model_path = os.path.join(tmp, "model.npz")
                if not os.path.exists(model_path):
                    save_state(model, model_path)
                _spawn_crash_child(store_dir, model_path, target, seed,
                                   num_ways, num_sessions,
                                   queries_per_session, num_shards)
            else:
                _run_doomed(model, target, store_dir, seed, num_ways,
                            num_sessions, queries_per_session, num_shards)

            # Uninterrupted reference: same timeline, second update
            # actually applied, then the final round.
            ref_dataset, ref_episodes = _build_workload(
                target, seed, num_ways, num_sessions, queries_per_session)
            reference_server = _make_server(model, ref_dataset, seed,
                                            num_shards)
            update = _pre_crash_timeline(reference_server, ref_episodes,
                                         seed)
            reference_server.update_graph(update)
            reference = _final_round(reference_server, ref_episodes)
            reference_server.close()

            # Warm-start from the crash site and serve the same round.
            recovered_server = PromptServer.restore(
                model, PersistentStore(store_dir), base.task,
                name=base.name, rng=seed, max_batch_size=8,
                num_shards=num_shards, num_workers=num_shards,
                worker_backend="serial")
            replayed = recovered_server.last_recovery_replayed
            restored_sessions = len(recovered_server.sessions)
            version = recovered_server.dataset.graph.version
            recovered = _final_round(recovered_server, ref_episodes)
            recovered_server.close()

            identical = recovered == reference
            data["cells"][label] = {
                "crash": crash, "num_shards": num_shards,
                "replayed": replayed, "sessions": restored_sessions,
                "graph_version": version, "identical": identical,
            }
            rows.append([label, crash, replayed, restored_sessions,
                         version, "yes" if identical else "NO"])
            if restored_sessions != num_sessions:
                raise RuntimeError(
                    f"recovery re-opened {restored_sessions} sessions, "
                    f"expected {num_sessions} — session manifests lost")
            if not identical:
                raise RuntimeError(
                    f"recovered serving diverged from the uninterrupted "
                    f"run ({label}) — snapshot, WAL replay, or session "
                    f"re-open is not bit-faithful")

        failover = asyncio.run(_failover_phase(
            model, target, os.path.join(tmp, "store-failover"), seed,
            num_ways, queries_per_session))
    data["failover"] = failover
    rows.append(["failover", "kill", "-", failover["failed_over"], "-",
                 (f"settled={failover['settled']} hung={failover['hung']} "
                  f"ok={failover['served_ok_after']}/"
                  f"{failover['tenants']}")])
    if failover["hung"]:
        raise RuntimeError(
            f"{failover['hung']} in-flight requests hung across the "
            f"replica kill — every request must settle")
    if failover["unavailable"] != failover["inflight"]:
        raise RuntimeError(
            "in-flight requests on the killed replica did not all settle "
            "with typed Unavailable results")
    if failover["served_ok_after"] != failover["tenants"]:
        raise RuntimeError(
            "not every tenant was served after failover — manifest "
            "re-open on the surviving replica is broken")
    return TableResult(
        title=(f"serve-bench-recovery: {num_sessions} sessions × "
               f"{queries_per_session} queries, {num_ways}-way {target}, "
               f"crash at the write-ahead point"),
        headers=headers, rows=rows, data=data)
