"""Design-choice ablations beyond the paper's Fig. 3.

The paper's Further Discussion names three pluggable components; each
function here sweeps one of them so the defaults can be defended
empirically (DESIGN.md §5):

* :func:`ablation_knn_metric` — cosine vs Euclidean vs Manhattan retrieval
  (Eq. 6 "can be substituted by other distance metrics").
* :func:`ablation_cache_policy` — LFU (paper) vs LRU vs FIFO eviction.
* :func:`ablation_recon_scorer` — MLP (Eq. 2) vs bilinear vs cosine-gate
  edge scoring ("can be replaced with networks other than just MLP").
"""

from __future__ import annotations

from ..baselines import GraphPrompterMethod
from ..eval import EvaluationSetting, evaluate_method
from .common import ExperimentContext, TableResult, default_config

__all__ = [
    "ablation_knn_metric",
    "ablation_cache_policy",
    "ablation_recon_scorer",
]

KNN_METRICS = ("cosine", "euclidean", "manhattan")
CACHE_POLICIES = ("lfu", "lru", "fifo")
RECON_SCORERS = ("mlp", "bilinear", "cosine_gate")


def _inference_sweep(context: ExperimentContext, option_name: str,
                     options, ways_list, seed: int) -> TableResult:
    """Sweep an inference-only config option with shared wiki weights."""
    state = context.pretrained_state("wiki")
    headers = ["Dataset", "Ways"] + list(options)
    rows = []
    data = {}
    queries = 12 if context.fast else 32
    runs = 2 if context.fast else 3
    for target in ("fb15k237", "nell"):
        dataset = context.dataset(target)
        data[target] = {}
        for ways in ways_list:
            setting = EvaluationSetting(num_ways=ways,
                                        queries_per_run=queries, runs=runs)
            cell = {}
            for option in options:
                config = default_config(**{option_name: option})
                method = GraphPrompterMethod(state, config,
                                             dataset.graph.feature_dim)
                method.name = option
                cell[option] = evaluate_method(method, dataset, setting,
                                               seed=seed + ways)
            data[target][ways] = cell
            rows.append([target, ways] + [str(cell[o]) for o in options])
    return TableResult(
        title=f"Ablation: {option_name} sweep",
        headers=headers, rows=rows, data=data)


def ablation_knn_metric(context: ExperimentContext,
                        ways_list=(10, 20), seed: int = 0) -> TableResult:
    """Retrieval metric sweep (inference-only; shared weights)."""
    return _inference_sweep(context, "knn_metric", KNN_METRICS, ways_list,
                            seed)


def ablation_cache_policy(context: ExperimentContext,
                          ways_list=(10, 20), seed: int = 0) -> TableResult:
    """Cache-policy sweep (inference-only; shared weights)."""
    return _inference_sweep(context, "cache_policy", CACHE_POLICIES,
                            ways_list, seed)


def ablation_recon_scorer(context: ExperimentContext,
                          ways_list=(10, 20), seed: int = 0) -> TableResult:
    """Reconstruction-scorer sweep.

    Unlike the other two, the scorer participates in pre-training, so each
    option pre-trains its own model (cached per configuration).
    """
    headers = ["Dataset", "Ways"] + list(RECON_SCORERS)
    rows = []
    data = {}
    queries = 12 if context.fast else 32
    runs = 2 if context.fast else 3
    states = {
        scorer: context.pretrained_state(
            "wiki", config=default_config(recon_scorer=scorer))
        for scorer in RECON_SCORERS
    }
    for target in ("fb15k237", "nell"):
        dataset = context.dataset(target)
        data[target] = {}
        for ways in ways_list:
            setting = EvaluationSetting(num_ways=ways,
                                        queries_per_run=queries, runs=runs)
            cell = {}
            for scorer in RECON_SCORERS:
                config = default_config(recon_scorer=scorer)
                method = GraphPrompterMethod(states[scorer], config,
                                             dataset.graph.feature_dim)
                method.name = scorer
                cell[scorer] = evaluate_method(method, dataset, setting,
                                               seed=seed + ways)
            data[target][ways] = cell
            rows.append([target, ways]
                        + [str(cell[s]) for s in RECON_SCORERS])
    return TableResult(title="Ablation: reconstruction scorer sweep",
                       headers=headers, rows=rows, data=data)
