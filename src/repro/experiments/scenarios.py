"""serve-bench-scenarios — workload scenario matrix with SLO gates.

Not a paper artifact: this bench points the observability stack (PR 6)
at the traffic shapes that actually break a fleet — steady Poisson load,
Markov-modulated bursts, diurnal drift, and a hot-node flash crowd —
using the seeded generator in :mod:`repro.workload`, and judges each
scenario with the SLO engine in :mod:`repro.obs.slo`.

Replay is **deterministic by construction**, not by luck:

* Each scenario's trace comes from one seeded ``numpy`` Generator, so
  the event stream replays bit-identically (the baseline pins its
  SHA-256 fingerprint).
* The driver replays in *virtual-time ticks*: a tick's events are
  submitted back-to-back (``submit_nowait``), then the gateway flushes.
  Admission (quota → class occupancy → rate; no rate limits here) is a
  pure function of queue depth, so the admitted/shed split — and every
  admitted prediction — is identical run after run.  Every scenario is
  run **twice** and the two admitted-outcome fingerprints must match.
* SLO verdicts are computed from :class:`MetricsRegistry` snapshots
  captured at window boundaries — never from ad-hoc timers — with
  multi-window burn rates and per-stage attribution.

The ``burst`` scenario is deliberately overloaded (admission queue ≪
burst tick size): its contract is that the interactive class holds its
SLOs (zero shed, bounded p95 wait) while the batch/background classes
absorb the shedding — the bench *raises* if that inversion ever breaks.

``BENCH_scenarios.json`` pins per-scenario baselines (trace fingerprint,
admitted/shed split, QPS, SLO verdict) per ``fast``/``full`` profile;
:func:`check_scenarios` gates against it with explicit
``ENVIRONMENT-SKIPPED`` lines for host-class-sensitive entries (QPS,
SLO latency verdicts) when ``cpu_count``/``backend`` differ from the
recording host — the deterministic entries (fingerprints, admission
counts) are gated everywhere.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import math
import os
import sys
import time
from dataclasses import dataclass, field

from ..core import GraphPrompterModel, sample_episode
from ..obs import MetricsRegistry, scrape
from ..obs.slo import (
    LatencyQuantileSLO,
    SLOSpec,
    counter_total,
    deadline_miss_slo,
    evaluate,
    histogram_quantile,
    render_report,
    shed_rate_slo,
)
from ..serving import Overloaded, Priority, PromptServer, ServingGateway
from ..workload import (
    DiurnalArrivals,
    FlashCrowdQueries,
    MarkovModulatedArrivals,
    PoissonArrivals,
    TenantSpec,
    WorkloadGenerator,
    WorkloadTrace,
    ZipfQueries,
    ZipfTenants,
)
from .common import ExperimentContext, TableResult, default_config

__all__ = [
    "SCENARIOS",
    "Scenario",
    "build_slos",
    "run_scenario",
    "run_matrix",
    "check_scenarios",
    "scenarios_main",
]

BASELINE_SCHEMA = 1

#: Gate fields that depend on host speed — environment-skipped when the
#: baseline host class (cpu_count, backend) differs from the current one.
_ENVIRONMENT_KEYS = ("cpu_count", "backend")

PRIORITY_MAP = {
    "interactive": Priority.INTERACTIVE,
    "batch": Priority.BATCH,
    "background": Priority.BACKGROUND,
}

#: The fixed tenant mix every scenario replays (Zipf rank = declaration
#: order): ~50% interactive / ~29% batch / ~21% background traffic.
TENANTS = ZipfTenants((
    TenantSpec("acme-interactive", "interactive", 2),
    TenantSpec("globex-batch", "batch", 2),
    TenantSpec("initech-background", "background", 1),
), skew=0.8)


@dataclass(frozen=True)
class Scenario:
    """One matrix entry: a workload shape + its SLO budgets."""

    name: str
    description: str
    arrivals: object
    queries: object
    num_events_fast: int
    num_events_full: int
    #: Admission queue bound; large = ample (no shedding expected).
    max_queue: int = 4096
    #: Virtual-time replay tick (seconds of trace time per flush).
    tick_s: float = 0.25
    #: Snapshot windows for the burn-rate evaluation.
    windows: int = 4
    #: True = deliberately overloaded: lower classes MUST shed while
    #: interactive MUST NOT (the driver raises otherwise).
    expect_shedding: bool = False
    #: Query slots per session episode (node-popularity support).
    num_queries: int = 8
    #: SLO budgets at relax=1 (latency budgets scale with the relax
    #: factor; shed budgets are deterministic and never relax).
    budgets: dict = field(default_factory=dict)


_DEFAULT_BUDGETS = {
    "interactive_p95_s": 0.35,
    "overall_p95_s": 1.0,
    "miss_rate": 0.75,
    "shed_interactive": 0.0,
    "shed_batch": 0.0,
    "shed_background": 0.0,
}


SCENARIOS = {
    "steady": Scenario(
        name="steady",
        description="Poisson steady-state at ~40 qps, ample queue",
        arrivals=PoissonArrivals(rate_qps=40.0),
        queries=ZipfQueries(skew=1.0),
        num_events_fast=70, num_events_full=220,
    ),
    "burst": Scenario(
        name="burst",
        description=("Markov-modulated bursts (15→240 qps) against a "
                     "small admission queue — deliberate overload"),
        arrivals=MarkovModulatedArrivals(base_qps=15.0, burst_qps=240.0,
                                         p_enter=0.06, p_exit=0.045),
        queries=ZipfQueries(skew=1.0),
        num_events_fast=90, num_events_full=280,
        max_queue=40, expect_shedding=True,
        budgets={"shed_batch": 0.8, "shed_background": 0.95},
    ),
    "drift": Scenario(
        name="drift",
        description="diurnal drift: ±60% sinusoidal rate over a 2s 'day'",
        arrivals=DiurnalArrivals(base_qps=35.0, amplitude=0.6,
                                 period_s=2.0),
        queries=ZipfQueries(skew=1.0),
        num_events_fast=80, num_events_full=240,
    ),
    "flash-crowd": Scenario(
        name="flash-crowd",
        description=("hot-node flash crowd: 90% of mid-trace traffic "
                     "hits one seed node"),
        arrivals=PoissonArrivals(rate_qps=50.0),
        queries=FlashCrowdQueries(base=ZipfQueries(skew=1.1),
                                  window=(0.4, 1.2), hot_query=0,
                                  hot_weight=0.9),
        num_events_fast=80, num_events_full=240,
    ),
}


def build_slos(scenario: Scenario, relax: float = 1.0) -> SLOSpec:
    """The scenario's objective set, latency budgets scaled by ``relax``.

    ``relax`` absorbs host-speed variance (CI boxes): latency and miss
    budgets stretch, the *deterministic* shed budgets do not — the
    interactive-never-shed contract has teeth on any host.
    """
    budgets = {**_DEFAULT_BUDGETS, **scenario.budgets}
    objectives = (
        LatencyQuantileSLO(
            name="interactive-p95",
            threshold_s=budgets["interactive_p95_s"] * relax,
            quantile=0.95, priority="interactive"),
        LatencyQuantileSLO(
            name="overall-p95",
            threshold_s=budgets["overall_p95_s"] * relax,
            quantile=0.95),
        shed_rate_slo("interactive", budgets["shed_interactive"]),
        shed_rate_slo("batch", budgets["shed_batch"]),
        shed_rate_slo("background", budgets["shed_background"]),
        deadline_miss_slo(min(budgets["miss_rate"] * relax, 1.0)),
    )
    return SLOSpec(name=scenario.name, objectives=objectives)


def _build_trace(scenario: Scenario, seed: int, fast: bool) -> WorkloadTrace:
    num_events = (scenario.num_events_fast if fast
                  else scenario.num_events_full)
    generator = WorkloadGenerator(scenario.arrivals, TENANTS,
                                  queries=scenario.queries,
                                  num_queries=scenario.num_queries,
                                  seed=seed)
    return WorkloadTrace(generator.take(num_events))


def _outcome_token(index: int, event, outcome) -> str:
    """Canonical per-event line for the admitted-outcome fingerprint."""
    if isinstance(outcome, Overloaded):
        status = f"shed:{outcome.reason}"
    elif outcome.ok:
        status = f"ok:{outcome.prediction}"
    else:
        status = "error"
    return f"{index}|{event.session}|{event.query}|{status}"


async def _drive(gateway: ServingGateway, trace: WorkloadTrace,
                 episodes: dict, scenario: Scenario,
                 registry: MetricsRegistry):
    """Replay the trace in virtual-time ticks; snapshot at window edges.

    Returns ``(outcomes, snapshots, elapsed_s)`` — outcomes in
    submission order, each resolved to Overloaded or GatewayResult.
    """
    last_tick = int(trace.duration_s / scenario.tick_s)
    window_every = max(1, math.ceil((last_tick + 1) / scenario.windows))
    next_boundary = window_every
    snapshots = [registry.snapshot()]
    pending: list[tuple] = []
    start = time.perf_counter()
    for tick, events in trace.ticks(scenario.tick_s):
        for event in events:
            outcome = gateway.submit_nowait(
                event.session, episodes[event.session].queries[event.query])
            pending.append((event, outcome))
        await gateway.flush()
        while tick + 1 >= next_boundary:
            snapshots.append(registry.snapshot())
            next_boundary += window_every
    await gateway.flush()
    elapsed = time.perf_counter() - start
    # Final boundary: the last window closes at end-of-trace (a window
    # that happens to be empty just burns at zero).
    snapshots.append(registry.snapshot())
    outcomes = []
    for event, outcome in pending:
        if isinstance(outcome, asyncio.Future):
            if not outcome.done():
                raise RuntimeError(
                    f"request for {event.session} never resolved — the "
                    f"gateway must never hang an admitted request")
            outcome = outcome.result()
        outcomes.append((event, outcome))
    return outcomes, snapshots, elapsed


def _one_run(model, dataset, scenario: Scenario, seed: int, fast: bool,
             relax: float) -> dict:
    """One full scenario pass on a cold server + private registry."""
    trace = _build_trace(scenario, seed, fast)
    registry = MetricsRegistry()
    server = PromptServer(model, dataset, max_batch_size=8, rng=seed,
                          registry=registry)
    gateway = ServingGateway(server, max_queue=scenario.max_queue,
                             max_batch_size=8, auto_drain=False,
                             registry=registry)
    plan = trace.sessions()
    episodes = {}
    for index, (tenant, priority, session) in enumerate(plan):
        episode = sample_episode(dataset, num_ways=5,
                                 num_queries=scenario.num_queries,
                                 rng=seed * 1000 + index)
        episodes[session] = episode
        gateway.open_session(tenant, session, episode,
                             priority=PRIORITY_MAP[priority])

    async def run():
        try:
            return await _drive(gateway, trace, episodes, scenario,
                                registry)
        finally:
            await gateway.close()

    outcomes, snapshots, elapsed = asyncio.run(run())

    digest = hashlib.sha256()
    for index, (event, outcome) in enumerate(outcomes):
        digest.update(_outcome_token(index, event, outcome).encode())
        digest.update(b"\n")
    final = snapshots[-1]
    verdict = evaluate(build_slos(scenario, relax), snapshots)
    admitted = int(counter_total(final, "repro_gateway_admitted_total"))
    shed = {cls: int(counter_total(final, "repro_gateway_shed_total",
                                   {"priority": cls}))
            for cls in PRIORITY_MAP}
    prom = scrape(gateway, registry)
    return {
        "trace": trace,
        "fingerprint": trace.fingerprint(),
        "admitted_fingerprint": digest.hexdigest(),
        "offered": len(outcomes),
        "admitted": admitted,
        "shed": shed,
        "elapsed_s": elapsed,
        "qps": admitted / elapsed if elapsed > 0 else 0.0,
        "wait_p50_s": histogram_quantile(
            final, "repro_gateway_queue_wait_seconds", 0.5),
        "wait_p95_s": histogram_quantile(
            final, "repro_gateway_queue_wait_seconds", 0.95),
        "interactive_wait_p95_s": histogram_quantile(
            final, "repro_gateway_queue_wait_seconds", 0.95,
            {"priority": "interactive"}),
        "verdict": verdict,
        "prom": prom,
    }


def run_scenario(model, dataset, scenario: Scenario, seed: int = 0,
                 fast: bool = False, relax: float = 1.0) -> dict:
    """Run one scenario twice; prove replay identity; report the result.

    Raises when the two same-seed runs diverge (trace bytes or admitted
    outcomes — predictions included), or when the overload contract
    breaks (interactive shed, or an overloaded scenario that shed
    nothing).
    """
    first = _one_run(model, dataset, scenario, seed, fast, relax)
    second = _one_run(model, dataset, scenario, seed, fast, relax)
    if first["fingerprint"] != second["fingerprint"]:
        raise RuntimeError(
            f"{scenario.name}: same-seed trace generation diverged — the "
            f"workload generator must be a pure function of its seed")
    if first["admitted_fingerprint"] != second["admitted_fingerprint"]:
        raise RuntimeError(
            f"{scenario.name}: same-seed replay diverged (admitted set or "
            f"predictions) — admission must be a pure function of the "
            f"trace")
    if first["shed"]["interactive"]:
        raise RuntimeError(
            f"{scenario.name}: interactive traffic was shed "
            f"({first['shed']['interactive']} requests) — lower classes "
            f"must absorb all shedding")
    lower_shed = first["shed"]["batch"] + first["shed"]["background"]
    if scenario.expect_shedding and not lower_shed:
        raise RuntimeError(
            f"{scenario.name}: deliberately-overloaded scenario shed "
            f"nothing — the admission bound is not binding")
    if not scenario.expect_shedding and lower_shed:
        raise RuntimeError(
            f"{scenario.name}: unexpected shedding ({lower_shed} "
            f"requests) in an ample-queue scenario")
    # Keep run 2 (warm caches) for timing; determinism is already proven.
    result = second
    result["runs"] = 2
    result["deterministic"] = True
    return result


def _env() -> dict:
    return {"cpu_count": os.cpu_count() or 1, "backend": "serial"}


def _baseline_entry(scenario: Scenario, result: dict,
                    relax: float) -> dict:
    verdict = result["verdict"]
    return {
        "description": scenario.description,
        "events": result["offered"],
        "admitted": result["admitted"],
        "shed": result["shed"],
        "qps": round(result["qps"], 2),
        "elapsed_s": round(result["elapsed_s"], 4),
        "wait_p50_ms": round(result["wait_p50_s"] * 1e3, 3),
        "wait_p95_ms": round(result["wait_p95_s"] * 1e3, 3),
        "interactive_wait_p95_ms": round(
            result["interactive_wait_p95_s"] * 1e3, 3),
        "slo_ok": verdict.ok,
        "burn_alerts": verdict.burn_alerts,
        "relax": relax,
        "trace_fingerprint": result["fingerprint"],
        "admitted_fingerprint": result["admitted_fingerprint"],
        "stage_profile": {stage: round(cells["share"], 4)
                          for stage, cells in verdict.stages.items()},
        "env": _env(),
    }


def run_matrix(context: ExperimentContext, names: list[str] | None = None,
               seed: int = 0, relax: float | None = None,
               source: str = "wiki", target: str = "nell"):
    """Run the scenario matrix; returns (entries, verdicts, proms, table)."""
    if relax is None:
        relax = 6.0 if context.fast else 2.0
    names = list(SCENARIOS) if names is None else names
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenario(s) {unknown}; "
                         f"known: {', '.join(SCENARIOS)}")
    config = default_config()
    state = context.pretrained_state(source)
    dataset = context.dataset(target)
    model = GraphPrompterModel(dataset.graph.feature_dim,
                               dataset.graph.num_relations, config)
    model.load_state_dict(state)

    entries: dict[str, dict] = {}
    verdicts = []
    proms: dict[str, str] = {}
    headers = ["Scenario", "Events", "Admitted", "Shed i/b/g", "QPS",
               "int p95 ms", "SLO", "Alerts", "Deterministic"]
    rows: list[list] = []
    for name in names:
        scenario = SCENARIOS[name]
        result = run_scenario(model, dataset, scenario, seed=seed,
                              fast=context.fast, relax=relax)
        entries[name] = _baseline_entry(scenario, result, relax)
        verdicts.append(result["verdict"])
        proms[name] = result["prom"]
        shed = result["shed"]
        rows.append([
            name, result["offered"], result["admitted"],
            f"{shed['interactive']}/{shed['batch']}/{shed['background']}",
            f"{result['qps']:.1f}",
            f"{result['interactive_wait_p95_s'] * 1e3:.2f}",
            "ok" if result["verdict"].ok else "VIOLATED",
            result["verdict"].burn_alerts,
            "yes" if result["deterministic"] else "NO",
        ])
    table = TableResult(
        title=(f"serve-bench-scenarios: {len(names)} scenarios, "
               f"seed={seed}, relax={relax:g}, "
               f"{'fast' if context.fast else 'full'} profile"),
        headers=headers, rows=rows,
        data={"scenarios": entries})
    return entries, verdicts, proms, table


def check_scenarios(current: dict, baseline: dict, tolerance: float = 1.5,
                    skipped: list | None = None) -> list[str]:
    """Per-scenario regression gates vs. a ``BENCH_scenarios.json`` section.

    Deterministic fields (trace fingerprint, offered/admitted/shed
    counts) are gated on every host.  Host-speed-sensitive fields (QPS
    ratio, SLO verdict) are environment-skipped — recorded in
    ``skipped`` — when the entry's recorded host class differs.
    """
    failures: list[str] = []
    for name, base in sorted(baseline.items()):
        now = current.get(name)
        if now is None:
            continue
        if now["trace_fingerprint"] != base["trace_fingerprint"]:
            failures.append(
                f"scenarios/{name}: trace fingerprint "
                f"{now['trace_fingerprint'][:12]} != baseline "
                f"{base['trace_fingerprint'][:12]} — the workload "
                f"generator's output changed; regenerate the baseline "
                f"if intentional")
        for field_name in ("events", "admitted"):
            if now[field_name] != base[field_name]:
                failures.append(
                    f"scenarios/{name}: {field_name} {now[field_name]} "
                    f"!= baseline {base[field_name]} — deterministic "
                    f"admission changed")
        if now["shed"] != base["shed"]:
            failures.append(
                f"scenarios/{name}: shed split {now['shed']} != "
                f"baseline {base['shed']} — deterministic shedding "
                f"changed")
        base_env = base.get("env", {})
        host_env = _env()
        mismatched = [key for key in _ENVIRONMENT_KEYS
                      if base_env.get(key) != host_env.get(key)]
        if mismatched:
            if skipped is not None:
                details = ", ".join(
                    f"{key} baseline={base_env.get(key)} "
                    f"host={host_env.get(key)}" for key in mismatched)
                skipped.append(
                    f"scenarios/{name}: qps + slo_ok gates skipped — "
                    f"host class differs ({details})")
            continue
        floor = base["qps"] / tolerance
        if now["qps"] < floor:
            failures.append(
                f"scenarios/{name}: qps {now['qps']:.1f} below floor "
                f"{floor:.1f} (baseline {base['qps']:.1f} / tolerance "
                f"{tolerance})")
        if base.get("slo_ok") and not now.get("slo_ok"):
            failures.append(
                f"scenarios/{name}: SLO verdict regressed to VIOLATED "
                f"(baseline passed)")
    return failures


# ----------------------------------------------------------------------
# CLI: python -m repro serve-bench-scenarios [...]
# ----------------------------------------------------------------------

def build_scenarios_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve-bench-scenarios",
        description=("workload scenario matrix: generated traces, SLO "
                     "verdicts, per-scenario regression gates"))
    parser.add_argument(
        "--scenarios", default=None,
        help="comma-separated subset (default: all of "
             f"{','.join(SCENARIOS)})")
    parser.add_argument("--fast", action="store_true",
                        help="smoke-test scale (CI legs)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload + serving seed (default 0)")
    parser.add_argument(
        "--relax", type=float, default=None,
        help="latency/miss budget multiplier for slow hosts "
             "(default: 6 with --fast, else 2; shed budgets never relax)")
    parser.add_argument("--pretrain-steps", type=int, default=400,
                        help="pre-training steps for the cached weights")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="do not read/write .cache/repro-artifacts")
    parser.add_argument(
        "--output", default="BENCH_scenarios.json",
        help="baseline file to merge results into (default: %(default)s)")
    parser.add_argument("--no-write", action="store_true",
                        help="do not update the baseline file")
    parser.add_argument(
        "--baseline", default=None,
        help="gate against this BENCH_scenarios.json (exit 1 on failure)")
    parser.add_argument(
        "--tolerance", type=float, default=1.5,
        help="allowed QPS slack vs. the baseline (default: %(default)s)")
    parser.add_argument(
        "--prom-dir", default=None,
        help="write per-scenario Prometheus snapshots into this directory")
    parser.add_argument(
        "--report", default=None,
        help="write the SLO verdict report to this file")
    return parser


def scenarios_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro serve-bench-scenarios``."""
    args = build_scenarios_parser().parse_args(argv)
    names = (args.scenarios.split(",") if args.scenarios
             else list(SCENARIOS))
    context = ExperimentContext(pretrain_steps=args.pretrain_steps,
                                fast=args.fast,
                                use_disk_cache=not args.no_disk_cache)
    entries, verdicts, proms, table = run_matrix(
        context, names, seed=args.seed, relax=args.relax)
    print(table)
    report = render_report(verdicts)
    print(report)

    profile = "fast" if args.fast else "full"
    if args.prom_dir:
        os.makedirs(args.prom_dir, exist_ok=True)
        for name, text in proms.items():
            path = os.path.join(args.prom_dir, f"{name}.prom")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        print(f"[wrote {len(proms)} snapshots to {args.prom_dir}/]")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"[wrote {args.report}]")

    if not args.no_write:
        sections: dict = {}
        if os.path.exists(args.output):
            with open(args.output, "r", encoding="utf-8") as handle:
                previous = json.load(handle).get("profiles", {})
            if isinstance(previous, dict):
                sections = previous
        merged = dict(sections.get(profile, {}).get("scenarios", {}))
        merged.update(entries)
        sections[profile] = {"scenarios": merged}
        payload = {"schema": BASELINE_SCHEMA, "profiles": sections}
        # Atomic merge-write, like BENCH_hotpaths.json: CI gates on this
        # file, so an interrupted run must never tear it.
        from ..persist import atomic_write

        with atomic_write(args.output) as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[wrote {args.output}]")

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        section = baseline.get("profiles", {}).get(profile, {})
        skipped: list[str] = []
        failures = check_scenarios(entries,
                                   section.get("scenarios", {}),
                                   tolerance=args.tolerance,
                                   skipped=skipped)
        for line in skipped:
            print(f"ENVIRONMENT-SKIPPED: {line}")
        if failures:
            print("SCENARIO REGRESSIONS vs baseline "
                  f"{args.baseline} [{profile}]:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"[all scenario gates passed vs {args.baseline} "
              f"({profile}); {len(skipped)} environment-skipped]")
    return 0
