"""Reproductions of the paper's figures (3–9).

Figures are reported as structured series (and ascii charts) rather than
images; each function returns a :class:`TableResult` whose ``data`` holds
the raw series for the benchmark assertions.
"""

from __future__ import annotations

import numpy as np

from ..baselines import GraphPrompterMethod, ProdigyBaseline
from ..core import (
    GraphPrompterModel,
    PromptGenerator,
    PromptSelector,
    prodigy_config,
    sample_episode,
)
from ..eval import EvaluationSetting, evaluate_method
from ..nn import no_grad
from ..viz import intra_inter_ratio, render_series, tsne
from .common import ExperimentContext, TableResult, default_config

__all__ = [
    "fig3_ablation",
    "fig4_gnn_architectures",
    "fig5_cache_size",
    "fig6_shots_sweep",
    "fig7_embedding_distribution",
    "fig8_multi_hop",
    "fig9_training_curves",
]

ABLATIONS = {
    "Full": {},
    "w/o Reconstruction": {"use_reconstruction": False},
    "w/o SelectionLayers": {"use_selection_layers": False},
    "w/o kNN": {"use_knn": False},
    "w/o Augmenter": {"use_augmenter": False},
}


def fig3_ablation(context: ExperimentContext,
                  ways_list=(5, 10, 20, 40), seed: int = 0) -> TableResult:
    """Fig. 3 — stage ablations on FB15K-237 and NELL.

    All variants share the full pre-trained weights; only the inference
    stages are toggled (the stages are what the figure isolates).
    """
    state = context.pretrained_state("wiki")
    headers = ["Dataset", "Ways"] + list(ABLATIONS)
    rows = []
    data = {}
    queries = 12 if context.fast else 40
    runs = 2 if context.fast else 3
    for target in ("fb15k237", "nell"):
        dataset = context.dataset(target)
        data[target] = {}
        for ways in ways_list:
            setting = EvaluationSetting(num_ways=ways,
                                        queries_per_run=queries, runs=runs)
            cell = {}
            for label, flags in ABLATIONS.items():
                config = default_config(**flags)
                method = GraphPrompterMethod(state, config,
                                             dataset.graph.feature_dim)
                method.name = label
                cell[label] = evaluate_method(method, dataset, setting,
                                              seed=seed + ways)
            data[target][ways] = cell
            rows.append([target, ways]
                        + [str(cell[label]) for label in ABLATIONS])
    return TableResult(title="Fig. 3: ablation accuracy (%)",
                       headers=headers, rows=rows, data=data)


def fig4_gnn_architectures(context: ExperimentContext,
                           ways_list=(5, 10, 20, 40),
                           seed: int = 0) -> TableResult:
    """Fig. 4 — GraphSAGE vs GAT as the prompt-generator GNN."""
    headers = ["Dataset", "Ways", "GAT", "GraphPrompter (SAGE)"]
    rows = []
    data = {}
    queries = 12 if context.fast else 40
    runs = 2 if context.fast else 3
    sage_state = context.pretrained_state("wiki")
    gat_config = default_config(conv="gat")
    gat_state = context.pretrained_state("wiki", config=gat_config)
    for target in ("fb15k237", "nell"):
        dataset = context.dataset(target)
        data[target] = {}
        for ways in ways_list:
            setting = EvaluationSetting(num_ways=ways,
                                        queries_per_run=queries, runs=runs)
            gat = GraphPrompterMethod(gat_state, gat_config,
                                      dataset.graph.feature_dim)
            gat.name = "GAT"
            sage = GraphPrompterMethod(sage_state, default_config(),
                                       dataset.graph.feature_dim)
            cell = {
                "GAT": evaluate_method(gat, dataset, setting,
                                       seed=seed + ways),
                "SAGE": evaluate_method(sage, dataset, setting,
                                        seed=seed + ways),
            }
            data[target][ways] = cell
            rows.append([target, ways, str(cell["GAT"]), str(cell["SAGE"])])
    return TableResult(title="Fig. 4: GNN architecture comparison",
                       headers=headers, rows=rows, data=data)


def fig5_cache_size(context: ExperimentContext,
                    cache_sizes=tuple(range(1, 11)),
                    ways_list=(5, 10, 20), seed: int = 0) -> TableResult:
    """Fig. 5 — Augmenter cache size sweep on FB15K-237 and NELL."""
    state = context.pretrained_state("wiki")
    headers = ["Dataset", "Ways"] + [f"c={c}" for c in cache_sizes]
    rows = []
    data = {}
    queries = 12 if context.fast else 40
    runs = 2 if context.fast else 3
    for target in ("fb15k237", "nell"):
        dataset = context.dataset(target)
        data[target] = {}
        for ways in ways_list:
            setting = EvaluationSetting(num_ways=ways,
                                        queries_per_run=queries, runs=runs)
            series = {}
            for c in cache_sizes:
                method = GraphPrompterMethod(
                    state, default_config(cache_size=c),
                    dataset.graph.feature_dim)
                series[c] = evaluate_method(method, dataset, setting,
                                            seed=seed + ways)
            data[target][ways] = series
            rows.append([target, ways]
                        + [f"{series[c].mean_percent:.1f}"
                           for c in cache_sizes])
    return TableResult(title="Fig. 5: accuracy vs cache size",
                       headers=headers, rows=rows, data=data)


def fig6_shots_sweep(context: ExperimentContext,
                     shots_list=(1, 2, 3, 5, 8, 12, 16, 20),
                     seed: int = 0) -> TableResult:
    """Fig. 6 — accuracy vs number of prompt examples (shots)."""
    blocks = [
        ("wiki", "fb15k237", 20),
        ("wiki", "nell", 20),
        ("mag240m", "arxiv", 20),
        ("wiki", "conceptnet", 4),
    ]
    headers = ["Dataset", "Ways", "Method"] + [f"k={k}" for k in shots_list]
    rows = []
    data = {}
    queries = 12 if context.fast else 32
    runs = 2 if context.fast else 3
    for source, target, ways in blocks:
        state = context.pretrained_state(source)
        dataset = context.dataset(target)
        prodigy = ProdigyBaseline(state, default_config(),
                                  dataset.graph.feature_dim)
        ours = GraphPrompterMethod(state, default_config(),
                                   dataset.graph.feature_dim)
        data[target] = {"Prodigy": {}, "GraphPrompter": {}}
        for method in (prodigy, ours):
            per_shot = []
            for k in shots_list:
                setting = EvaluationSetting(
                    num_ways=ways, shots=k,
                    candidates_per_class=max(10, k),
                    queries_per_run=queries, runs=runs)
                score = evaluate_method(method, dataset, setting,
                                        seed=seed + k)
                data[target][method.name][k] = score
                per_shot.append(f"{score.mean_percent:.1f}")
            rows.append([target, ways, method.name] + per_shot)
    return TableResult(title="Fig. 6: accuracy vs shots",
                       headers=headers, rows=rows, data=data)


def fig7_embedding_distribution(context: ExperimentContext,
                                shots_list=(20, 50), num_ways: int = 5,
                                seed: int = 0) -> TableResult:
    """Fig. 7 — data-node embedding geometry, Prodigy vs GraphPrompter.

    Instead of eyeballing a scatter, we measure the intra/inter class
    distance ratio of the (selected prompts + queries) embeddings — lower
    means the tighter clusters the paper shows — and also return 2-D t-SNE
    coordinates for plotting.
    """
    state = context.pretrained_state("wiki")
    headers = ["Dataset", "Shots", "Prodigy ratio", "GraphPrompter ratio"]
    rows = []
    data = {}
    for target in ("fb15k237", "nell"):
        dataset = context.dataset(target)
        data[target] = {}
        for shots in shots_list:
            cell = {}
            for label, config in (
                    ("Prodigy", prodigy_config(default_config())),
                    ("GraphPrompter",
                     default_config(use_augmenter=False))):
                model = GraphPrompterModel(dataset.graph.feature_dim,
                                           dataset.graph.num_relations,
                                           config)
                model.load_state_dict(state)
                model.eval()
                rng = np.random.default_rng(seed)
                episode = sample_episode(
                    dataset, num_ways=num_ways,
                    num_candidates_per_class=shots + 5,
                    num_queries=10 if context.fast else 25, rng=rng)
                generator = PromptGenerator(dataset.graph, config, rng=rng)
                selector = PromptSelector(config, rng=rng)
                with no_grad():
                    cand_emb = model.encode_subgraphs(
                        generator.subgraphs_for(episode.candidates))
                    query_emb = model.encode_subgraphs(
                        generator.subgraphs_for(episode.queries))
                    importance = model.importance(cand_emb).data
                    q_importance = model.importance(query_emb).data
                selected = selector.select(
                    cand_emb.data, importance, query_emb.data, q_importance,
                    episode.candidate_labels, shots)
                embeddings = np.concatenate(
                    [cand_emb.data[selected], query_emb.data])
                labels = np.concatenate(
                    [episode.candidate_labels[selected],
                     episode.query_labels])
                ratio = intra_inter_ratio(embeddings, labels)
                projection = None
                if not context.fast:
                    projection = tsne(embeddings, iterations=120, rng=seed)
                cell[label] = {"ratio": ratio, "tsne": projection,
                               "labels": labels}
            data[target][shots] = cell
            rows.append([target, shots,
                         f"{cell['Prodigy']['ratio']:.3f}",
                         f"{cell['GraphPrompter']['ratio']:.3f}"])
    return TableResult(
        title="Fig. 7: embedding intra/inter class distance ratio "
              "(lower = tighter clusters)",
        headers=headers, rows=rows, data=data)


def fig8_multi_hop(context: ExperimentContext, hops_list=(1, 2, 3),
                   ways_list=(10, 20, 40), seed: int = 0) -> TableResult:
    """Fig. 8 — 1/2/3-hop subgraphs on FB15K-237 and NELL.

    The pre-trained weights are shared; only the inference-time sampling
    radius changes (larger logical chains, as in the paper's analysis).
    """
    state = context.pretrained_state("wiki")
    headers = ["Dataset", "Ways", "Method"] + [f"{h}-hop" for h in hops_list]
    rows = []
    data = {}
    queries = 12 if context.fast else 32
    runs = 2 if context.fast else 3
    for target in ("fb15k237", "nell"):
        dataset = context.dataset(target)
        data[target] = {}
        for ways in ways_list:
            cell = {"Prodigy": {}, "GraphPrompter": {}}
            row_prodigy = [target, ways, "Prodigy"]
            row_ours = [target, ways, "GraphPrompter"]
            for hops in hops_list:
                config = default_config(
                    num_hops=hops,
                    max_subgraph_nodes=16 + 8 * (hops - 1))
                setting = EvaluationSetting(num_ways=ways,
                                            queries_per_run=queries,
                                            runs=runs)
                prodigy = ProdigyBaseline(state, config,
                                          dataset.graph.feature_dim)
                ours = GraphPrompterMethod(state, config,
                                           dataset.graph.feature_dim)
                cell["Prodigy"][hops] = evaluate_method(
                    prodigy, dataset, setting, seed=seed + ways + hops)
                cell["GraphPrompter"][hops] = evaluate_method(
                    ours, dataset, setting, seed=seed + ways + hops)
                row_prodigy.append(
                    f"{cell['Prodigy'][hops].mean_percent:.1f}")
                row_ours.append(
                    f"{cell['GraphPrompter'][hops].mean_percent:.1f}")
            data[target][ways] = cell
            rows.extend([row_prodigy, row_ours])
    return TableResult(title="Fig. 8: multi-hop subgraph accuracy (%)",
                       headers=headers, rows=rows, data=data)


def fig9_training_curves(context: ExperimentContext,
                         seed: int = 0) -> TableResult:
    """Fig. 9 — pre-training loss/accuracy curves on Wiki, ours vs Prodigy."""
    ours_history = context.pretraining_history("wiki", seed=seed)
    prodigy_history = context.pretraining_history(
        "wiki", config=prodigy_config(default_config()), seed=seed)
    chart = render_series(
        ours_history.steps,
        {"GraphPrompter": ours_history.losses,
         "Prodigy": np.interp(ours_history.steps, prodigy_history.steps,
                              prodigy_history.losses).tolist()},
        title="Fig. 9(a): training loss on Wiki")
    rows = [
        ["GraphPrompter", f"{ours_history.losses[0]:.3f}",
         f"{ours_history.final_loss:.3f}",
         f"{ours_history.final_accuracy:.3f}"],
        ["Prodigy", f"{prodigy_history.losses[0]:.3f}",
         f"{prodigy_history.final_loss:.3f}",
         f"{prodigy_history.final_accuracy:.3f}"],
    ]
    return TableResult(
        title="Fig. 9: pre-training convergence on Wiki\n" + chart,
        headers=["Method", "First loss", "Final loss", "Final acc"],
        rows=rows,
        data={"ours": ours_history, "prodigy": prodigy_history},
    )
