"""serve-bench — online serving throughput vs. per-query baseline.

Not a paper artifact: this experiment characterises the serving subsystem
(:mod:`repro.serving`) that operationalises the paper's streaming claim
(Alg. 2 / Fig. 5).  A fixed multi-session workload — round-robin
interleaved queries from several concurrent episodes — is replayed through
:class:`PromptServer` at several ``max_batch_size`` settings:

* ``batch = 1`` is per-query serving (every query pays a full GNN launch);
* larger batches coalesce queries *across sessions* into one encoder pass.

Reported per batch size: queries/sec over the whole workload, the speedup
vs. per-query serving, p50/p95 micro-batch service latency, and whether
predictions stayed identical to the per-query run (they must — batching is
a pure throughput optimization).
"""

from __future__ import annotations

import time

import numpy as np

from ..core import GraphPrompterModel, sample_episode
from ..serving import PromptServer
from .common import ExperimentContext, TableResult, default_config

__all__ = ["serve_bench"]


def serve_bench(context: ExperimentContext,
                batch_sizes=(1, 4, 16),
                source: str = "wiki", target: str = "nell",
                num_ways: int = 5, seed: int = 0) -> TableResult:
    """Cross-session micro-batching throughput on one fixed workload."""
    config = default_config()
    state = context.pretrained_state(source)
    dataset = context.dataset(target)
    num_sessions = 4 if context.fast else 8
    queries_per_session = 6 if context.fast else 24

    model = GraphPrompterModel(dataset.graph.feature_dim,
                               dataset.graph.num_relations, config)
    model.load_state_dict(state)

    episodes = [
        sample_episode(dataset, num_ways=num_ways,
                       num_queries=queries_per_session,
                       rng=seed * 1000 + i)
        for i in range(num_sessions)
    ]

    headers = ["Batch", "Queries/s", "Speedup", "p50 ms", "p95 ms",
               "Mean batch", "Identical"]
    rows = []
    data = {"batch_sizes": list(batch_sizes), "cells": {}}
    reference = None
    baseline_qps = None
    for batch_size in batch_sizes:
        server = PromptServer(model, dataset, max_batch_size=batch_size,
                              rng=seed)
        for i, episode in enumerate(episodes):
            server.open_session(f"session-{i}", episode)

        start = time.perf_counter()
        # Round-robin arrival: sessions interleave, so a micro-batch mixes
        # queries from many tenants — the cross-session coalescing case.
        for q in range(queries_per_session):
            for i, episode in enumerate(episodes):
                server.submit(f"session-{i}", episode.queries[q])
        results = server.drain()
        elapsed = time.perf_counter() - start

        qps = len(results) / elapsed
        if baseline_qps is None:
            baseline_qps = qps
        service_ms = 1000.0 * np.asarray([r.service_s for r in results])
        p50, p95 = np.percentile(service_ms, [50, 95])
        predictions = [(r.session_id, r.prediction) for r in results]
        identical = reference is None or predictions == reference
        if reference is None:
            reference = predictions

        data["cells"][batch_size] = {
            "qps": qps, "speedup": qps / baseline_qps,
            "p50_ms": float(p50), "p95_ms": float(p95),
            "mean_batch": server.stats.mean_batch_size,
            "identical": identical, "results": results,
        }
        rows.append([batch_size, f"{qps:.1f}",
                     f"{qps / baseline_qps:.2f}x",
                     f"{p50:.2f}", f"{p95:.2f}",
                     f"{server.stats.mean_batch_size:.1f}",
                     "yes" if identical else "NO"])
    return TableResult(
        title=(f"serve-bench: {num_sessions} sessions × "
               f"{queries_per_session} queries, {num_ways}-way {target}"),
        headers=headers, rows=rows, data=data)
