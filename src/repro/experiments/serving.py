"""serve-bench — online serving throughput vs. per-query baseline.

Not a paper artifact: this experiment characterises the serving subsystem
(:mod:`repro.serving`) that operationalises the paper's streaming claim
(Alg. 2 / Fig. 5).  A fixed multi-session workload — round-robin
interleaved queries from several concurrent episodes — is replayed through
:class:`PromptServer` at several ``max_batch_size`` settings:

* ``batch = 1`` is per-query serving (every query pays a full GNN launch);
* larger batches coalesce queries *across sessions* into one encoder pass.

Reported per batch size: queries/sec over the whole workload, the speedup
vs. per-query serving, p50/p95 micro-batch service latency, and whether
predictions stayed identical to the per-query run (they must — batching is
a pure throughput optimization).

``serve-bench-mutating`` interleaves live graph updates
(:meth:`PromptServer.update_graph`) with query rounds: edges are added and
removed — and nodes appended — between drains, flowing through the
delta-overlay write path (:mod:`repro.graph.delta`) with cache-epoch
session invalidation.  After the last round the whole post-mutation
workload is replayed on **fresh sessions of both the mutated server and a
cold server rebuilt from scratch** over the final live edge list; any
prediction mismatch raises (the CI mutation-smoke gate) — overlay reads,
shard routing, and epoch invalidation must be indistinguishable from a
rebuild.

``serve-bench-sharded`` replays one fixed workload through the horizontal
scale-out path (:mod:`repro.shard`): unsharded, then K-shard/N-worker
configurations.  Predictions must be *exactly equal* across every
configuration (sharded sampling is bit-identical and the encoder is
batch-composition-invariant up to float last-ulp wobble, which never moved
a prediction in the equivalence suite) — a mismatch raises, so the CI
smoke fails loudly.  The summary table surfaces the per-shard counters
(``requests`` routed, ``halo_fetches`` across shard boundaries,
``worker_busy_s``) from :class:`~repro.serving.ServerStats`.
"""

from __future__ import annotations

import time

import numpy as np

from ..core import GraphPrompterModel, sample_episode
from ..datasets.base import Dataset
from ..graph import GraphUpdate
from ..serving import PromptServer
from .common import ExperimentContext, TableResult, default_config

__all__ = ["replay_workload", "serve_bench", "serve_bench_sharded",
           "serve_bench_mutating", "random_graph_update"]


def replay_workload(server: PromptServer, episodes) -> tuple[list, float]:
    """One session per episode, round-robin submit, drain; timed.

    Round-robin arrival means every micro-batch mixes queries from many
    tenants — the cross-session coalescing case both benches measure.
    """
    for i, episode in enumerate(episodes):
        server.open_session(f"session-{i}", episode)
    start = time.perf_counter()
    for q in range(episodes[0].num_queries):
        for i, episode in enumerate(episodes):
            server.submit(f"session-{i}", episode.queries[q])
    results = server.drain()
    return results, time.perf_counter() - start


def serve_bench(context: ExperimentContext,
                batch_sizes=(1, 4, 16),
                source: str = "wiki", target: str = "nell",
                num_ways: int = 5, seed: int = 0) -> TableResult:
    """Cross-session micro-batching throughput on one fixed workload."""
    config = default_config()
    state = context.pretrained_state(source)
    dataset = context.dataset(target)
    num_sessions = 4 if context.fast else 8
    queries_per_session = 6 if context.fast else 24

    model = GraphPrompterModel(dataset.graph.feature_dim,
                               dataset.graph.num_relations, config)
    model.load_state_dict(state)

    episodes = [
        sample_episode(dataset, num_ways=num_ways,
                       num_queries=queries_per_session,
                       rng=seed * 1000 + i)
        for i in range(num_sessions)
    ]

    headers = ["Batch", "Queries/s", "Speedup", "p50 ms", "p95 ms",
               "Mean batch", "Identical"]
    rows = []
    data = {"batch_sizes": list(batch_sizes), "cells": {}}
    reference = None
    baseline_qps = None
    for batch_size in batch_sizes:
        server = PromptServer(model, dataset, max_batch_size=batch_size,
                              rng=seed)
        results, elapsed = replay_workload(server, episodes)

        qps = len(results) / elapsed
        if baseline_qps is None:
            baseline_qps = qps
        service_ms = 1000.0 * np.asarray([r.service_s for r in results])
        p50, p95 = np.percentile(service_ms, [50, 95])
        predictions = [(r.session_id, r.prediction) for r in results]
        identical = reference is None or predictions == reference
        if reference is None:
            reference = predictions

        data["cells"][batch_size] = {
            "qps": qps, "speedup": qps / baseline_qps,
            "p50_ms": float(p50), "p95_ms": float(p95),
            "mean_batch": server.stats.mean_batch_size,
            "identical": identical, "results": results,
        }
        rows.append([batch_size, f"{qps:.1f}",
                     f"{qps / baseline_qps:.2f}x",
                     f"{p50:.2f}", f"{p95:.2f}",
                     f"{server.stats.mean_batch_size:.1f}",
                     "yes" if identical else "NO"])
    return TableResult(
        title=(f"serve-bench: {num_sessions} sessions × "
               f"{queries_per_session} queries, {num_ways}-way {target}"),
        headers=headers, rows=rows, data=data)


def random_graph_update(graph, rng: np.random.Generator,
                        num_add: int, num_remove: int,
                        num_new_nodes: int = 0) -> GraphUpdate:
    """A seeded mutation batch over ``graph``'s current live state.

    Added edges draw uniform endpoints (including any nodes added by the
    same update); removals draw uniformly from the live edge ids.  Shared
    by the mutating serve bench, the perf harness's mutate profile, and
    the differential test suite.
    """
    total_nodes = graph.num_nodes + num_new_nodes
    _, _, _, live_ids = graph.live_edges()
    num_remove = min(num_remove, live_ids.size)
    features = None
    if num_new_nodes:
        features = rng.normal(size=(num_new_nodes, graph.feature_dim))
    return GraphUpdate(
        add_src=rng.integers(0, total_nodes, size=num_add),
        add_dst=rng.integers(0, total_nodes, size=num_add),
        add_rel=rng.integers(0, graph.num_relations, size=num_add),
        remove_edges=rng.choice(live_ids, size=num_remove, replace=False),
        add_node_features=features,
    )


def serve_bench_mutating(context: ExperimentContext,
                         source: str = "wiki", target: str = "nell",
                         num_ways: int = 5, seed: int = 0) -> TableResult:
    """Live-mutation serving: interleaved updates + cold-rebuild equality.

    Raises ``RuntimeError`` when the mutated server's post-mutation
    predictions differ from a server cold-rebuilt over the final live
    edge list — the property the CI mutation-smoke job asserts.
    """
    config = default_config(mutable_graph=True)
    state = context.pretrained_state(source)
    base = context.dataset(target)
    # Private graph copy: the context's dataset cache is shared across
    # experiments and must never observe this bench's mutations.
    dataset = Dataset(base.graph.rebuild(), base.task,
                      name=f"{base.name}-mutating", rng=seed)
    graph = dataset.graph
    num_sessions = 3 if context.fast else 6
    queries_per_session = 6 if context.fast else 18
    num_rounds = 3
    per_round = queries_per_session // num_rounds
    grow = max(graph.num_live_edges // (20 if context.fast else 40), 8)

    model = GraphPrompterModel(graph.feature_dim, graph.num_relations,
                               config)
    model.load_state_dict(state)

    episodes = [
        sample_episode(dataset, num_ways=num_ways,
                       num_queries=queries_per_session,
                       rng=seed * 1000 + i)
        for i in range(num_sessions)
    ]

    server = PromptServer(model, dataset, max_batch_size=8, rng=seed)
    for i, episode in enumerate(episodes):
        server.open_session(f"session-{i}", episode)

    update_rng = np.random.default_rng(seed + 77)
    headers = ["Round", "Queries/s", "+Edges", "-Edges", "+Nodes",
               "Stale sessions", "Overlay %"]
    rows = []
    data = {"rounds": [], "identical": None}
    mut_rng = np.random.default_rng(update_rng.integers(2**32))
    for round_id in range(num_rounds):
        start = time.perf_counter()
        for q in range(round_id * per_round, (round_id + 1) * per_round):
            for i, episode in enumerate(episodes):
                server.submit(f"session-{i}", episode.queries[q])
        results = server.drain()
        elapsed = time.perf_counter() - start
        qps = len(results) / elapsed

        # Mutate between rounds (the last round leaves the graph as the
        # equality check below will see it).
        update = random_graph_update(
            graph, mut_rng, num_add=grow, num_remove=grow // 2,
            num_new_nodes=2 if round_id == 1 else 0)
        invalidated_before = server.stats.sessions_invalidated
        server.update_graph(update)
        stale = server.stats.sessions_invalidated - invalidated_before
        overlay_pct = 100.0 * graph.overlay_fraction
        rows.append([round_id, f"{qps:.1f}", grow, grow // 2,
                     2 if round_id == 1 else 0, stale,
                     f"{overlay_pct:.1f}"])
        data["rounds"].append({
            "round": round_id, "qps": qps, "added": grow,
            "removed": grow // 2, "stale_sessions": stale,
            "overlay_fraction": graph.overlay_fraction,
        })

    # ------------------------------------------------------------------
    # Equality gate: fresh sessions on the mutated server vs. a server
    # cold-rebuilt from the final live edge list must predict identically.
    # ------------------------------------------------------------------
    cold_dataset = Dataset(graph.rebuild(), base.task,
                           name=f"{base.name}-cold", rng=seed)
    cold = PromptServer(model, cold_dataset, max_batch_size=8, rng=seed)
    predictions = {}
    for tag, srv in (("mutated", server), ("cold", cold)):
        for i, episode in enumerate(episodes):
            srv.open_session(f"check-{i}", episode)
        start = time.perf_counter()
        for q in range(queries_per_session):
            for i, episode in enumerate(episodes):
                srv.submit(f"check-{i}", episode.queries[q])
        results = srv.drain()
        predictions[tag] = [(r.session_id, r.prediction) for r in results]
        data[f"{tag}_qps"] = len(results) / (time.perf_counter() - start)
    identical = predictions["mutated"] == predictions["cold"]
    data["identical"] = identical
    data["stale_evictions"] = server.stats.stale_evictions
    data["graph_version"] = server.stats.graph_version
    if not identical:
        raise RuntimeError(
            "mutating serving diverged from the cold rebuild — delta "
            "overlay, shard routing, or epoch invalidation served stale "
            "graph state")
    rows.append(["check", f"{data['mutated_qps']:.1f}", "-", "-", "-",
                 "-", "identical: yes"])
    return TableResult(
        title=(f"serve-bench-mutating: {num_sessions} sessions × "
               f"{queries_per_session} queries, {num_ways}-way {target}, "
               f"{num_rounds} update rounds"),
        headers=headers, rows=rows, data=data)


def serve_bench_sharded(context: ExperimentContext,
                        source: str = "wiki", target: str = "nell",
                        num_ways: int = 5, seed: int = 0) -> TableResult:
    """Sharded/parallel serving vs. unsharded: equality + QPS + counters.

    Raises ``RuntimeError`` when any sharded configuration's predictions
    differ from the unsharded run — the property the CI shard-smoke job
    asserts.
    """
    config = default_config()
    state = context.pretrained_state(source)
    dataset = context.dataset(target)
    num_sessions = 3 if context.fast else 6
    queries_per_session = 5 if context.fast else 16

    model = GraphPrompterModel(dataset.graph.feature_dim,
                               dataset.graph.num_relations, config)
    model.load_state_dict(state)

    episodes = [
        sample_episode(dataset, num_ways=num_ways,
                       num_queries=queries_per_session,
                       rng=seed * 1000 + i)
        for i in range(num_sessions)
    ]

    # The CI smoke runs the serial fallback rows; "auto" exercises the
    # process pool wherever the host has cores for it.
    configs = [
        ("unsharded", 1, 1, "serial"),
        ("2-shard serial", 2, 2, "serial"),
        ("4-shard serial", 4, 4, "serial"),
    ]
    if not context.fast:
        configs.append(("4-shard auto", 4, 4, "auto"))

    headers = ["Config", "Shards", "Workers", "Backend", "Queries/s",
               "Identical", "Req/shard", "Halo", "Busy ms"]
    rows = []
    data = {"cells": {}}
    reference = None
    for label, num_shards, num_workers, backend in configs:
        server = PromptServer(model, dataset, max_batch_size=8, rng=seed,
                              num_shards=num_shards,
                              num_workers=num_workers,
                              worker_backend=backend)
        results, elapsed = replay_workload(server, episodes)
        stats = server.stats
        effective = server.router.backend if server.router else "inline"
        server.close()

        qps = len(results) / elapsed
        predictions = [(r.session_id, r.prediction) for r in results]
        if reference is None:
            reference = predictions
        identical = predictions == reference
        if not identical:
            raise RuntimeError(
                f"sharded serving diverged from the unsharded run "
                f"({label}: {num_shards} shards / {num_workers} workers / "
                f"{backend}) — sharding must never change predictions")
        shard_counters = stats.shards
        requests = "/".join(str(c.requests) for c in shard_counters) or "-"
        busy_ms = 1000.0 * sum(c.worker_busy_s for c in shard_counters)
        data["cells"][label] = {
            "qps": qps, "identical": identical,
            "num_shards": num_shards, "num_workers": num_workers,
            "backend": effective,
            "shards": [
                {"shard_id": c.shard_id, "requests": c.requests,
                 "halo_fetches": c.halo_fetches,
                 "worker_busy_s": c.worker_busy_s}
                for c in shard_counters],
        }
        rows.append([label, num_shards, num_workers, effective,
                     f"{qps:.1f}", "yes" if identical else "NO",
                     requests, stats.halo_fetches,
                     f"{busy_ms:.1f}" if shard_counters else "-"])
    return TableResult(
        title=(f"serve-bench-sharded: {num_sessions} sessions × "
               f"{queries_per_session} queries, {num_ways}-way {target}"),
        headers=headers, rows=rows, data=data)
