"""Reproductions of the paper's tables (II–VIII).

Each function returns a :class:`TableResult` whose printable rows mirror
the paper's layout; the raw :class:`MethodScore` objects live in
``result.data`` for the benchmark assertions.
"""

from __future__ import annotations

import numpy as np


from ..datasets import statistics_table
from ..eval import EvaluationSetting, evaluate_method, time_method
from ..baselines import GraphPrompterMethod, ProdigyBaseline
from .common import ExperimentContext, TableResult, default_config
from .grids import accuracy_grid

__all__ = [
    "table2_dataset_statistics",
    "table3_arxiv",
    "table4_kg",
    "table5_many_ways",
    "table6_ofa_comparison",
    "table7_random_pseudo_labels",
    "table8_inference_time",
]

_TABLE3_METHODS = ["NoPretrain", "Contrastive", "Finetune", "Prodigy",
                   "ProG", "OFA", "GraphPrompter"]


def table2_dataset_statistics(context: ExperimentContext) -> TableResult:
    """Table II — dataset statistics of the simulated suite."""
    names = ["mag240m", "wiki", "arxiv", "conceptnet", "fb15k237", "nell"]
    rows_data = statistics_table([context.dataset(n) for n in names])
    rows = [[r["dataset"], r["task"], r["nodes"], r["edges"], r["classes"]]
            for r in rows_data]
    return TableResult(
        title="Table II: statistics of (simulated) datasets",
        headers=["Dataset", "Task", "Nodes", "Edges", "Classes"],
        rows=rows,
        data={"rows": rows_data},
    )


def _grid_to_table(grid, method_names, title) -> TableResult:
    headers = ["Ways"] + method_names
    rows = []
    for ways in sorted(grid):
        row = [ways]
        for name in method_names:
            row.append(str(grid[ways][name]))
        rows.append(row)
    return TableResult(title=title, headers=headers, rows=rows,
                       data={"grid": grid})


def table3_arxiv(context: ExperimentContext,
                 ways_list=(3, 5, 10, 20, 40),
                 method_names=None, seed: int = 0) -> TableResult:
    """Table III — arXiv node classification, pre-trained on MAG240M."""
    method_names = list(method_names or _TABLE3_METHODS)
    grid = accuracy_grid(context, source="mag240m", target="arxiv",
                         ways_list=list(ways_list),
                         method_names=method_names, seed=seed)
    return _grid_to_table(
        grid, method_names,
        "Table III: arXiv accuracy (%) vs ways, 3-shot, MAG240M pre-train")


def table4_kg(context: ExperimentContext, method_names=None,
              seed: int = 0) -> TableResult:
    """Table IV — ConceptNet / FB15K-237 / NELL, pre-trained on Wiki."""
    method_names = list(method_names or _TABLE3_METHODS)
    blocks = [
        ("conceptnet", [4]),
        ("fb15k237", [5, 10, 20, 40]),
        ("nell", [5, 10, 20, 40]),
    ]
    headers = ["Dataset", "Ways"] + method_names
    rows = []
    data = {}
    for target, ways_list in blocks:
        grid = accuracy_grid(context, source="wiki", target=target,
                             ways_list=ways_list,
                             method_names=method_names, seed=seed)
        data[target] = grid
        for ways in ways_list:
            row = [target, ways]
            for name in method_names:
                row.append(str(grid[ways][name]))
            rows.append(row)
    return TableResult(
        title="Table IV: KG edge-classification accuracy (%), Wiki pre-train",
        headers=headers, rows=rows, data=data)


def table5_many_ways(context: ExperimentContext,
                     ways_list=(50, 60, 80, 100),
                     seed: int = 0) -> TableResult:
    """Table V — 50–100-way episodes on FB15K-237 and NELL."""
    from ..baselines import ProGBaseline

    method_names = ["Prodigy", "ProG", "GraphPrompter"]
    headers = ["Dataset", "Ways"] + method_names
    rows = []
    data = {}
    for target in ("fb15k237", "nell"):
        prodigy, ours = context.methods("wiki",
                                        ["Prodigy", "GraphPrompter"])
        # ProG meta-tunes over ways × N candidates per episode; cap the
        # tuning budget so 100-way cells stay CPU-feasible.
        prog = ProGBaseline(context.contrastive_encoder("wiki"),
                            default_config(),
                            tune_steps=3 if context.fast else 8)
        grid = accuracy_grid(context, source="wiki", target=target,
                             ways_list=list(ways_list),
                             methods=[prodigy, prog, ours], seed=seed,
                             runs=2 if context.fast else 3,
                             queries_per_run=10 if context.fast else 30)
        data[target] = grid
        for ways in ways_list:
            rows.append([target, ways]
                        + [str(grid[ways][m]) for m in method_names])
    return TableResult(
        title="Table V: many-way accuracy (%) on FB15K-237 / NELL",
        headers=headers, rows=rows, data=data)


def table6_ofa_comparison(context: ExperimentContext,
                          seed: int = 0) -> TableResult:
    """Table VI — OFA(-joint-lr analogue) vs GraphPrompter."""
    method_names = ["OFA", "GraphPrompter"]
    headers = ["Dataset", "Ways", "OFA", "GraphPrompter"]
    rows = []
    data = {}
    blocks = [("mag240m", "arxiv", [3, 5, 10, 20]),
              ("wiki", "fb15k237", [5, 10, 20, 40])]
    for source, target, ways_list in blocks:
        grid = accuracy_grid(context, source=source, target=target,
                             ways_list=ways_list,
                             method_names=method_names, seed=seed)
        data[target] = grid
        for ways in ways_list:
            rows.append([target, ways]
                        + [str(grid[ways][m]) for m in method_names])
    return TableResult(
        title="Table VI: OFA vs GraphPrompter, random category selection",
        headers=headers, rows=rows, data=data)


def table7_random_pseudo_labels(context: ExperimentContext,
                                seeds=(10, 30, 50, 70, 90),
                                num_ways: int = 20) -> TableResult:
    """Table VII — random pseudo-label cache entries across seeds."""
    config = default_config(random_pseudo_labels=True)
    base_config = default_config()
    headers = ["Dataset"] + [f"seed {s}" for s in seeds] + ["Avg ± std",
                                                            "Max-conf"]
    rows = []
    data = {}
    queries = 12 if context.fast else 40
    for target in ("fb15k237", "nell"):
        dataset = context.dataset(target)
        state = context.pretrained_state("wiki")
        per_seed = []
        for seed in seeds:
            method = GraphPrompterMethod(state, config,
                                         dataset.graph.feature_dim)
            setting = EvaluationSetting(
                num_ways=num_ways, queries_per_run=queries,
                runs=1 if context.fast else 2)
            score = evaluate_method(method, dataset, setting, seed=seed)
            per_seed.append(score.mean_percent)
        # Reference: max-confidence pseudo-labels (the default policy).
        reference = GraphPrompterMethod(state, base_config,
                                        dataset.graph.feature_dim)
        setting = EvaluationSetting(num_ways=num_ways,
                                    queries_per_run=queries,
                                    runs=1 if context.fast else 2)
        ref_score = evaluate_method(reference, dataset, setting, seed=0)
        data[target] = {"random_by_seed": per_seed,
                        "max_confidence": ref_score}
        rows.append([target] + [f"{v:.2f}" for v in per_seed]
                    + [f"{np.mean(per_seed):.2f} ± {np.std(per_seed):.2f}",
                       f"{ref_score.mean_percent:.2f}"])
    return TableResult(
        title=f"Table VII: random pseudo-labels, {num_ways}-way",
        headers=headers, rows=rows, data=data)


def table8_inference_time(context: ExperimentContext,
                          ways_list=(10, 20, 40), seed: int = 0
                          ) -> TableResult:
    """Table VIII — per-query inference time, Prodigy vs GraphPrompter."""
    config = default_config()
    state = context.pretrained_state("wiki")
    headers = ["Dataset", "Ways", "Prodigy ms/q", "GraphPrompter ms/q",
               "Slowdown"]
    rows = []
    data = {}
    queries = 8 if context.fast else 32
    runs = 1 if context.fast else 2
    warmup = 0 if context.fast else 1
    for target in ("fb15k237", "nell"):
        dataset = context.dataset(target)
        prodigy = ProdigyBaseline(state, config, dataset.graph.feature_dim)
        ours = GraphPrompterMethod(state, config, dataset.graph.feature_dim)
        data[target] = {}
        for ways in ways_list:
            setting = EvaluationSetting(num_ways=ways,
                                        queries_per_run=queries, runs=runs)
            t_prodigy = time_method(prodigy, dataset, setting, seed=seed,
                                    warmup_runs=warmup)
            t_ours = time_method(ours, dataset, setting, seed=seed,
                                 warmup_runs=warmup)
            slowdown = t_ours.ms_per_query / max(t_prodigy.ms_per_query,
                                                 1e-9)
            data[target][ways] = {"prodigy": t_prodigy, "ours": t_ours,
                                  "slowdown": slowdown}
            rows.append([target, ways, f"{t_prodigy.ms_per_query:.1f}",
                         f"{t_ours.ms_per_query:.1f}", f"{slowdown:.2f}x"])
    return TableResult(
        title="Table VIII: per-query inference time",
        headers=headers, rows=rows, data=data)
