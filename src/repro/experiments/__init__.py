"""Experiment harness reproducing every table and figure of the paper."""

from .ablations import (
    ablation_cache_policy,
    ablation_knn_metric,
    ablation_recon_scorer,
)
from .common import CACHE_DIR, ExperimentContext, TableResult, default_config
from .figures import (
    ABLATIONS,
    fig3_ablation,
    fig4_gnn_architectures,
    fig5_cache_size,
    fig6_shots_sweep,
    fig7_embedding_distribution,
    fig8_multi_hop,
    fig9_training_curves,
)
from .gateway import serve_bench_gateway, serve_gateway_demo
from .grids import accuracy_grid
from .recovery import serve_bench_recovery
from .scenarios import (
    SCENARIOS,
    Scenario,
    build_slos,
    check_scenarios,
    run_matrix,
    run_scenario,
    scenarios_main,
)
from .serving import serve_bench, serve_bench_mutating, serve_bench_sharded
from .tables import (
    table2_dataset_statistics,
    table3_arxiv,
    table4_kg,
    table5_many_ways,
    table6_ofa_comparison,
    table7_random_pseudo_labels,
    table8_inference_time,
)

__all__ = [
    "ExperimentContext",
    "TableResult",
    "default_config",
    "CACHE_DIR",
    "ablation_knn_metric",
    "ablation_cache_policy",
    "ablation_recon_scorer",
    "accuracy_grid",
    "SCENARIOS",
    "Scenario",
    "build_slos",
    "check_scenarios",
    "run_matrix",
    "run_scenario",
    "scenarios_main",
    "serve_bench",
    "serve_bench_gateway",
    "serve_bench_mutating",
    "serve_bench_recovery",
    "serve_bench_sharded",
    "serve_gateway_demo",
    "table2_dataset_statistics",
    "table3_arxiv",
    "table4_kg",
    "table5_many_ways",
    "table6_ofa_comparison",
    "table7_random_pseudo_labels",
    "table8_inference_time",
    "ABLATIONS",
    "fig3_ablation",
    "fig4_gnn_architectures",
    "fig5_cache_size",
    "fig6_shots_sweep",
    "fig7_embedding_distribution",
    "fig8_multi_hop",
    "fig9_training_curves",
]
