"""Grid runner shared by the accuracy tables (methods × way counts)."""

from __future__ import annotations

from ..eval import EvaluationSetting, MethodScore, evaluate_method
from .common import ExperimentContext

__all__ = ["accuracy_grid"]


def accuracy_grid(
    context: ExperimentContext,
    source: str,
    target: str,
    ways_list: list[int],
    method_names: list[str] | None = None,
    shots: int = 3,
    candidates_per_class: int = 10,
    queries_per_run: int | None = None,
    runs: int | None = None,
    seed: int = 0,
    methods: list | None = None,
) -> dict[int, dict[str, MethodScore]]:
    """Evaluate methods on ``target`` for every way count.

    Methods come either from ``method_names`` (built via the shared context,
    pre-training artifacts cached per ``source``) or directly as ``methods``
    objects.  Returns ``{ways: {method_name: MethodScore}}``.
    """
    queries_per_run = queries_per_run or (12 if context.fast else 40)
    runs = runs or (2 if context.fast else 4)
    if methods is None:
        if method_names is None:
            raise ValueError("pass method_names or methods")
        methods = context.methods(source, method_names)
    dataset = context.dataset(target)
    grid: dict[int, dict[str, MethodScore]] = {}
    for ways in ways_list:
        setting = EvaluationSetting(
            num_ways=ways,
            shots=shots,
            candidates_per_class=candidates_per_class,
            queries_per_run=queries_per_run,
            runs=runs,
        )
        grid[ways] = {
            method.name: evaluate_method(method, dataset, setting,
                                         seed=seed + ways)
            for method in methods
        }
    return grid
