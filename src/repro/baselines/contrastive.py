"""Contrastive baseline (GraphCL-style, paper ref [24]).

Self-supervised pre-training: two random-walk views of the same datapoint
form a positive pair and the InfoNCE loss pulls them together against the
rest of the batch.  At test time prediction is a hard-coded nearest
class-mean classifier on the frozen embeddings (Sec. V-A3).
"""

from __future__ import annotations

import numpy as np

from ..core.config import GraphPrompterConfig
from ..core.episodes import Episode
from ..core.prompt_generator import PromptGenerator
from ..datasets.base import Dataset
from ..gnn import DataGraphEncoder
from ..nn import Adam, clip_grad_norm
from ..nn import functional as F
from .base import class_centroids, encode_datapoints, nearest_centroid_predict

__all__ = ["ContrastiveEncoderTrainer", "ContrastiveBaseline"]


class ContrastiveEncoderTrainer:
    """InfoNCE pre-training of a :class:`DataGraphEncoder`."""

    def __init__(self, dataset: Dataset, config: GraphPrompterConfig,
                 rng: np.random.Generator | int | None = None,
                 temperature: float = 0.2):
        self.dataset = dataset
        self.config = config.validate()
        self.rng = np.random.default_rng(rng)
        self.temperature = temperature
        self.encoder = DataGraphEncoder(
            feature_dim=dataset.graph.feature_dim,
            hidden_dim=config.hidden_dim,
            num_layers=config.num_gnn_layers,
            conv=config.conv,
            rng=self.rng,
        )
        self.generator = PromptGenerator(dataset.graph, config, rng=self.rng)

    def _sample_datapoints(self, batch_size: int) -> list:
        ids = self.rng.choice(self.dataset.splits["train"], size=batch_size,
                              replace=False)
        return [self.dataset.datapoint(int(i)) for i in ids]

    def train(self, steps: int = 100, batch_size: int = 12,
              learning_rate: float = 1e-3) -> list[float]:
        """Run InfoNCE steps; returns the loss trajectory."""
        optimizer = Adam(self.encoder.parameters(), lr=learning_rate)
        losses: list[float] = []
        self.encoder.train()
        for _ in range(steps):
            optimizer.zero_grad()
            datapoints = self._sample_datapoints(batch_size)
            # Two independently sampled views of every datapoint.
            view_a = self.generator.subgraphs_for(datapoints)
            view_b = self.generator.subgraphs_for(datapoints)
            emb_a = self.encoder.encode_subgraphs(view_a)
            emb_b = self.encoder.encode_subgraphs(view_b)
            sims = F.pairwise_cosine(emb_a, emb_b) * (1.0 / self.temperature)
            targets = np.arange(batch_size)
            loss = (F.cross_entropy(sims, targets)
                    + F.cross_entropy(sims.T, targets)) * 0.5
            loss.backward()
            clip_grad_norm(self.encoder.parameters(), 5.0)
            optimizer.step()
            losses.append(loss.item())
        self.encoder.eval()
        return losses


class ContrastiveBaseline:
    """Frozen contrastive encoder + nearest class-mean classifier."""

    name = "Contrastive"

    def __init__(self, encoder: DataGraphEncoder,
                 config: GraphPrompterConfig):
        self.encoder = encoder
        self.config = config

    @classmethod
    def pretrained(cls, source_dataset: Dataset, config: GraphPrompterConfig,
                   steps: int = 100,
                   rng: np.random.Generator | int | None = None
                   ) -> "ContrastiveBaseline":
        trainer = ContrastiveEncoderTrainer(source_dataset, config, rng=rng)
        trainer.train(steps=steps)
        return cls(trainer.encoder, config)

    def predict(self, dataset: Dataset, episode: Episode, shots: int,
                rng: np.random.Generator) -> np.ndarray:
        candidate_emb = encode_datapoints(self.encoder, dataset,
                                          episode.candidates, self.config,
                                          rng)
        query_emb = encode_datapoints(self.encoder, dataset, episode.queries,
                                      self.config, rng)
        centroids = class_centroids(candidate_emb, episode.candidate_labels,
                                    episode.num_ways)
        return nearest_centroid_predict(query_emb, centroids)
