"""NoPretrain baseline: the same architecture with random weights.

"This baseline employs a model with the same architecture as the
pre-trained models, but with randomly initialized weights" (Sec. V-A3) —
it calibrates how much of every method's accuracy comes from pre-training
rather than from the task-graph mechanics.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GraphPrompterConfig, prodigy_config
from ..core.episodes import Episode
from ..core.inference import GraphPrompterPipeline
from ..core.model import GraphPrompterModel
from ..datasets.base import Dataset

__all__ = ["NoPretrainBaseline"]


class NoPretrainBaseline:
    """Random-weight model run through the Prodigy-style pipeline."""

    name = "NoPretrain"

    def __init__(self, config: GraphPrompterConfig):
        self.config = prodigy_config(config)

    def predict(self, dataset: Dataset, episode: Episode, shots: int,
                rng: np.random.Generator) -> np.ndarray:
        # Fresh random weights per prediction round, seeded by the harness
        # rng so runs differ (and std reflects initialisation variance).
        seed = int(rng.integers(1 << 31))
        config = self.config.ablate(seed=seed)
        model = GraphPrompterModel(dataset.graph.feature_dim,
                                   dataset.graph.num_relations, config)
        model.eval()
        pipeline = GraphPrompterPipeline(model, dataset, rng=rng)
        return pipeline.run_episode(episode, shots=shots).predictions
