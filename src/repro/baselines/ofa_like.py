"""OFA-like baseline (One-For-All, paper ref [5]).

OFA trains *one* prompt-graph model jointly on all datasets at once, with
LLM text features unifying the heterogeneous attribute spaces.  The
analogue here: a single Prodigy-style model trained on Multi-Task episodes
drawn round-robin from several datasets (whose synthetic features already
share a semantic space, playing the role of the text encoder), in the
low-resource regime (``OFA-joint-lr``) — few steps, few ways.

Evaluation runs the shared prompt-graph pipeline without GraphPrompter's
optimization stages.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GraphPrompterConfig, prodigy_config
from ..core.episodes import Episode
from ..core.inference import GraphPrompterPipeline
from ..core.model import GraphPrompterModel
from ..core.pretrain import PretrainConfig, Pretrainer
from ..datasets.base import Dataset

__all__ = ["OFALikeBaseline", "train_ofa_joint"]


def train_ofa_joint(datasets: list[Dataset], config: GraphPrompterConfig,
                    steps_per_dataset: int = 30, num_ways: int = 5,
                    rng_seed: int = 0) -> dict:
    """Joint low-resource training: round-robin Multi-Task episodes.

    Returns the trained state dict (weight shapes are dataset-independent,
    so one state dict serves every evaluation dataset).
    """
    if not datasets:
        raise ValueError("need at least one dataset for joint training")
    base = prodigy_config(config)
    model = GraphPrompterModel(datasets[0].graph.feature_dim,
                               datasets[0].graph.num_relations, base)
    pretrain = PretrainConfig(
        steps=steps_per_dataset,
        num_ways=num_ways,
        neighbor_matching=False,  # OFA trains supervised tasks only
        multi_task=True,
    )
    for i, dataset in enumerate(datasets):
        trainer = Pretrainer(model, dataset, pretrain,
                             rng=np.random.default_rng(rng_seed + i))
        # Reuse the same model across datasets: the trainer mutates it.
        trainer.train()
    return model.state_dict()


class OFALikeBaseline:
    """Single jointly-trained prompt-graph model, Prodigy-style inference."""

    name = "OFA"

    def __init__(self, state_dict: dict, config: GraphPrompterConfig):
        self.config = prodigy_config(config)
        self._state_dict = state_dict

    @classmethod
    def trained_on(cls, datasets: list[Dataset],
                   config: GraphPrompterConfig,
                   steps_per_dataset: int = 30,
                   rng_seed: int = 0) -> "OFALikeBaseline":
        state = train_ofa_joint(datasets, config,
                                steps_per_dataset=steps_per_dataset,
                                rng_seed=rng_seed)
        return cls(state, config)

    def predict(self, dataset: Dataset, episode: Episode, shots: int,
                rng: np.random.Generator) -> np.ndarray:
        model = GraphPrompterModel(dataset.graph.feature_dim,
                                   dataset.graph.num_relations, self.config)
        model.load_state_dict(self._state_dict)
        model.eval()
        pipeline = GraphPrompterPipeline(model, dataset, rng=rng)
        return pipeline.run_episode(episode, shots=shots).predictions
