"""All-in-One / ProG baseline (paper refs [4], [32]).

A *Prompt Token* method: a learnable prompt vector is added to the node
features of every downstream subgraph and meta-tuned on the episode's few
labelled candidates before classifying queries by nearest class centroid.
The paper finds this family unstable in cross-domain few-shot settings
(large variance, Tables III–V) because the prompt must be fitted from very
few examples — the behaviour reproduced here.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GraphPrompterConfig
from ..core.episodes import Episode
from ..core.prompt_generator import PromptGenerator
from ..datasets.base import Dataset
from ..gnn import DataGraphEncoder, SubgraphBatch
from ..nn import Adam, Parameter, Tensor, no_grad
from ..nn import functional as F
from .base import class_centroids, nearest_centroid_predict

__all__ = ["ProGBaseline"]


class ProGBaseline:
    """Learnable prompt-token tuning on top of a frozen encoder."""

    name = "ProG"

    def __init__(self, encoder: DataGraphEncoder,
                 config: GraphPrompterConfig, tune_steps: int = 25,
                 tune_lr: float = 0.1, temperature: float = 10.0):
        self.encoder = encoder
        self.config = config
        self.tune_steps = tune_steps
        self.tune_lr = tune_lr
        self.temperature = temperature

    def _encode_with_prompt(self, batch: SubgraphBatch,
                            prompt: Tensor) -> Tensor:
        """Encode a batch whose node features are shifted by the prompt token."""
        shifted = Tensor(batch.node_features) + prompt
        # The encoder reads ``batch.node_features`` as a plain array, so we
        # inject the prompt through the projected input instead: rebuild the
        # projection manually to keep the gradient path to ``prompt``.
        x = self.encoder.input_proj(shifted)
        rel_emb = None
        if batch.rel_features is not None and batch.num_edges:
            rel_emb = self.encoder.rel_proj(Tensor(batch.rel_features))
        for conv in self.encoder._modules_list:
            x = conv(x, batch.src, batch.dst, batch.num_nodes,
                     edge_weights=batch.edge_weights, rel_emb=rel_emb)
        from ..gnn.pooling import center_pool

        pooled = center_pool(x, batch.centers)
        if pooled.shape[-1] == self.encoder.hidden_dim:
            return pooled
        return self.encoder.pair_proj(pooled)

    def predict(self, dataset: Dataset, episode: Episode, shots: int,
                rng: np.random.Generator) -> np.ndarray:
        generator = PromptGenerator(dataset.graph, self.config, rng=rng)
        # ProG receives the same k-shot support as the other methods:
        # a random subset of `shots` candidates per class (no adaptive
        # selection — that is GraphPrompter's contribution, not ProG's).
        support_idx = []
        for cls in range(episode.num_ways):
            members = episode.candidate_ids_of_class(cls)
            take = min(shots, members.size)
            support_idx.extend(rng.choice(members, size=take, replace=False))
        support_idx = np.array(support_idx)
        support = [episode.candidates[i] for i in support_idx]
        candidate_batch = SubgraphBatch.from_subgraphs(
            generator.subgraphs_for(support))
        query_batch = SubgraphBatch.from_subgraphs(
            generator.subgraphs_for(episode.queries))

        prompt = Parameter(np.zeros(dataset.graph.feature_dim))
        optimizer = Adam([prompt], lr=self.tune_lr)
        labels = episode.candidate_labels[support_idx]
        num_ways = episode.num_ways

        # Meta-tune the prompt token: tighten candidate clusters around
        # their own class centroids.
        for _ in range(self.tune_steps):
            optimizer.zero_grad()
            emb = self._encode_with_prompt(candidate_batch, prompt)
            centroids = Tensor.stack(
                [emb[np.nonzero(labels == c)[0]].mean(axis=0)
                 for c in range(num_ways)], axis=0)
            logits = F.pairwise_cosine(emb, centroids) * self.temperature
            loss = F.cross_entropy(logits, labels)
            loss.backward()
            optimizer.step()

        with no_grad():
            candidate_emb = self._encode_with_prompt(candidate_batch,
                                                     prompt).data
            query_emb = self._encode_with_prompt(query_batch, prompt).data
        centroids = class_centroids(candidate_emb, labels, num_ways)
        return nearest_centroid_predict(query_emb, centroids)
