"""Finetune baseline (paper ref [23]).

Extends the contrastively pre-trained encoder with a linear classification
head fitted on the episode's labelled candidates — the "additional linear
classification head, following common practice" of Sec. V-A3.  Unlike the
in-context methods this requires per-episode gradient updates.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GraphPrompterConfig
from ..core.episodes import Episode
from ..datasets.base import Dataset
from ..gnn import DataGraphEncoder
from ..nn import Adam, Linear, Tensor
from ..nn import functional as F
from .base import encode_datapoints

__all__ = ["FinetuneBaseline"]


class FinetuneBaseline:
    """Frozen encoder + per-episode linear head."""

    name = "Finetune"

    def __init__(self, encoder: DataGraphEncoder,
                 config: GraphPrompterConfig, head_steps: int = 60,
                 head_lr: float = 5e-2):
        self.encoder = encoder
        self.config = config
        self.head_steps = head_steps
        self.head_lr = head_lr

    def predict(self, dataset: Dataset, episode: Episode, shots: int,
                rng: np.random.Generator) -> np.ndarray:
        candidate_emb = encode_datapoints(self.encoder, dataset,
                                          episode.candidates, self.config,
                                          rng)
        query_emb = encode_datapoints(self.encoder, dataset, episode.queries,
                                      self.config, rng)
        head = self._fit_head(candidate_emb, episode.candidate_labels,
                              episode.num_ways, rng)
        logits = Tensor(query_emb) @ head.weight + head.bias
        return logits.data.argmax(axis=1).astype(np.int64)

    def _fit_head(self, embeddings: np.ndarray, labels: np.ndarray,
                  num_ways: int, rng: np.random.Generator) -> Linear:
        head = Linear(embeddings.shape[1], num_ways,
                      rng=np.random.default_rng(int(rng.integers(1 << 31))))
        optimizer = Adam(head.parameters(), lr=self.head_lr)
        inputs = Tensor(embeddings)
        for _ in range(self.head_steps):
            optimizer.zero_grad()
            loss = F.cross_entropy(head(inputs), labels)
            loss.backward()
            optimizer.step()
        return head
