"""Prodigy baseline (paper ref [3]) and the GraphPrompter method adapter.

Prodigy is GraphPrompter with every optimization stage disabled: random
k-shot prompt choice per class, unweighted subgraphs and no test-time
augmentation — which is exactly what :func:`repro.core.prodigy_config`
produces.  Both adapters wrap the shared :class:`GraphPrompterPipeline` so
the two methods differ *only* in the stages, mirroring the paper's
controlled comparison.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GraphPrompterConfig, prodigy_config
from ..core.episodes import Episode
from ..core.inference import GraphPrompterPipeline
from ..core.model import GraphPrompterModel
from ..datasets.base import Dataset

__all__ = ["PipelineMethod", "ProdigyBaseline", "GraphPrompterMethod"]


class PipelineMethod:
    """Adapter: run a (pre-trained) GraphPrompter model as an eval Method."""

    def __init__(self, name: str, state_dict: dict,
                 config: GraphPrompterConfig, feature_dim: int):
        self.name = name
        self.config = config.validate()
        self._state_dict = state_dict
        self._feature_dim = feature_dim

    def build_model(self, dataset: Dataset) -> GraphPrompterModel:
        """Instantiate the model for a (possibly different) dataset."""
        model = GraphPrompterModel(dataset.graph.feature_dim,
                                   dataset.graph.num_relations, self.config)
        model.load_state_dict(self._state_dict)
        model.eval()
        return model

    def predict(self, dataset: Dataset, episode: Episode, shots: int,
                rng: np.random.Generator) -> np.ndarray:
        model = self.build_model(dataset)
        pipeline = GraphPrompterPipeline(model, dataset, rng=rng)
        return pipeline.run_episode(episode, shots=shots).predictions


class ProdigyBaseline(PipelineMethod):
    """Random prompt selection, no reconstruction / retrieval / cache."""

    def __init__(self, state_dict: dict, config: GraphPrompterConfig,
                 feature_dim: int):
        super().__init__("Prodigy", state_dict, prodigy_config(config),
                         feature_dim)


class GraphPrompterMethod(PipelineMethod):
    """The full multi-stage method."""

    def __init__(self, state_dict: dict, config: GraphPrompterConfig,
                 feature_dim: int):
        super().__init__("GraphPrompter", state_dict, config, feature_dim)
