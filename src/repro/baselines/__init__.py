"""Baseline methods from the paper's comparison suite (Sec. V-A3)."""

from .base import class_centroids, encode_datapoints, nearest_centroid_predict
from .contrastive import ContrastiveBaseline, ContrastiveEncoderTrainer
from .finetune import FinetuneBaseline
from .no_pretrain import NoPretrainBaseline
from .ofa_like import OFALikeBaseline, train_ofa_joint
from .prodigy import GraphPrompterMethod, PipelineMethod, ProdigyBaseline
from .prog import ProGBaseline

__all__ = [
    "NoPretrainBaseline",
    "ContrastiveBaseline",
    "ContrastiveEncoderTrainer",
    "FinetuneBaseline",
    "ProdigyBaseline",
    "GraphPrompterMethod",
    "PipelineMethod",
    "ProGBaseline",
    "OFALikeBaseline",
    "train_ofa_joint",
    "encode_datapoints",
    "class_centroids",
    "nearest_centroid_predict",
]
