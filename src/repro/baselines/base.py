"""Shared plumbing for baseline methods.

Each baseline implements the :class:`repro.eval.harness.Method` protocol:
``predict(dataset, episode, shots, rng) -> local labels``.  This module
provides the common encode-datapoints helper built on the same subgraph
sampler the core pipeline uses, so all methods see identical inputs.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GraphPrompterConfig

from ..core.prompt_generator import PromptGenerator
from ..datasets.base import Dataset
from ..gnn import DataGraphEncoder
from ..nn import no_grad

__all__ = ["encode_datapoints", "class_centroids", "nearest_centroid_predict"]


def encode_datapoints(encoder: DataGraphEncoder, dataset: Dataset,
                      datapoints: list, config: GraphPrompterConfig,
                      rng: np.random.Generator) -> np.ndarray:
    """Sample data graphs for ``datapoints`` and encode them (no gradient)."""
    generator = PromptGenerator(dataset.graph, config, rng=rng)
    with no_grad():
        return encoder.encode_subgraphs(
            generator.subgraphs_for(datapoints)).data


def class_centroids(embeddings: np.ndarray, labels: np.ndarray,
                    num_ways: int) -> np.ndarray:
    """Mean embedding per local class."""
    return np.stack([
        embeddings[labels == cls].mean(axis=0) for cls in range(num_ways)
    ])


def nearest_centroid_predict(query_embeddings: np.ndarray,
                             centroids: np.ndarray) -> np.ndarray:
    """Hard-coded nearest-neighbour classification by cosine similarity.

    This is the Contrastive baseline's decision rule: "we classify the query
    by comparing its pre-trained embedding against the average embedding of
    the example inputs for each class" (Sec. V-A3).
    """
    def normalize(x):
        return x / np.maximum(np.linalg.norm(x, axis=-1, keepdims=True),
                              1e-12)

    sims = normalize(query_embeddings) @ normalize(centroids).T
    return sims.argmax(axis=1).astype(np.int64)
