"""Quantitative stand-ins for "the clusters look tighter" (Fig. 7).

A printed scatter cannot be asserted in a benchmark, so we summarise the
embedding geometry with the intra/inter class distance ratio (lower =
tighter clusters, better separation) and a simplified silhouette score.
"""

from __future__ import annotations

import numpy as np

__all__ = ["intra_inter_ratio", "silhouette_score"]


def intra_inter_ratio(embeddings: np.ndarray, labels: np.ndarray) -> float:
    """Mean intra-class distance divided by mean inter-class distance.

    A value below 1 means same-class points sit closer together than
    cross-class points; smaller is better.
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    if embeddings.shape[0] != labels.shape[0]:
        raise ValueError("one label per embedding required")
    sums = (embeddings**2).sum(axis=1)
    dists = np.sqrt(np.maximum(
        sums[:, None] + sums[None, :] - 2.0 * embeddings @ embeddings.T, 0.0))
    same = labels[:, None] == labels[None, :]
    np.fill_diagonal(same, False)
    off_diag = ~np.eye(len(labels), dtype=bool)
    intra = dists[same]
    inter = dists[off_diag & ~same]
    if intra.size == 0 or inter.size == 0:
        raise ValueError("need at least two classes with two members each")
    return float(intra.mean() / inter.mean())


def silhouette_score(embeddings: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient in [-1, 1]; higher is better."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    sums = (embeddings**2).sum(axis=1)
    dists = np.sqrt(np.maximum(
        sums[:, None] + sums[None, :] - 2.0 * embeddings @ embeddings.T, 0.0))
    classes = np.unique(labels)
    if classes.size < 2:
        raise ValueError("silhouette needs at least two classes")
    scores = []
    for i in range(len(labels)):
        own = labels[i]
        same_mask = (labels == own)
        same_mask_i = same_mask.copy()
        same_mask_i[i] = False
        if not same_mask_i.any():
            continue  # singleton cluster: silhouette undefined
        a = dists[i, same_mask_i].mean()
        b = min(dists[i, labels == other].mean()
                for other in classes if other != own)
        scores.append((b - a) / max(a, b, 1e-12))
    if not scores:
        raise ValueError("all clusters are singletons")
    return float(np.mean(scores))
