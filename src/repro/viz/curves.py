"""ASCII rendering of figure series so benchmarks can print paper plots."""

from __future__ import annotations

import numpy as np

__all__ = ["render_series", "format_table"]

_MARKERS = "ox+*#@%&"


def render_series(x_values, series: dict[str, list[float]],
                  width: int = 60, height: int = 15,
                  title: str = "") -> str:
    """Render one or more y-series over shared x values as an ASCII chart."""
    if not series:
        raise ValueError("no series to render")
    x_values = np.asarray(x_values, dtype=np.float64)
    ys = {name: np.asarray(v, dtype=np.float64) for name, v in series.items()}
    for name, v in ys.items():
        if v.shape != x_values.shape:
            raise ValueError(f"series {name!r} length mismatch")
    y_all = np.concatenate(list(ys.values()))
    y_min, y_max = float(y_all.min()), float(y_all.max())
    if y_max - y_min < 1e-12:
        y_max = y_min + 1.0
    x_min, x_max = float(x_values.min()), float(x_values.max())
    if x_max - x_min < 1e-12:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, v) in enumerate(ys.items()):
        marker = _MARKERS[s_idx % len(_MARKERS)]
        for xi, yi in zip(x_values, v):
            col = int(round((xi - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yi - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:8.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{y_min:8.2f} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + "└" + "─" * width)
    lines.append(" " * 10 + f"{x_min:<10.4g}" + " " * max(width - 20, 1)
                 + f"{x_max:>10.4g}")
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {name}"
                        for i, name in enumerate(ys))
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def format_table(headers: list[str], rows: list[list],
                 title: str = "") -> str:
    """Aligned text table used by the table-reproduction benchmarks."""
    if not rows:
        raise ValueError("no rows to format")
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows))
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
