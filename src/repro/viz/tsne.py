"""Minimal exact t-SNE (van der Maaten & Hinton) for the Fig. 7 analysis.

The paper visualises data-node embeddings with t-SNE to show that
GraphPrompter's prompts cluster more tightly than Prodigy's.  sklearn is
unavailable offline, so this is a faithful O(n²) implementation — fine for
the few hundred points a figure needs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tsne"]


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    sums = (x**2).sum(axis=1)
    d = sums[:, None] + sums[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d, 0.0)
    return np.maximum(d, 0.0)


def _row_affinities(dists_row: np.ndarray, target_entropy: float,
                    tol: float = 1e-5, max_iter: int = 50
                    ) -> np.ndarray:
    """Binary-search the Gaussian bandwidth matching the target perplexity."""
    lo, hi = 1e-20, 1e20
    beta = 1.0
    probs = np.zeros_like(dists_row)
    for _ in range(max_iter):
        probs = np.exp(-dists_row * beta)
        total = probs.sum()
        if total <= 0:
            probs = np.full_like(dists_row, 1.0 / dists_row.size)
            break
        probs /= total
        positive = probs[probs > 0]
        entropy = -(positive * np.log(positive)).sum()
        diff = entropy - target_entropy
        if abs(diff) < tol:
            break
        if diff > 0:
            lo = beta
            beta = beta * 2 if hi >= 1e20 else (beta + hi) / 2
        else:
            hi = beta
            beta = beta / 2 if lo <= 1e-20 else (beta + lo) / 2
    return probs


def tsne(x: np.ndarray, num_dims: int = 2, perplexity: float = 20.0,
         iterations: int = 300, learning_rate: float = 100.0,
         rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Embed rows of ``x`` into ``num_dims`` dimensions with exact t-SNE."""
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    if n < 3:
        raise ValueError("t-SNE needs at least three points")
    perplexity = min(perplexity, (n - 1) / 3.0)
    rng = np.random.default_rng(rng)

    # High-dimensional affinities.
    dists = _pairwise_sq_dists(x)
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        row = np.delete(dists[i], i)
        probs = _row_affinities(row, target_entropy)
        p[i, np.arange(n) != i] = probs
    p = (p + p.T) / (2.0 * n)
    p = np.maximum(p, 1e-12)

    # Gradient descent with momentum and early exaggeration.
    y = rng.normal(scale=1e-2, size=(n, num_dims))
    velocity = np.zeros_like(y)
    exaggeration = 4.0
    for it in range(iterations):
        p_eff = p * exaggeration if it < iterations // 4 else p
        q_num = 1.0 / (1.0 + _pairwise_sq_dists(y))
        np.fill_diagonal(q_num, 0.0)
        q = np.maximum(q_num / q_num.sum(), 1e-12)
        coeff = (p_eff - q) * q_num
        grad = 4.0 * ((np.diag(coeff.sum(axis=1)) - coeff) @ y)
        momentum = 0.5 if it < 60 else 0.8
        velocity = momentum * velocity - learning_rate * grad
        y += velocity
        y -= y.mean(axis=0)
    return y
