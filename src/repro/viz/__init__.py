"""Visualisation utilities: t-SNE, cluster quality, ascii charts."""

from .curves import format_table, render_series
from .embedding_quality import intra_inter_ratio, silhouette_score
from .tsne import tsne

__all__ = [
    "tsne",
    "intra_inter_ratio",
    "silhouette_score",
    "render_series",
    "format_table",
]
