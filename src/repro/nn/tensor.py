"""A reverse-mode automatic-differentiation engine on top of numpy.

This module is the deep-learning substrate of the reproduction: the paper
trains its reconstruction layers, selection layers and GNNs with
backpropagation (PyTorch in the original).  No deep-learning framework is
available offline, so :class:`Tensor` implements the same mechanics —
dynamic computation graphs, broadcasting-aware gradients, and the gather /
scatter primitives that message-passing GNNs are built from.

Only the operations the rest of the library needs are implemented, each with
an explicit backward closure.  Gradients are validated against central finite
differences in ``tests/test_nn_tensor.py``.

Compute-heavy forward kernels (gemm, transcendentals, reductions,
gather/scatter) are routed through the process-global backend from
:mod:`repro.nn.backend`.  The default :class:`~repro.nn.backend.NumpyBackend`
reproduces the exact expressions this module used before the seam existed,
so default runs stay bit-identical; accelerated backends (float32, blocked
gemm, fused segment kernels) are opt-in and scoped to no-grad inference by
the model.  Backward closures always use plain float64 numpy — gradients
never flow through an accelerated backend.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from . import backend as _backend

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record a backward graph."""
    return _GRAD_ENABLED


def _grad_active(*tensors: "Tensor") -> bool:
    """Whether an op over ``tensors`` must record a backward closure.

    Ops call this *before* constructing their backward closure: under
    ``no_grad()`` (or when no input requires grad) they return a plain
    result tensor immediately, so inference allocates no closure cells, no
    parent tuples and no graph bookkeeping — the "skip backward-closure
    allocation" half of the fused inference fast path.
    """
    return _GRAD_ENABLED and any(t.requires_grad for t in tensors)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array that records operations for backpropagation.

    Parameters
    ----------
    data:
        Array-like payload; converted to an ndarray in the active backend's
        compute dtype (``float64`` on the default backend).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = _backend._ACTIVE.tensor(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def T(self) -> "Tensor":
        """Transpose (reversed axes), as a differentiable op."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        """The first element as a Python float."""
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Drop the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order over the dynamic graph.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data
        if not _grad_active(self, other):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), _backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data
        if not _grad_active(self, other):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), _backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data
        if not _grad_active(self, other):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), _backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        if not _grad_active(self):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), _backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = _backend._ACTIVE.matmul(self.data, other.data)
        if not _grad_active(self, other):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data)
                                     if self.data.ndim == 2
                                     else grad * other.data)
                else:
                    g = grad @ other.data.swapaxes(-1, -2)
                    self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad)
                                      if other.data.ndim == 2
                                      else grad * self.data)
                else:
                    g = self.data.swapaxes(-1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), _backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = _backend._ACTIVE.exp(self.data)
        if not _grad_active(self):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), _backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = _backend._ACTIVE.log(self.data)
        if not _grad_active(self):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), _backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self**0.5

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid (inputs clipped to ±60)."""
        out_data = _backend._ACTIVE.sigmoid(self.data)
        if not _grad_active(self):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), _backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = _backend._ACTIVE.tanh(self.data)
        if not _grad_active(self):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), _backward)

    def relu(self) -> "Tensor":
        """Elementwise ``max(x, 0)``."""
        mask = self.data > 0
        out_data = self.data * mask
        if not _grad_active(self):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), _backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        """Elementwise leaky ReLU with the given negative slope."""
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)
        out_data = self.data * scale
        if not _grad_active(self):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * scale)

        return Tensor._make(out_data, (self,), _backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value."""
        out_data = np.abs(self.data)
        if not _grad_active(self):
            return Tensor(out_data)
        sign = np.sign(self.data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), _backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to the given bounds."""
        out_data = np.clip(self.data, low, high)
        if not _grad_active(self):
            return Tensor(out_data)
        mask = (self.data >= low) & (self.data <= high)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), _backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all elements when ``axis`` is None)."""
        out_data = _backend._ACTIVE.reduce_sum(self.data, axis=axis,
                                               keepdims=keepdims)
        if not _grad_active(self):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), _backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``."""
        out_data = _backend._ACTIVE.reduce_max(self.data, axis=axis,
                                               keepdims=keepdims)
        if not _grad_active(self):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            mask = self.data == expanded
            # Split gradient among ties, matching subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(np.broadcast_to(g, self.shape) * mask / counts)

        return Tensor._make(out_data, (self,), _backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Same data viewed under a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not _grad_active(self):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return Tensor._make(out_data, (self,), _backward)

    def transpose(self, *axes) -> "Tensor":
        """Permute axes (reversed when none are given)."""
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        if not _grad_active(self):
            return Tensor(out_data)
        inverse = np.argsort(axes)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), _backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if not _grad_active(self):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), _backward)

    # ------------------------------------------------------------------
    # Gather / scatter — the message-passing primitives
    # ------------------------------------------------------------------
    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Select rows ``self[index]`` (index may repeat), differentiable."""
        index = np.asarray(index, dtype=np.int64)
        out_data = _backend._ACTIVE.gather_rows(self.data, index)
        if not _grad_active(self):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), _backward)

    def scatter_add(self, index: np.ndarray, num_targets: int) -> "Tensor":
        """Sum rows of ``self`` into ``num_targets`` buckets by ``index``.

        The forward pass computes ``out[t] = sum_{i: index[i]==t} self[i]``,
        which is exactly the aggregation step of message passing.
        """
        index = np.asarray(index, dtype=np.int64)
        out_data = _backend._ACTIVE.scatter_add(self.data, index, num_targets)
        if not _grad_active(self):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[index])

        return Tensor._make(out_data, (self,), _backward)

    # ------------------------------------------------------------------
    # Joining
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along an existing axis."""
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        if not _grad_active(*tensors):
            return Tensor(out_data)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _backward(grad: np.ndarray) -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    t._accumulate(grad[tuple(slicer)])

        return Tensor._make(out_data, tensors, _backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        """Stack tensors along a new axis."""
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)
        if not _grad_active(*tensors):
            return Tensor(out_data)

        def _backward(grad: np.ndarray) -> None:
            parts = np.split(grad, len(tensors), axis=axis)
            for t, part in zip(tensors, parts):
                if t.requires_grad:
                    t._accumulate(np.squeeze(part, axis=axis))

        return Tensor._make(out_data, tensors, _backward)


def as_tensor(value) -> Tensor:
    """Coerce scalars / ndarrays / tensors into :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
