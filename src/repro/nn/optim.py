"""Gradient-descent optimisers and learning-rate schedules.

The paper pre-trains with AdamW (lr 1e-3, weight decay 1e-3, Sec. V-A4);
SGD and Adam are provided for the baselines and ablations.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "StepLR", "clip_grad_norm"]


class Optimizer:
    """Base optimiser over a list of :class:`Parameter`."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        """Reset the gradient of every managed parameter."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one parameter update; implemented by subclasses."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """SGD update with optional momentum and L2 weight decay."""
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected moments."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        """Adam update with bias-corrected first and second moments."""
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._t
        bias2 = 1.0 - beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    This matches the paper's pre-training optimiser (lr=1e-3, wd=1e-3).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 1e-3):
        super().__init__(parameters, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        """Apply decoupled weight decay, then the Adam update."""
        if self.decoupled_weight_decay:
            for p in self.parameters:
                if p.grad is not None:
                    p.data -= self.lr * self.decoupled_weight_decay * p.data
        super().step()


class StepLR:
    """Multiply the optimiser's learning rate by ``gamma`` every ``step_size``."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._count = 0

    def step(self) -> None:
        """Advance the schedule; decay ``lr`` every ``step_size`` calls."""
        self._count += 1
        if self._count % self.step_size == 0:
            self.optimizer.lr *= self.gamma


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm in place; returns the pre-clip norm."""
    total = 0.0
    params = [p for p in parameters if p.grad is not None]
    for p in params:
        total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            p.grad *= scale
    return norm
