"""Weight initialisation schemes for the NN substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros", "normal"]


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Glorot uniform initialisation: U(-a, a) with a = sqrt(6/(fan_in+fan_out))."""
    bound = float(np.sqrt(6.0 / (fan_in + fan_out)))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(rng: np.random.Generator, fan_in: int, fan_out: int,
                  shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Glorot normal initialisation: N(0, 2/(fan_in+fan_out))."""
    std = float(np.sqrt(2.0 / (fan_in + fan_out)))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(rng: np.random.Generator, fan_in: int,
                    shape: tuple[int, ...]) -> np.ndarray:
    """He uniform initialisation for ReLU networks."""
    bound = float(np.sqrt(6.0 / fan_in))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros float64 initialisation."""
    return np.zeros(shape, dtype=np.float64)


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02) -> np.ndarray:
    """Gaussian initialisation with mean 0 and the given std."""
    return rng.normal(0.0, std, size=shape)
