"""Numpy-backed neural-network substrate (autograd, layers, optimisers)."""

from . import functional
from .layers import (
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    Linear,
    MLP,
    Module,
    Parameter,
    Sequential,
)
from .optim import SGD, Adam, AdamW, Optimizer, StepLR, clip_grad_norm
from .serialization import load_state, save_state
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Sequential",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "Identity",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "StepLR",
    "clip_grad_norm",
    "save_state",
    "load_state",
]
