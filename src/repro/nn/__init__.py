"""Numpy-backed neural-network substrate (autograd, layers, optimisers).

Compute kernels are routed through a pluggable backend seam
(:mod:`repro.nn.backend`): the default backend is bit-identical thinly
wrapped numpy; accelerated backends (float32, blocked gemm, fused
message passing) are opt-in per config. See ``docs/backends.md``.
"""

from . import functional
from .backend import (
    Backend,
    NumpyBackend,
    get_backend,
    make_backend,
    set_backend,
    use_backend,
)
from .layers import (
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    Linear,
    MLP,
    Module,
    Parameter,
    Sequential,
)
from .optim import SGD, Adam, AdamW, Optimizer, StepLR, clip_grad_norm
from .serialization import load_state, save_state
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "Backend",
    "NumpyBackend",
    "get_backend",
    "set_backend",
    "use_backend",
    "make_backend",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Sequential",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "Identity",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "StepLR",
    "clip_grad_norm",
    "save_state",
    "load_state",
]
