"""Stateless differentiable functions used throughout the library."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "binary_cross_entropy",
    "l2_normalize",
    "cosine_similarity",
    "pairwise_cosine",
    "one_hot",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (n, m) and integer ``labels`` (n,).

    This is the loss of Eqs. 12–13 in the paper (Neighbor Matching and
    Multi-Task pre-training objectives).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ValueError("labels must be 1-D and match the logits batch size")
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(labels.shape[0])
    picked = log_probs[rows, labels]
    return -picked.mean()


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood for pre-computed log-probabilities."""
    labels = np.asarray(labels, dtype=np.int64)
    rows = np.arange(labels.shape[0])
    return -log_probs[rows, labels].mean()


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = as_tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def binary_cross_entropy(probabilities: Tensor, targets) -> Tensor:
    """Mean BCE on probabilities in (0, 1)."""
    targets = as_tensor(targets).detach()
    eps = 1e-12
    clipped = probabilities.clip(eps, 1.0 - eps)
    loss = targets * clipped.log() + (1.0 - targets) * (1.0 - clipped).log()
    return -loss.mean()


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalise rows of ``x`` to unit L2 norm."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norm


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Cosine similarity between matching rows of ``a`` and ``b`` (Eq. 6/11)."""
    return (l2_normalize(a, axis=axis) * l2_normalize(b, axis=axis)).sum(axis=axis)


def pairwise_cosine(a: Tensor, b: Tensor) -> Tensor:
    """All-pairs cosine similarity matrix between rows of ``a`` and ``b``.

    Returns a tensor of shape ``(a.shape[0], b.shape[0])``; this is how the
    Prompt Selector scores every (query, candidate-prompt) pair and how Eq. 11
    compares a query embedding against every label embedding.
    """
    return l2_normalize(a) @ l2_normalize(b).T


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Plain ndarray one-hot encoding (not differentiable, used for inputs)."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
