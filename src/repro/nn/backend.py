"""Pluggable tensor-compute backends: the seam between ops and kernels.

Every compute-heavy operation of the :class:`~repro.nn.Tensor` engine and
of the fused no-grad GNN forwards — gemm, the transcendental elementwise
kernels, reductions, and the gather/scatter/segment primitives message
passing is built from — is routed through a process-global
:class:`Backend` object instead of calling numpy directly.  The default
:class:`NumpyBackend` reproduces the exact numpy expressions the engine
used before the seam existed, so default runs are **bit-identical** to the
pre-backend code and every equivalence suite stays green.

The accelerated backends are opt-in (``config.tensor_backend`` /
``config.inference_dtype``) and trade bit-identity for speed within a
documented tolerance:

* :class:`FusedBackend` (``"fused"``) replaces ``np.add.at`` /
  ``np.maximum.at`` scatter loops with sort + ``reduceat`` segment
  kernels and fuses the SAGE/GAT message-passing aggregations (gather →
  weight → scatter-mean in one sorted pass, no unsorted intermediate).
* :class:`BlockedBackend` (``"blocked"``) adds a blocked/threaded gemm:
  large matmuls are split into row blocks dispatched on a thread pool
  (BLAS releases the GIL), falling back to plain ``@`` for small shapes
  or single-core hosts.
* ``"fast"`` composes both.

Any backend can additionally run at ``float32`` compute precision
(``config.inference_dtype="float32"``): :meth:`Backend.tensor` then
coerces tensor payloads to float32 and :meth:`Backend.param` casts the
(float64) model weights on the way into each kernel, making inference
float32 end-to-end.

Accelerated backends are meant for ``no_grad()`` inference; the model
activates its configured backend only around no-grad forwards, so
training always runs on the exact float64 path.  The authoring guide —
contract, tolerance rules, and a worked example — lives in
``docs/backends.md``.
"""

from __future__ import annotations

import contextlib
import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

try:  # Optional accelerator for the fused backend's scatter kernels.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy is optional by design
    _sparse = None

__all__ = [
    "Backend",
    "NumpyBackend",
    "FusedBackend",
    "BlockedBackend",
    "FastBackend",
    "BACKENDS",
    "get_backend",
    "set_backend",
    "use_backend",
    "make_backend",
]


class Backend:
    """The backend protocol: every kernel the tensor engine routes.

    Subclasses override kernels; anything not overridden inherits the
    reference numpy implementation from :class:`NumpyBackend` (the base
    implementations below), which is bit-identical to the pre-seam code.

    Attributes
    ----------
    name:
        Registry key (``config.tensor_backend`` value).
    exact:
        ``True`` when every kernel is bit-identical to the reference
        float64 path.  Exact backends may serve as equivalence-suite
        substitutes; accelerated backends are gated by tolerance instead
        (see ``docs/backends.md``).
    dtype:
        Compute precision.  ``np.float64`` is the exact default;
        ``np.float32`` halves memory traffic and roughly doubles gemm
        throughput at ~1e-6 relative error.
    """

    name = "backend"
    exact = True

    def __init__(self, dtype=np.float64):
        self.dtype = np.dtype(dtype)
        if self.dtype != np.float64:
            self.exact = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, dtype={self.dtype})"

    # -- payload coercion ------------------------------------------------
    def tensor(self, data) -> np.ndarray:
        """Coerce a tensor payload to this backend's compute dtype.

        The reference expression is ``np.asarray(data, dtype=np.float64)``
        — exactly what ``Tensor.__init__`` always did — so the default
        backend is a no-op relative to history.
        """
        return np.asarray(data, dtype=self.dtype)

    def param(self, data: np.ndarray) -> np.ndarray:
        """A model weight as seen by this backend's kernels.

        Weights are stored float64 (training precision); a float32
        backend casts them on the way into each kernel.  ``np.asarray``
        returns the array itself when the dtype already matches, so the
        exact path adds no copy.
        """
        return np.asarray(data, dtype=self.dtype)

    # -- gemm ------------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product ``a @ b`` in compute dtype."""
        if a.dtype != self.dtype:
            a = a.astype(self.dtype, copy=False)
        if b.dtype != self.dtype:
            b = b.astype(self.dtype, copy=False)
        return a @ b

    # -- transcendental elementwise kernels ------------------------------
    def exp(self, x: np.ndarray) -> np.ndarray:
        """Elementwise ``e**x``."""
        return np.exp(x)

    def log(self, x: np.ndarray) -> np.ndarray:
        """Elementwise natural log."""
        return np.log(x)

    def tanh(self, x: np.ndarray) -> np.ndarray:
        """Elementwise hyperbolic tangent."""
        return np.tanh(x)

    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        """Numerically-clipped logistic function (the engine's reference
        expression, including the ±60 clip)."""
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    # -- reductions ------------------------------------------------------
    def reduce_sum(self, x: np.ndarray, axis=None,
                   keepdims: bool = False) -> np.ndarray:
        """``x.sum(axis, keepdims)``."""
        return x.sum(axis=axis, keepdims=keepdims)

    def reduce_max(self, x: np.ndarray, axis=None,
                   keepdims: bool = False) -> np.ndarray:
        """``x.max(axis, keepdims)``."""
        return x.max(axis=axis, keepdims=keepdims)

    # -- gather / scatter / segment primitives ---------------------------
    def gather_rows(self, x: np.ndarray, index: np.ndarray) -> np.ndarray:
        """Row gather ``x[index]`` (index may repeat)."""
        return x[index]

    def scatter_add(self, values: np.ndarray, index: np.ndarray,
                    num_segments: int) -> np.ndarray:
        """Sum rows of ``values`` into ``num_segments`` buckets.

        Reference kernel: zero-init + sequential ``np.add.at``, the exact
        summation order of :meth:`Tensor.scatter_add`.
        """
        out = np.zeros((num_segments,) + values.shape[1:],
                       dtype=values.dtype)
        np.add.at(out, index, values)
        return out

    def segment_count(self, index: np.ndarray,
                      num_segments: int) -> np.ndarray:
        """Rows per segment, clamped to ≥ 1, in compute dtype (float64 on
        the default path — the reference dtype of
        :func:`repro.gnn.message_passing.segment_count`)."""
        counts = np.bincount(index, minlength=num_segments).astype(self.dtype)
        return np.maximum(counts, 1.0)

    def segment_softmax(self, scores: np.ndarray, index: np.ndarray,
                        num_segments: int) -> np.ndarray:
        """Per-segment softmax with the reference max-shift stabilisation
        (``np.maximum.at`` + ``np.add.at``), dtype-preserving."""
        max_per_segment = np.full(num_segments, -np.inf, dtype=scores.dtype)
        np.maximum.at(max_per_segment, index, scores)
        max_per_segment[~np.isfinite(max_per_segment)] = 0.0
        exps = np.exp(scores - max_per_segment[index])
        denom = np.zeros(num_segments, dtype=exps.dtype)
        np.add.at(denom, index, exps)
        eps = np.asarray(1e-16, dtype=scores.dtype)
        return exps / (denom[index] + eps)

    # -- fused message-passing kernels -----------------------------------
    def sage_aggregate(self, h: np.ndarray, src: np.ndarray,
                       dst: np.ndarray, num_nodes: int,
                       edge_weights: np.ndarray | None = None,
                       rel_emb: np.ndarray | None = None) -> np.ndarray:
        """Mean-aggregated neighbour messages of one SAGE layer.

        ``out[u] = mean_{(v→u)} (w_uv · (h[v] [+ r_uv]))`` — the reference
        kernel materialises the per-edge message matrix and scatter-sums
        it with ``np.add.at``, matching the autodiff path op-for-op.
        """
        if rel_emb is not None and rel_emb.dtype != h.dtype:
            rel_emb = rel_emb.astype(h.dtype)
        if edge_weights is not None and edge_weights.dtype != h.dtype:
            edge_weights = edge_weights.astype(h.dtype)
        messages = h[src]
        if rel_emb is not None:
            messages = messages + rel_emb
        if edge_weights is not None:
            messages = messages * edge_weights.reshape(-1, 1)
        return (self.scatter_add(messages, dst, num_nodes)
                / self.segment_count(dst, num_nodes).reshape(-1, 1))

    def weighted_gather_scatter(self, values: np.ndarray, src: np.ndarray,
                                alpha: np.ndarray, dst: np.ndarray,
                                num_nodes: int) -> np.ndarray:
        """Attention aggregation ``sum_{(v→u)} alpha_uv · values[v]``
        (the per-head message step of GAT)."""
        return self.scatter_add(values[src] * alpha.reshape(-1, 1),
                                dst, num_nodes)

    def scatter_weighted(self, messages: np.ndarray, alpha: np.ndarray,
                         dst: np.ndarray, num_nodes: int) -> np.ndarray:
        """Weighted scatter-sum of pre-built per-edge ``messages`` (the
        task-graph attention aggregation)."""
        return self.scatter_add(messages * alpha.reshape(-1, 1),
                                dst, num_nodes)


class NumpyBackend(Backend):
    """The exact reference backend: thinly wrapped numpy, bit-identical
    to the pre-seam engine on every kernel."""

    name = "numpy"
    exact = True


def _segment_layout(index: np.ndarray, num_segments: int):
    """Sorted-segment layout: (order, unique segment ids, run starts).

    Shared by every reduceat-based kernel.  ``kind="stable"`` keeps
    equal-key rows in edge order, so per-segment summation order is the
    edge order — the same order ``np.add.at`` visits, just contiguous.
    """
    order = np.argsort(index, kind="stable")
    sorted_index = index[order]
    uniq, starts = np.unique(sorted_index, return_index=True)
    return order, uniq, starts


class FusedBackend(Backend):
    """Fused segment kernels: CSR-matmul scatter with reduceat fallback.

    ``np.add.at`` / ``np.maximum.at`` process one row per iteration of a
    C loop.  When scipy is importable, every (edges, dim) scatter becomes
    one sparse CSR matrix–matrix product — the aggregation weights ride
    in the matrix values, so gather → weight → scatter collapses into a
    single C kernel with no per-edge intermediate.  Without scipy, the
    edge list is sorted by destination and contiguous runs are reduced
    with vectorised ``reduceat``.  Either way the per-segment summation
    and multiplication order differ from the reference kernel, so results
    agree to float rounding, not bit-for-bit — the accelerated-path
    tolerance contract.
    """

    name = "fused"
    exact = False

    @staticmethod
    def _csr(data: np.ndarray, cols: np.ndarray, index: np.ndarray,
             num_segments: int, num_cols: int):
        """CSR matrix with row ``index[i]`` ↦ column ``cols[i]`` carrying
        ``data[i]`` — left-multiplying it is a segment-sum by ``index``."""
        counts = np.bincount(index, minlength=num_segments)
        indptr = np.empty(num_segments + 1, dtype=np.int64)
        indptr[0] = 0
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(index, kind="stable")
        return _sparse.csr_matrix(
            (data[order], cols[order].astype(np.int64, copy=False), indptr),
            shape=(num_segments, num_cols))

    def scatter_add(self, values: np.ndarray, index: np.ndarray,
                    num_segments: int) -> np.ndarray:
        """Scatter-add rows via one CSR matmul (reduceat when scipy is absent)."""
        out = np.zeros((num_segments,) + values.shape[1:],
                       dtype=values.dtype)
        if index.size == 0:
            return out
        if _sparse is not None and values.ndim == 2:
            edge_ids = np.arange(index.size, dtype=np.int64)
            matrix = self._csr(np.ones(index.size, dtype=values.dtype),
                               edge_ids, index, num_segments, index.size)
            return matrix @ values
        order, uniq, starts = _segment_layout(index, num_segments)
        out[uniq] = np.add.reduceat(values[order], starts, axis=0)
        return out

    def segment_softmax(self, scores: np.ndarray, index: np.ndarray,
                        num_segments: int) -> np.ndarray:
        """Segment softmax over the sorted-segment layout."""
        if index.size == 0:
            return np.zeros(0, dtype=scores.dtype)
        order, uniq, starts = _segment_layout(index, num_segments)
        sorted_scores = scores[order]
        max_per_segment = np.zeros(num_segments, dtype=scores.dtype)
        max_per_segment[uniq] = np.maximum.reduceat(sorted_scores, starts)
        exps = np.exp(scores - max_per_segment[index])
        denom = np.zeros(num_segments, dtype=exps.dtype)
        denom[uniq] = np.add.reduceat(exps[order], starts)
        eps = np.asarray(1e-16, dtype=scores.dtype)
        return exps / (denom[index] + eps)

    def segment_count(self, index: np.ndarray,
                      num_segments: int) -> np.ndarray:
        """Per-segment occupancy counts."""
        counts = np.bincount(index, minlength=num_segments)
        return np.maximum(counts, 1).astype(self.dtype)

    def sage_aggregate(self, h: np.ndarray, src: np.ndarray,
                       dst: np.ndarray, num_nodes: int,
                       edge_weights: np.ndarray | None = None,
                       rel_emb: np.ndarray | None = None) -> np.ndarray:
        """Fused mean-aggregation of neighbour rows per destination node."""
        out = np.zeros((num_nodes, h.shape[1]), dtype=h.dtype)
        if dst.size == 0:
            return out
        if rel_emb is not None and rel_emb.dtype != h.dtype:
            rel_emb = rel_emb.astype(h.dtype)
        if edge_weights is not None and edge_weights.dtype != h.dtype:
            edge_weights = edge_weights.astype(h.dtype)
        counts = self.segment_count(dst, num_nodes).reshape(-1, 1)
        if _sparse is not None:
            # The whole gather → (+rel) → (*w) → scatter chain as sparse
            # matmuls: the edge weight rides in the matrix values, so the
            # per-edge message matrix is never materialised at all.
            weights = (edge_weights if edge_weights is not None
                       else np.ones(dst.size, dtype=h.dtype))
            out = self._csr(weights, src, dst, num_nodes, num_nodes) @ h
            if rel_emb is not None:
                edge_ids = np.arange(dst.size, dtype=np.int64)
                out += self._csr(weights, edge_ids, dst, num_nodes,
                                 dst.size) @ rel_emb
            return out / counts
        order, uniq, starts = _segment_layout(dst, num_nodes)
        # Gather straight into sorted edge order: the unsorted message
        # matrix of the reference kernel is never materialised.
        messages = h[src[order]]
        if rel_emb is not None:
            messages += rel_emb[order]
        if edge_weights is not None:
            messages *= edge_weights[order].reshape(-1, 1)
        out[uniq] = np.add.reduceat(messages, starts, axis=0)
        return out / counts

    def weighted_gather_scatter(self, values: np.ndarray, src: np.ndarray,
                                alpha: np.ndarray, dst: np.ndarray,
                                num_nodes: int) -> np.ndarray:
        """Fused gather, per-edge scale, and scatter in one CSR matmul."""
        out = np.zeros((num_nodes, values.shape[1]), dtype=values.dtype)
        if dst.size == 0:
            return out
        if _sparse is not None:
            alpha = alpha.astype(values.dtype, copy=False)
            return self._csr(alpha, src, dst, num_nodes,
                             values.shape[0]) @ values
        order, uniq, starts = _segment_layout(dst, num_nodes)
        messages = values[src[order]] * alpha[order].reshape(-1, 1)
        out[uniq] = np.add.reduceat(messages, starts, axis=0)
        return out

    def scatter_weighted(self, messages: np.ndarray, alpha: np.ndarray,
                         dst: np.ndarray, num_nodes: int) -> np.ndarray:
        """Scatter rows scaled by per-edge weights in one CSR matmul."""
        out = np.zeros((num_nodes, messages.shape[1]),
                       dtype=messages.dtype)
        if dst.size == 0:
            return out
        if _sparse is not None:
            edge_ids = np.arange(dst.size, dtype=np.int64)
            alpha = alpha.astype(messages.dtype, copy=False)
            return self._csr(alpha, edge_ids, dst, num_nodes,
                             dst.size) @ messages
        order, uniq, starts = _segment_layout(dst, num_nodes)
        weighted = messages[order] * alpha[order].reshape(-1, 1)
        out[uniq] = np.add.reduceat(weighted, starts, axis=0)
        return out


def _usable_cores() -> int:
    """Affinity-aware core count (mirrors ``repro.shard.workers``)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class BlockedBackend(Backend):
    """Blocked/threaded gemm over the reference kernels.

    Row-blocks of the left operand are dispatched to a shared thread pool
    (numpy's BLAS releases the GIL inside ``matmul``), writing each block
    straight into the preallocated output.  Small matmuls — and any shape
    on a single-core host — take the plain ``@`` path: thread dispatch
    costs more than it buys there.  Each output row is the same dot
    product either way, so blocking is numerically benign, but BLAS
    kernel selection may differ per shape — the backend is therefore
    declared non-exact and gated by tolerance like the other accelerated
    paths.
    """

    name = "blocked"
    exact = False
    #: Minimum left-operand rows (and flop estimate) before blocking pays.
    min_rows = 512
    min_flops = 1 << 21

    _pool: ThreadPoolExecutor | None = None

    @classmethod
    def _executor(cls) -> ThreadPoolExecutor:
        if cls._pool is None:
            cls._pool = ThreadPoolExecutor(
                max_workers=min(4, _usable_cores()),
                thread_name_prefix="repro-gemm")
        return cls._pool

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-blocked threaded gemm; plain ``@`` under the size cutoffs."""
        if a.dtype != self.dtype:
            a = a.astype(self.dtype, copy=False)
        if b.dtype != self.dtype:
            b = b.astype(self.dtype, copy=False)
        cores = _usable_cores()
        if (cores < 2 or a.ndim != 2 or b.ndim != 2
                or a.shape[0] < self.min_rows
                or a.shape[0] * a.shape[1] * b.shape[1] < self.min_flops):
            return a @ b
        blocks = min(cores, 4)
        bounds = np.linspace(0, a.shape[0], blocks + 1).astype(int)
        out = np.empty((a.shape[0], b.shape[1]), dtype=self.dtype)
        futures = [
            self._executor().submit(
                np.matmul, a[lo:hi], b, out=out[lo:hi])
            for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
        ]
        for future in futures:
            future.result()
        return out


class FastBackend(FusedBackend):
    """``fused`` segment kernels + ``blocked`` gemm in one backend —
    the encoding fast path (pair it with ``inference_dtype="float32"``
    for the full win)."""

    name = "fast"
    exact = False

    matmul = BlockedBackend.matmul
    _executor = BlockedBackend._executor
    min_rows = BlockedBackend.min_rows
    min_flops = BlockedBackend.min_flops


#: Registry keyed by ``config.tensor_backend``.
BACKENDS = {
    cls.name: cls
    for cls in (NumpyBackend, FusedBackend, BlockedBackend, FastBackend)
}

_DEFAULT = NumpyBackend()
_ACTIVE: Backend = _DEFAULT


def get_backend() -> Backend:
    """The backend currently routing tensor kernels."""
    return _ACTIVE


def set_backend(backend: Backend | str | None) -> Backend:
    """Install ``backend`` (an instance, registry name, or ``None`` for
    the exact default) as the process-global backend; returns it."""
    global _ACTIVE
    if backend is None:
        backend = _DEFAULT
    elif isinstance(backend, str):
        backend = make_backend(backend)
    _ACTIVE = backend
    return backend


@contextlib.contextmanager
def use_backend(backend: Backend | str | None):
    """Scoped :func:`set_backend`: restores the previous backend on exit.

    The model wraps its no-grad forwards in this, so an accelerated
    backend never leaks into training or into another model's inference.
    """
    previous = _ACTIVE
    set_backend(backend)
    try:
        yield _ACTIVE
    finally:
        set_backend(previous)


def make_backend(name: str, dtype=np.float64) -> Backend:
    """Instantiate a registered backend at the given compute dtype.

    The exact default — ``("numpy", float64)`` — returns the shared
    default instance, so config-driven resolution costs nothing on the
    bit-identical path.
    """
    if name not in BACKENDS:
        raise ValueError(
            f"unknown tensor backend {name!r}; use one of {sorted(BACKENDS)}")
    dtype = np.dtype(dtype)
    if name == "numpy" and dtype == np.float64:
        return _DEFAULT
    return BACKENDS[name](dtype=dtype)
