"""Neural-network modules: parameter containers and common layers.

The layer zoo intentionally mirrors the small subset of ``torch.nn`` that the
paper's architecture needs: linear layers and two-layer MLPs (reconstruction
layers Eq. 2 and selection layers Eq. 5 are both "a two-layer neural
network"), embeddings for relation types and task-graph edge attributes,
dropout and layer normalisation for the GNN stacks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Sequence

import numpy as np

from . import init as init_schemes
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "MLP",
    "Sequential",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "Identity",
]


class Parameter(Tensor):
    """A tensor that is registered as a trainable weight of a module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class providing parameter registration and (de)serialisation.

    Subclasses assign :class:`Parameter` or :class:`Module` instances as
    attributes; :meth:`parameters` walks the tree.  ``training`` toggles
    behaviour of stochastic layers such as :class:`Dropout`.
    """

    def __init__(self):
        self.training = True

    # -- registration ---------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, value in vars(self).items():
            if name.startswith("_modules_list"):
                for i, child in enumerate(value):
                    yield from child.named_parameters(f"{prefix}{name}.{i}.")
            elif isinstance(value, Parameter):
                yield prefix + name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for name, value in vars(self).items():
            if name.startswith("_modules_list"):
                for child in value:
                    yield from child.modules()
            elif isinstance(value, Module):
                yield from value.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- training state --------------------------------------------------
    def train(self) -> "Module":
        """Put this module and all children in training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Put this module and all children in inference mode."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Reset the gradient of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # -- serialisation ----------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Copy of every parameter array, keyed by dotted name."""
        return OrderedDict(
            (name, param.data.copy()) for name, param in self.named_parameters()
        )

    def load_state_dict(self, state: dict) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            value = np.asarray(value, dtype=np.float64)
            if own[name].shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{own[name].shape} vs {value.shape}"
                )
            own[name].data = value.copy()

    # -- call protocol -----------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module's output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Identity(Module):
    """Pass-through module."""

    def forward(self, x: Tensor) -> Tensor:
        """Return ``x`` unchanged."""
        return x


class Linear(Module):
    """Affine transform ``x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init_schemes.xavier_uniform(rng, in_features, out_features)
        )
        self.bias = Parameter(init_schemes.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Affine map ``x @ weight + bias``."""
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


_ACTIVATIONS = {
    "relu": lambda x: x.relu(),
    "tanh": lambda x: x.tanh(),
    "sigmoid": lambda x: x.sigmoid(),
    "leaky_relu": lambda x: x.leaky_relu(),
    "identity": lambda x: x,
}


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    The paper's reconstruction layer (Eq. 2) and selection layer (Eq. 5) are
    both instances of this module ("we use a two-layer neural network",
    Sec. V-F).
    """

    def __init__(self, dims: Sequence[int], activation: str = "relu",
                 final_activation: str | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        rng = rng or np.random.default_rng(0)
        self.dims = tuple(dims)
        self.activation = activation
        self.final_activation = final_activation
        self._modules_list = [
            Linear(dims[i], dims[i + 1], rng=rng) for i in range(len(dims) - 1)
        ]

    def forward(self, x: Tensor) -> Tensor:
        """Apply each layer with the activation between hidden layers."""
        act = _ACTIVATIONS[self.activation]
        last = len(self._modules_list) - 1
        for i, layer in enumerate(self._modules_list):
            x = layer(x)
            if i < last:
                x = act(x)
        if self.final_activation is not None:
            x = _ACTIVATIONS[self.final_activation](x)
        return x


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._modules_list = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the chained modules in order."""
        for module in self._modules_list:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._modules_list)

    def __len__(self):
        return len(self._modules_list)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init_schemes.normal(rng, (num_embeddings, embedding_dim), std=0.1)
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        """Look up dense vectors for integer ``ids``."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings})"
            )
        return self.weight.gather_rows(ids.reshape(-1)).reshape(
            tuple(ids.shape) + (self.embedding_dim,)
        )


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        """Randomly zero entries when training; identity in eval mode."""
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones((dim,)))
        self.beta = Parameter(np.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        """Normalise over the last dimension, then scale and shift."""
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta
