"""Saving and loading module weights as checksummed ``.npz`` archives.

Weights are written atomically (temp + fsync + ``os.replace`` via
:func:`repro.persist.atomic_write`) with a CRC32 over every array folded
into the archive, and verified on load: a truncated download, torn copy,
or bit-flipped file raises the typed
:class:`~repro.persist.CorruptArtifactError` instead of surfacing as a raw
``BadZipFile``/pickle traceback from deep inside numpy.  Archives written
before the checksum landed (no ``__checksum__`` entry) still load — their
container integrity is checked, just not their payload digest.
"""

from __future__ import annotations

import io
import zipfile

import numpy as np

from ..persist.atomic import (
    CorruptArtifactError,
    atomic_write,
    checksum_arrays,
)
from .layers import Module

__all__ = ["save_state", "load_state", "CorruptArtifactError"]

_CHECKSUM_KEY = "__checksum__"


def save_state(module: Module, path: str) -> None:
    """Persist a module's state dict to ``path`` (checksummed ``.npz``).

    Written atomically: a crash mid-save leaves any previous file intact.
    """
    state = {key: np.asarray(value)
             for key, value in module.state_dict().items()}
    arrays = dict(state)
    arrays[_CHECKSUM_KEY] = np.array([checksum_arrays(state)],
                                     dtype=np.uint64)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    with atomic_write(path, "wb") as handle:
        handle.write(buffer.getvalue())


def load_state(module: Module, path: str) -> None:
    """Restore a module's weights from a ``.npz`` produced by
    :func:`save_state`.

    Raises :class:`CorruptArtifactError` when the file is truncated,
    unreadable, or fails its checksum; archive/module key mismatches
    (e.g. loading an ``mlp`` scorer's state into a ``bilinear`` model)
    still raise ``KeyError`` from ``load_state_dict`` as before.
    """
    try:
        with np.load(path) as archive:
            state = {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as error:
        raise CorruptArtifactError(
            f"model state {path} is unreadable (truncated or damaged): "
            f"{type(error).__name__}: {error}") from error
    stored = state.pop(_CHECKSUM_KEY, None)
    if stored is not None and int(stored[0]) != checksum_arrays(state):
        raise CorruptArtifactError(
            f"model state {path} failed its checksum — the file was "
            f"corrupted after it was written")
    module.load_state_dict(state)
