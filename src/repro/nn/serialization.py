"""Saving and loading module weights as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .layers import Module

__all__ = ["save_state", "load_state"]


def save_state(module: Module, path: str) -> None:
    """Persist a module's state dict to ``path`` (numpy ``.npz``)."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(module: Module, path: str) -> None:
    """Restore a module's weights from a ``.npz`` produced by :func:`save_state`."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
