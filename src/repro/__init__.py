"""GraphPrompter reproduction (ICDE 2025, arXiv:2505.02027).

A from-scratch implementation of multi-stage adaptive prompt optimization
for graph in-context learning, plus every substrate it needs: a numpy
autograd engine, GNN layers, synthetic benchmark datasets, baselines and a
full experiment harness.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the reproduced tables and figures.
"""

from .core import (
    Episode,
    EpisodeResult,
    GraphPrompterConfig,
    GraphPrompterModel,
    GraphPrompterPipeline,
    PretrainConfig,
    Pretrainer,
    prodigy_config,
    sample_episode,
)
from .datasets import Dataset, load_dataset
from .serving import PromptServer, ServeResult

__version__ = "1.1.0"

__all__ = [
    "PromptServer",
    "ServeResult",
    "GraphPrompterConfig",
    "prodigy_config",
    "GraphPrompterModel",
    "GraphPrompterPipeline",
    "Pretrainer",
    "PretrainConfig",
    "Episode",
    "EpisodeResult",
    "sample_episode",
    "Dataset",
    "load_dataset",
    "__version__",
]
