"""Command-line entry point: ``python -m repro <experiment> [options]``.

Runs any of the paper's tables/figures (or the design-choice ablations)
from the shell and prints the reproduced table::

    python -m repro table4
    python -m repro fig5 --fast
    python -m repro all --fast
    python -m repro list

plus the perf-regression harness (its own flag set, see ``repro bench -h``)::

    python -m repro bench --quick --baseline BENCH_hotpaths.json
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import (
    ExperimentContext,
    ablation_cache_policy,
    ablation_knn_metric,
    ablation_recon_scorer,
    serve_bench,
    serve_bench_gateway,
    serve_bench_mutating,
    serve_bench_recovery,
    serve_bench_sharded,
    serve_gateway_demo,
    fig3_ablation,
    fig4_gnn_architectures,
    fig5_cache_size,
    fig6_shots_sweep,
    fig7_embedding_distribution,
    fig8_multi_hop,
    fig9_training_curves,
    table2_dataset_statistics,
    table3_arxiv,
    table4_kg,
    table5_many_ways,
    table6_ofa_comparison,
    table7_random_pseudo_labels,
    table8_inference_time,
)

EXPERIMENTS = {
    "table2": (table2_dataset_statistics, "dataset statistics"),
    "table3": (table3_arxiv, "arXiv node classification vs ways"),
    "table4": (table4_kg, "KG edge classification (CN/FB/NELL)"),
    "table5": (table5_many_ways, "50-100-way episodes"),
    "table6": (table6_ofa_comparison, "OFA comparison"),
    "table7": (table7_random_pseudo_labels, "random pseudo-labels"),
    "table8": (table8_inference_time, "per-query inference time"),
    "fig3": (fig3_ablation, "stage ablations"),
    "fig4": (fig4_gnn_architectures, "GAT vs GraphSAGE"),
    "fig5": (fig5_cache_size, "cache-size sweep"),
    "fig6": (fig6_shots_sweep, "shots sweep"),
    "fig7": (fig7_embedding_distribution, "embedding cluster tightness"),
    "fig8": (fig8_multi_hop, "multi-hop subgraphs"),
    "fig9": (fig9_training_curves, "pre-training convergence"),
    "ablation-knn": (ablation_knn_metric, "retrieval metric sweep"),
    "ablation-cache": (ablation_cache_policy, "cache policy sweep"),
    "ablation-recon": (ablation_recon_scorer, "reconstruction scorer sweep"),
    "serve-bench": (serve_bench, "online serving micro-batch throughput"),
    "serve-bench-sharded": (serve_bench_sharded,
                            "sharded/parallel serving equivalence + QPS"),
    "serve-bench-mutating": (serve_bench_mutating,
                             "live-mutation serving + cold-rebuild equality"),
    "serve-bench-recovery": (serve_bench_recovery,
                             "crash/recovery differential + replica failover"),
    "serve-bench-gateway": (serve_bench_gateway,
                            "multi-tenant gateway QoS + equivalence bench"),
    "serve-gateway": (serve_gateway_demo,
                      "async multi-tenant gateway demo driver"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphPrompter reproduction — experiment runner",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', 'list', 'bench', "
             "'metrics', or 'serve-bench-scenarios'",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="smoke-test scale (seconds instead of minutes per experiment)",
    )
    parser.add_argument(
        "--pretrain-steps", type=int, default=400,
        help="pre-training steps for the cached GraphPrompter weights",
    )
    parser.add_argument(
        "--no-disk-cache", action="store_true",
        help="do not read/write .cache/repro-artifacts",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench":
        # The perf harness has its own flag set (--quick/--baseline/...);
        # dispatch before the experiment parser sees the arguments.
        from .perf import bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "metrics":
        # Observability driver (own flags, see 'repro metrics -h'): runs
        # an instrumented burst and prints Prometheus text exposition.
        from .obs.cli import metrics_main

        return metrics_main(argv[1:])
    if argv and argv[0] == "serve-bench-scenarios":
        # Workload scenario matrix (own flags: --scenarios/--baseline/
        # --prom-dir/...): generated traces, SLO verdicts, per-scenario
        # regression gates against BENCH_scenarios.json.
        from .experiments.scenarios import scenarios_main

        return scenarios_main(argv[1:])
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        entries = dict(EXPERIMENTS)
        entries["bench"] = (None,
                            "hot-path microbenchmarks + perf-regression check")
        entries["metrics"] = (None,
                              "instrumented burst -> Prometheus exposition")
        entries["serve-bench-scenarios"] = (
            None, "workload scenario matrix + SLO verdicts + gates")
        width = max(len(name) for name in entries)
        for name in sorted(entries):
            print(f"  {name:<{width}}  {entries[name][1]}")
        return 0

    if args.experiment == "all":
        names = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        names = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: {', '.join(sorted(EXPERIMENTS))} | all | list",
              file=sys.stderr)
        return 2

    context = ExperimentContext(
        pretrain_steps=args.pretrain_steps,
        fast=args.fast,
        use_disk_cache=not args.no_disk_cache,
    )
    timings: list[tuple[str, float, str]] = []
    failed = False
    for name in names:
        runner, _ = EXPERIMENTS[name]
        start = time.perf_counter()
        try:
            result = runner(context)
        except Exception as error:  # keep going: report all failures at once
            elapsed = time.perf_counter() - start
            timings.append((name, elapsed, "FAILED"))
            failed = True
            print(f"[{name} FAILED after {elapsed:.1f}s: "
                  f"{type(error).__name__}: {error}]\n", file=sys.stderr)
            continue
        elapsed = time.perf_counter() - start
        timings.append((name, elapsed, "ok"))
        print(result)
        print(f"[{name} finished in {elapsed:.1f}s]\n")

    if len(names) > 1:
        from .viz import format_table

        rows = [[name, f"{elapsed:.1f}", status]
                for name, elapsed, status in timings]
        rows.append(["total", f"{sum(t for _, t, _ in timings):.1f}",
                     "FAILED" if failed else "ok"])
        print(format_table(["Experiment", "Seconds", "Status"], rows,
                           title="Wall-clock summary"))
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
