"""Edge-cut graph partitioner: K shards with stable global↔local id maps.

The partitioner splits one :class:`~repro.graph.graph.Graph` into ``K``
shards.  Nodes are assigned to exactly one *owner* shard by a pluggable
strategy; every **directed edge** is then assigned to the shard owning its
source node (so each original edge lives on exactly one shard), and every
**undirected edge-slot** ``u → v`` of the symmetrised sampling view lives on
the shard owning ``u``.  Cross-shard destinations appear on the owning shard
as *ghost* nodes — local placeholders the store resolves through the
global↔local maps at query time (halo resolution).

Two strategies:

* ``"hash"`` — owner is a splitmix64 hash of the node id modulo ``K``.
  Stateless and stable under graph growth (a node's owner never depends on
  the rest of the graph), at the price of ignoring locality entirely.
* ``"greedy"`` — greedy balance: nodes in decreasing undirected-degree
  order are assigned to the currently lightest shard (load = assigned
  degree mass + 1 per node).  Deterministic (ties broken by node id, then
  lowest shard id) and markedly better edge balance on skewed degree
  distributions.

Bit-identity contract: each shard's local undirected CSR is built from the
doubled edge list *in global construction order*, so every owned node's
local row enumerates exactly the same destinations in exactly the same
order as the monolithic :attr:`Graph.undirected_adjacency` row — the
property the sharded samplers rely on to reproduce monolithic outputs
draw-for-draw.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRAdjacency, gather_csr_rows
from ..graph.graph import Graph

__all__ = [
    "PARTITION_STRATEGIES",
    "GraphShard",
    "ShardPlan",
    "ShardBuildContext",
    "partition_nodes",
    "partition_graph",
]

PARTITION_STRATEGIES = ("greedy", "hash")

_U64 = np.uint64


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit mix (splitmix64 finalizer), vectorized."""
    z = values.astype(_U64) + _U64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
    return z ^ (z >> _U64(31))


def partition_nodes(graph: Graph, num_shards: int,
                    strategy: str = "greedy") -> np.ndarray:
    """Owner shard per node, shape ``(num_nodes,)`` with values in [0, K)."""
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(f"unknown partition strategy {strategy!r}; "
                         f"use one of {PARTITION_STRATEGIES}")
    node_ids = np.arange(graph.num_nodes, dtype=np.int64)
    if num_shards == 1:
        return np.zeros(graph.num_nodes, dtype=np.int64)
    if strategy == "hash":
        return (_splitmix64(node_ids) % _U64(num_shards)).astype(np.int64)
    # Greedy balance: heaviest nodes first onto the lightest shard.  The
    # heap orders by (load, shard id) so ties resolve deterministically.
    degrees = np.asarray(graph.degree(), dtype=np.int64)
    order = np.argsort(-degrees, kind="stable")
    owner = np.empty(graph.num_nodes, dtype=np.int64)
    heap = [(0, k) for k in range(num_shards)]
    for node in order:
        load, k = heapq.heappop(heap)
        owner[node] = k
        # +1 per node keeps zero-degree nodes spreading evenly too.
        heapq.heappush(heap, (load + int(degrees[node]) + 1, k))
    return owner


@dataclass(frozen=True)
class GraphShard:
    """One shard: owned nodes, their undirected/directed rows, id maps.

    Local node-id space: owned nodes first (``0 .. num_owned-1``, in
    ascending global-id order), ghost nodes after (``num_owned ..``, also
    ascending).  ``local_nodes`` maps local → global for both ranges.
    """

    shard_id: int
    nodes: np.ndarray        # owned global ids, ascending, (num_owned,)
    local_nodes: np.ndarray  # local -> global, owned then ghosts
    num_owned: int
    csr: CSRAdjacency        # undirected rows of owned nodes, local ids
    d_indptr: np.ndarray     # directed row pointer over owned nodes
    d_indices: np.ndarray    # directed destinations, *global* ids
    d_edge_ids: np.ndarray   # original edge id per directed slot

    @property
    def edge_ids(self) -> np.ndarray:
        """Original directed edge ids assigned to this shard (src-owned).

        Across all shards every edge id appears exactly once — the
        edge-cut invariant the partitioner tests pin.
        """
        return self.d_edge_ids

    @property
    def num_ghosts(self) -> int:
        return int(self.local_nodes.size) - self.num_owned

    @property
    def num_edge_slots(self) -> int:
        """Undirected edge-slots stored on this shard."""
        return self.csr.num_edges


@dataclass(frozen=True)
class ShardPlan:
    """A complete K-way partition of one graph."""

    num_shards: int
    strategy: str
    owner: np.ndarray        # (num_nodes,) owner shard per node
    local_id: np.ndarray     # (num_nodes,) local id on the owner shard
    shards: tuple[GraphShard, ...]

    def shard_of(self, node: int) -> GraphShard:
        return self.shards[int(self.owner[node])]


class ShardBuildContext:
    """Live-edge arrays one K-way (re)build shares across its shards.

    Built from the graph's **live** edge list (``Graph.live_edges`` —
    identical to ``src``/``dst`` on an unmutated graph), so the same
    per-shard builder serves both the initial partition and
    :meth:`~repro.shard.store.ShardedGraphStore.apply_updates`, which
    rebuilds only the shards a mutation touched.  Directed rows carry the
    graph's stable external edge ids.
    """

    def __init__(self, graph: Graph, owner: np.ndarray):
        src, dst, _, eids = graph.live_edges()
        self.num_nodes = graph.num_nodes
        self.owner = owner
        # Doubled (symmetrised) edge list in the exact order the monolithic
        # undirected view is built from — filtering it per shard preserves
        # the within-row destination order bit-for-bit.
        self.both_src = np.concatenate([src, dst])
        self.both_dst = np.concatenate([dst, src])
        self.slot_owner = owner[self.both_src]
        dcsr = CSRAdjacency(graph.num_nodes, src, dst)
        self.d_indptr = dcsr.indptr
        self.d_indices = dcsr.indices
        self.d_eids = eids[dcsr.edge_ids] if eids.size else eids

    def build_shard(self, k: int, local_id: np.ndarray) -> GraphShard:
        """Build shard ``k``; writes its owned nodes' slots of ``local_id``."""
        owner = self.owner
        owned = np.flatnonzero(owner == k)
        local_id[owned] = np.arange(owned.size, dtype=np.int64)

        mask = self.slot_owner == k
        ssrc = self.both_src[mask]
        sdst = self.both_dst[mask]
        dst_nodes = np.unique(sdst)
        ghosts = dst_nodes[owner[dst_nodes] != k]
        local_nodes = np.concatenate([owned, ghosts])
        lut = np.full(self.num_nodes, -1, dtype=np.int64)
        lut[owned] = np.arange(owned.size, dtype=np.int64)
        lut[ghosts] = owned.size + np.arange(ghosts.size, dtype=np.int64)
        csr = CSRAdjacency(local_nodes.size, lut[ssrc], lut[sdst])

        d_slots, d_lens = gather_csr_rows(self.d_indptr, self.d_indices,
                                          owned)
        d_edge_ids, _ = gather_csr_rows(self.d_indptr, self.d_eids, owned)
        d_indptr = np.concatenate(
            [[0], np.cumsum(d_lens)]).astype(np.int64)

        return GraphShard(
            shard_id=k, nodes=owned, local_nodes=local_nodes,
            num_owned=int(owned.size), csr=csr, d_indptr=d_indptr,
            d_indices=d_slots, d_edge_ids=d_edge_ids)


def partition_graph(graph: Graph, num_shards: int,
                    strategy: str = "greedy",
                    owner: np.ndarray | None = None) -> ShardPlan:
    """Split ``graph`` into ``num_shards`` shards (see module docstring).

    ``owner`` overrides the strategy with an explicit per-node owner map —
    the restore path: a recovered store must rebuild the *same* partition
    the crashed process was serving (its snapshot records the owner map),
    not a fresh strategy assignment over the mutated node set.
    """
    if owner is None:
        owner = partition_nodes(graph, num_shards, strategy)
    else:
        owner = np.asarray(owner, dtype=np.int64)
        if owner.shape != (graph.num_nodes,):
            raise ValueError(
                f"explicit owner map has shape {owner.shape}; expected "
                f"({graph.num_nodes},)")
        if owner.size and (owner.min() < 0 or owner.max() >= num_shards):
            raise ValueError("explicit owner map references shards outside "
                             f"[0, {num_shards})")
    context = ShardBuildContext(graph, owner)
    local_id = np.empty(graph.num_nodes, dtype=np.int64)
    shards = [context.build_shard(k, local_id) for k in range(num_shards)]
    return ShardPlan(num_shards=num_shards, strategy=strategy, owner=owner,
                     local_id=local_id, shards=tuple(shards))
