"""Sharded graph store: CSR-compatible queries with halo resolution.

:class:`ShardedGraphStore` exposes the same query surface as
:class:`~repro.graph.csr.CSRAdjacency` — ``neighbors`` /
``gather_neighbors`` / ``degree`` / ``visited_scratch`` — over a
K-way :class:`~repro.shard.partition.ShardPlan`.  Every row fetch is
routed to the owner shard's local CSR and the local destination ids are
translated back to global ids through the shard's ghost table, so callers
(the samplers) never observe the partition: the returned arrays are
bit-identical to the monolithic adjacency's, whatever ``K``.

:class:`ShardedGraphView` wraps a store in the duck-type surface of
:class:`~repro.graph.graph.Graph` that sampling and subgraph induction
consume (``undirected_adjacency``, ``adjacency.neighbor_edges``,
``node_features[...]``, ``rel``, ``relation_features``), which is what
lets ``bfs_neighborhood`` / ``random_walk_neighborhood`` /
``sample_data_graph`` run unchanged — both engines — on a sharded graph.

What is sharded vs. replicated: adjacency structure and the node-feature
payload (the O(|V|·d) + O(|E|) bulk) are keyed by owner shard; small
metadata — the owner map, relation types, and relation features — is
replicated to every shard, mirroring how distributed graph stores keep
routing tables local.  In this single-host embodiment the whole store
(all shards) is still shipped to every worker process, so sharding buys
**compute parallelism and shard-local access patterns** — the layout,
routing, and halo accounting of a distributed store — not yet per-process
memory reduction; pinning workers to their home shard's slice is the
follow-up that turns the same layout into a memory win.

Counters: while a task for *home shard* ``h`` runs (``home_shard`` set by
the worker), every row fetch served by a shard ``k != h`` counts as one
**halo fetch** — the number the serving layer surfaces per shard in
:class:`~repro.serving.ServerStats`.  A fetch is counted once, when the
row is actually pulled from its owner: the **halo row cache** keeps every
translated row in a contiguous store keyed to the graph version, so
repeated frontier expansions over the same region are served locally
(cache hits) without re-fetching, re-translating, or re-counting.  Any
:meth:`apply_updates` flushes the cache wholesale — the graph-version
epoch from the live-update machinery is its invalidation key.
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass

import numpy as np

from ..graph.delta import AppliedUpdate, _scatter_rows
from ..graph.graph import Graph
from .partition import ShardBuildContext, ShardPlan, partition_graph

_U64 = np.uint64
_EMPTY = np.empty(0, dtype=np.int64)

__all__ = ["ShardCounters", "ShardedGraphStore", "ShardedGraphView"]


@dataclass
class ShardCounters:
    """Per-shard serving/sampling ledger."""

    shard_id: int = 0
    requests: int = 0        # datapoints routed to this shard
    halo_fetches: int = 0    # remote row fetches made by this shard's tasks
    worker_busy_s: float = 0.0

    def snapshot(self) -> "ShardCounters":
        return ShardCounters(shard_id=self.shard_id, requests=self.requests,
                             halo_fetches=self.halo_fetches,
                             worker_busy_s=self.worker_busy_s)


class ShardedGraphStore:
    """K-shard graph store with a monolithic-CSR-compatible query surface."""

    def __init__(self, graph: Graph, plan: ShardPlan):
        self.plan = plan
        self.num_shards = plan.num_shards
        self.owner = plan.owner
        self.local_id = plan.local_id
        self.shards = list(plan.shards)
        self.num_nodes = graph.num_nodes
        self.num_edges = graph.num_edges
        self.num_relations = graph.num_relations
        self.feature_dim = graph.feature_dim
        self.name = graph.name
        # Replicated metadata (small); sharded payload (large).
        self.rel = graph.rel
        self.relation_features = graph.relation_features
        self._features = [graph.node_features[sh.nodes] for sh in self.shards]
        self._scratch_pool: list[np.ndarray] = []
        #: Home shard of the task currently using this store (set by the
        #: worker); fetches served by any other shard count as halo.
        self.home_shard: int | None = None
        self._halo_fetches = 0
        # Halo row cache: translated (global-id) rows in one contiguous
        # buffer, keyed by node and flushed on every graph-version bump.
        self.cache_enabled = True
        self._cache_reset(self.num_nodes)
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_invalidations = 0
        self._batched_fetches = 0
        self._prefetched_rows = 0
        # Live-update plumbing: the graph is the source of truth the
        # touched shards are rebuilt from; the owner/local-id maps become
        # private copies on the first write (the seed plan stays frozen).
        self._graph = graph
        self._graph_version = graph.version
        self._owns_maps = False

    @classmethod
    def from_graph(cls, graph: Graph, num_shards: int,
                   strategy: str = "greedy",
                   owner: np.ndarray | None = None) -> "ShardedGraphStore":
        """Partition ``graph`` and build a store; ``owner`` (restore path)
        pins the partition to an explicit owner map instead of the
        strategy's fresh assignment."""
        return cls(graph, partition_graph(graph, num_shards, strategy,
                                          owner=owner))

    def __getstate__(self):
        # Process workers only *read* the store; shipping the whole
        # monolithic graph alongside the sharded payload would defeat the
        # layout.  Updates stay host-side: the router respawns worker
        # pools after apply_updates instead of routing writes to them.
        # Workers warm their own halo caches — shipping the host's would
        # bloat the pickle for rows the worker's home shard never reads.
        state = self.__dict__.copy()
        state["_graph"] = None
        state["_cache_start"] = np.full(self.num_nodes, -1, dtype=np.int64)
        state["_cache_len"] = np.zeros(self.num_nodes, dtype=np.int64)
        state["_cache_buf"] = _EMPTY
        state["_cache_used"] = 0
        state["_cache_hits"] = 0
        state["_cache_misses"] = 0
        state["_batched_fetches"] = 0
        state["_prefetched_rows"] = 0
        return state

    def view(self) -> "ShardedGraphView":
        return ShardedGraphView(self)

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    @property
    def halo_fetches(self) -> int:
        """Remote row fetches since the last :meth:`reset_counters`."""
        return self._halo_fetches

    def reset_counters(self) -> None:
        self._halo_fetches = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._batched_fetches = 0
        self._prefetched_rows = 0

    def _count(self, serving_shard: int, fetches: int) -> None:
        if self.home_shard is not None and serving_shard != self.home_shard:
            self._halo_fetches += fetches

    def cache_stats(self) -> dict:
        """Halo-cache ledger (hits/misses since ``reset_counters``)."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "invalidations": self._cache_invalidations,
            "batched_fetches": self._batched_fetches,
            "prefetched_rows": self._prefetched_rows,
            "cached_rows": int((self._cache_start >= 0).sum()),
            "cached_slots": self._cache_used,
        }

    # ------------------------------------------------------------------
    # Halo row cache
    # ------------------------------------------------------------------
    def _cache_reset(self, num_nodes: int) -> None:
        self._cache_start = np.full(num_nodes, -1, dtype=np.int64)
        self._cache_len = np.zeros(num_nodes, dtype=np.int64)
        self._cache_buf = _EMPTY
        self._cache_used = 0

    def _cache_reserve(self, length: int) -> int:
        """Reserve ``length`` cache slots; returns their start offset."""
        need = self._cache_used + length
        if need > self._cache_buf.size:
            cap = max(256, 2 * self._cache_buf.size, need)
            buf = np.empty(cap, dtype=np.int64)
            buf[:self._cache_used] = self._cache_buf[:self._cache_used]
            self._cache_buf = buf
        start = self._cache_used
        self._cache_used = need
        return start

    def prefetch_rows(self, nodes: np.ndarray) -> int:
        """Warm the halo cache for ``nodes``, one grouped fetch per shard.

        The batched-frontier entry point: callers holding a micro-batch's
        worth of seed/frontier nodes pull them all in one shard
        round-trip, so the per-session expansions that follow are cache
        hits.  Returns the number of rows actually fetched.
        """
        if not self.cache_enabled:
            return 0
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        if nodes.size == 0:
            return 0
        missed = nodes[self._cache_start[nodes] < 0]
        if missed.size == 0:
            return 0
        self._batched_fetches += 1
        self._prefetched_rows += int(missed.size)
        self.gather_neighbors(missed)
        return int(missed.size)

    # ------------------------------------------------------------------
    # CSRAdjacency-compatible surface (undirected sampling rows)
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        """Undirected neighbours of ``node``, global ids, monolithic order."""
        node = int(node)
        if self.cache_enabled:
            start = int(self._cache_start[node])
            if start >= 0:
                self._cache_hits += 1
                return self._cache_buf[start:
                                       start + int(self._cache_len[node])]
        k = int(self.owner[node])
        shard = self.shards[k]
        self._count(k, 1)
        local = self.local_id[node]
        row = shard.csr.indices[shard.csr.indptr[local]:
                                shard.csr.indptr[local + 1]]
        row = shard.local_nodes[row]
        if self.cache_enabled:
            self._cache_misses += 1
            length = int(row.size)
            start = self._cache_reserve(length)
            self._cache_buf[start:start + length] = row
            self._cache_start[node] = start
            self._cache_len[node] = length
        return row

    def gather_neighbors(self, frontier: np.ndarray) -> np.ndarray:
        """Concatenated neighbour rows of ``frontier``, frontier order.

        Rows are fetched shard-by-shard (one grouped gather per shard
        touched) and scattered back into their frontier positions, so the
        result equals the monolithic
        :meth:`~repro.graph.csr.CSRAdjacency.gather_neighbors` exactly.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        if frontier.size == 0:
            return np.empty(0, dtype=np.int64)
        if self.cache_enabled:
            hit = self._cache_start[frontier] >= 0
        else:
            hit = np.zeros(frontier.size, dtype=bool)
        miss = ~hit
        hit_rows = frontier[hit]
        miss_rows = frontier[miss]
        owners = self.owner[miss_rows]
        locals_ = self.local_id[miss_rows]
        lens = np.empty(frontier.size, dtype=np.int64)
        lens[hit] = self._cache_len[hit_rows]
        miss_lens = np.empty(miss_rows.size, dtype=np.int64)
        touched = np.unique(owners)
        for k in touched:
            member = owners == k
            indptr = self.shards[k].csr.indptr
            loc = locals_[member]
            miss_lens[member] = indptr[loc + 1] - indptr[loc]
        lens[miss] = miss_lens
        ends = np.cumsum(lens)
        total = int(ends[-1])
        out = np.empty(total, dtype=np.int64)
        starts = ends - lens
        # Cached rows: one fused scatter straight from the cache store.
        _scatter_rows(self._cache_buf, self._cache_start[hit_rows],
                      lens[hit], out, starts[hit])
        miss_starts = starts[miss]
        for k in touched:
            member = owners == k
            shard = self.shards[k]
            self._count(int(k), int(member.sum()))
            vals = shard.local_nodes[shard.csr.gather_neighbors(
                locals_[member])]
            seg_lens = miss_lens[member]
            if vals.size == 0:
                continue
            # Scatter each shard's concatenated rows into the positions of
            # its frontier members (same repeat trick as the CSR gather).
            cum = np.cumsum(seg_lens)
            shifts = np.repeat(miss_starts[member] - cum + seg_lens, seg_lens)
            out[np.arange(vals.size, dtype=np.int64) + shifts] = vals
        if self.cache_enabled:
            self._cache_hits += int(hit_rows.size)
            self._cache_misses += int(miss_rows.size)
            if miss_rows.size:
                self._cache_insert(miss_rows, miss_starts, miss_lens, out)
        return out

    def _cache_insert(self, rows: np.ndarray, seg_starts: np.ndarray,
                      seg_lens: np.ndarray, src: np.ndarray) -> None:
        """Bulk-adopt freshly translated rows (segments of ``src``) into
        the cache store.  Duplicate rows in one batch simply overwrite
        their earlier slots — content is identical either way."""
        total = int(seg_lens.sum())
        start = self._cache_reserve(total)
        cum = np.cumsum(seg_lens)
        new_starts = start + cum - seg_lens
        _scatter_rows(src, seg_starts, seg_lens, self._cache_buf, new_starts)
        self._cache_start[rows] = new_starts
        self._cache_len[rows] = seg_lens

    def degree(self, node: int | None = None):
        """Undirected degree of ``node``, or the full vector when ``None``.

        Degree reads hit the owner shard's index like any other row fetch
        and are counted the same way: one halo fetch per remote row (the
        full-vector form reads every shard's owned rows).  A cached row
        answers locally — no fetch, no count.
        """
        if node is not None:
            node = int(node)
            if self.cache_enabled and self._cache_start[node] >= 0:
                self._cache_hits += 1
                return int(self._cache_len[node])
            k = int(self.owner[node])
            shard = self.shards[k]
            self._count(k, 1)
            local = self.local_id[node]
            return int(shard.csr.indptr[local + 1] - shard.csr.indptr[local])
        out = np.empty(self.num_nodes, dtype=np.int64)
        for k, shard in enumerate(self.shards):
            self._count(k, shard.num_owned)
            out[shard.nodes] = np.diff(shard.csr.indptr)[:shard.num_owned]
        return out

    def visited_scratch(self) -> np.ndarray:
        """Check out a global-length all-``False`` mask (see CSRAdjacency).

        Size-checked on checkout: :meth:`apply_updates` can grow
        ``num_nodes``, and a mask parked before the growth must be retired
        rather than handed to a sampler that would index past its end.
        """
        pool = self._scratch_pool
        size = self.num_nodes
        while pool:
            mask = pool.pop()
            if mask.size == size:
                return mask
        return np.zeros(size, dtype=bool)

    def release_scratch(self, mask: np.ndarray) -> None:
        if mask.size == self.num_nodes:
            self._scratch_pool.append(mask)

    # ------------------------------------------------------------------
    # Live updates (shard-aware routing)
    # ------------------------------------------------------------------
    def _assign_owners(self, new_nodes: np.ndarray) -> np.ndarray:
        """Owner shard per new node, by the plan's strategy.

        ``hash`` stays stateless (a node's owner never depends on the rest
        of the graph); ``greedy`` sends each new node to the shard with
        the fewest owned nodes (ties to the lowest shard id) —
        deterministic, and it keeps growth balanced without reshuffling
        any existing assignment.  The greedy path runs on a
        ``(load, shard_id)`` heap — O(n log K), not O(n·K) — popping the
        same (lowest-load, lowest-id) shard ``np.argmin`` would pick.
        """
        if self.num_shards == 1:
            return np.zeros(new_nodes.size, dtype=np.int64)
        if self.plan.strategy == "hash":
            from .partition import _splitmix64

            return (_splitmix64(new_nodes) % _U64(self.num_shards)).astype(
                np.int64)
        heap = [(int(shard.num_owned), k)
                for k, shard in enumerate(self.shards)]
        heapq.heapify(heap)
        owners = np.empty(new_nodes.size, dtype=np.int64)
        for i in range(new_nodes.size):
            load, k = heapq.heappop(heap)
            owners[i] = k
            heapq.heappush(heap, (load + 1, k))
        return owners

    def apply_updates(self, applied: AppliedUpdate) -> np.ndarray:
        """Route one applied graph mutation to its owner shards.

        The mutation has already been applied to the underlying graph
        (this store holds it as source of truth); this method re-routes
        the structural change: new nodes get owner assignments, and every
        shard owning a touched node — the only shards whose slot sets or
        ghost tables can have changed — is rebuilt from the live edge
        list, refreshing its local CSR, directed rows, ghost table, and
        feature slice.  Untouched shards are left as-is byte-for-byte.

        Cost note: building the shared :class:`ShardBuildContext` sorts
        the full live edge list, so one update batch costs O(|E|) however
        few shards it touches — correct and batch-friendly, but not yet
        incremental.  Per-shard delta overlays (mirroring the monolithic
        :class:`~repro.graph.delta.DeltaAdjacency`) are the follow-up
        that makes small updates O(touched rows).

        Returns the ids of the rebuilt shards.
        """
        graph = self._graph
        if graph is None:
            raise RuntimeError(
                "worker-side store copies are read-only; apply updates on "
                "the host store and respawn the pool")
        if applied.version <= self._graph_version:
            return np.empty(0, dtype=np.int64)
        if not self._owns_maps:
            self.owner = self.owner.copy()
            self.local_id = self.local_id.copy()
            self._owns_maps = True
        new_nodes = applied.new_node_ids
        if new_nodes.size:
            self.owner = np.concatenate(
                [self.owner, self._assign_owners(new_nodes)])
            self.local_id = np.concatenate(
                [self.local_id, np.full(new_nodes.size, -1, dtype=np.int64)])
        touched = applied.touched_nodes
        touched_shards = (np.unique(self.owner[touched]) if touched.size
                          else np.empty(0, dtype=np.int64))
        self.num_nodes = graph.num_nodes
        self.num_edges = graph.num_edges
        self.rel = graph.rel
        if touched_shards.size:
            context = ShardBuildContext(graph, self.owner)
            for k in touched_shards.tolist():
                shard = context.build_shard(k, self.local_id)
                self.shards[k] = shard
                self._features[k] = graph.node_features[shard.nodes]
        self._scratch_pool.clear()
        # The halo cache is keyed to the graph version: any applied update
        # invalidates it wholesale (and resizes it to the grown graph).
        self._cache_reset(self.num_nodes)
        self._cache_invalidations += 1
        self._graph_version = applied.version
        return touched_shards

    # ------------------------------------------------------------------
    # Directed rows (subgraph induction)
    # ------------------------------------------------------------------
    def neighbor_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """(global destinations, original edge ids) of ``node``'s out-edges."""
        k = int(self.owner[node])
        shard = self.shards[k]
        self._count(k, 1)
        local = int(self.local_id[node])
        lo, hi = shard.d_indptr[local], shard.d_indptr[local + 1]
        return shard.d_indices[lo:hi], shard.d_edge_ids[lo:hi]

    def gather_node_features(self, nodes: np.ndarray) -> np.ndarray:
        """Feature rows of global ``nodes``, assembled across shards."""
        nodes = np.asarray(nodes, dtype=np.int64)
        owners = self.owner[nodes]
        out = np.empty((nodes.size, self.feature_dim),
                       dtype=self._features[0].dtype
                       if self._features else np.float64)
        for k in np.unique(owners):
            member = owners == k
            self._count(int(k), int(member.sum()))
            out[member] = self._features[k][self.local_id[nodes[member]]]
        return out


class _ShardedDirectedAdjacency:
    """Duck-type of ``Graph.adjacency`` for subgraph induction."""

    def __init__(self, store: ShardedGraphStore):
        self._store = store

    def neighbor_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        return self._store.neighbor_edges(node)


class _ShardedNodeRows:
    """Duck-type of the ``graph.node_features`` array (row gather only)."""

    def __init__(self, store: ShardedGraphStore):
        self._store = store

    def __getitem__(self, nodes) -> np.ndarray:
        return self._store.gather_node_features(nodes)

    @property
    def shape(self) -> tuple[int, int]:
        return (self._store.num_nodes, self._store.feature_dim)


class ShardedGraphView:
    """Graph-shaped facade over a :class:`ShardedGraphStore`.

    Implements exactly the surface the samplers and
    :func:`~repro.graph.subgraph.induced_subgraph` touch, so
    ``sample_data_graph(view, datapoint, ...)`` returns the same
    :class:`~repro.graph.subgraph.Subgraph` — bit-for-bit — as with the
    original monolithic :class:`~repro.graph.graph.Graph`.
    """

    def __init__(self, store: ShardedGraphStore):
        self.store = store
        self.name = f"{store.name}[sharded x{store.num_shards}]"
        self._directed = _ShardedDirectedAdjacency(store)
        self._node_rows = _ShardedNodeRows(store)

    @property
    def num_nodes(self) -> int:
        return self.store.num_nodes

    @property
    def num_edges(self) -> int:
        return self.store.num_edges

    @property
    def num_relations(self) -> int:
        return self.store.num_relations

    @property
    def feature_dim(self) -> int:
        return self.store.feature_dim

    @property
    def rel(self) -> np.ndarray:
        return self.store.rel

    @property
    def relation_features(self) -> np.ndarray | None:
        return self.store.relation_features

    @property
    def node_features(self) -> _ShardedNodeRows:
        return self._node_rows

    @property
    def adjacency(self) -> _ShardedDirectedAdjacency:
        return self._directed

    @property
    def undirected_adjacency(self) -> ShardedGraphStore:
        return self.store

    def neighbors(self, node: int) -> np.ndarray:
        return self.store.neighbors(node)

    def degree(self, node: int | None = None):
        return self.store.degree(node)

    def __repr__(self) -> str:
        return (f"ShardedGraphView(name={self.name!r}, "
                f"nodes={self.num_nodes}, edges={self.num_edges}, "
                f"shards={self.store.num_shards})")
