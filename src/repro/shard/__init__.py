"""Sharded graph execution: partitioner, sharded store, worker pool.

The horizontal-scale subsystem: an edge-cut **partitioner**
(:func:`partition_graph` — greedy-balance or hash node assignment, stable
global↔local id maps, per-shard CSR), a **ShardedGraphStore** answering
the monolithic adjacency's query surface with halo/ghost resolution across
shard boundaries (bit-identical sampling, any K), and a **WorkerPool**
running shard-local sampling+encoding tasks across processes with a serial
in-process fallback.  :class:`~repro.serving.ShardRouter` wires the three
into :class:`~repro.serving.PromptServer`.
"""

from .partition import (
    PARTITION_STRATEGIES,
    GraphShard,
    ShardPlan,
    partition_graph,
    partition_nodes,
)
from .store import ShardCounters, ShardedGraphStore, ShardedGraphView
from .workers import WORKER_BACKENDS, WorkerPool

__all__ = [
    "PARTITION_STRATEGIES",
    "WORKER_BACKENDS",
    "GraphShard",
    "ShardPlan",
    "ShardCounters",
    "ShardedGraphStore",
    "ShardedGraphView",
    "WorkerPool",
    "partition_graph",
    "partition_nodes",
]
