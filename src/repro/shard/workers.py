"""Worker pool running shard tasks across processes, with a serial fallback.

The numpy substrate releases no GIL worth exploiting, so horizontal scale
comes from **processes**: each worker process builds its own context once
(model replica, sharded store, batch arena — via a picklable initializer)
and then maps tasks over it.  The ``"serial"`` backend runs the identical
protocol in-process — the deterministic reference used by tests, CI, and
platforms without a usable ``multiprocessing`` start method; results are
bit-identical either way because every numpy op is.

Protocol: task functions have the signature ``fn(context, task)`` and must
be module-level (picklable) for the process backend.  ``map`` preserves
submission order and returns ``(result, busy_seconds)`` pairs, the per-task
wall time the serving layer aggregates into ``worker_busy_s``.

Metrics recorded *inside* a worker (the sampler/batcher/forward stage
histograms fire in whichever process runs the task) ride home with each
result: the worker drains its process-global
:class:`~repro.obs.MetricsRegistry` into a plain-data delta per task, and
``map`` folds every delta into the host's ambient registry — so
histograms and counters stay exact whichever backend executed the work.
The serial backend records straight into the ambient registry (no delta,
no double count).

A broken pool (e.g. a killed worker, or a sandbox that forbids forking)
is respawned with bounded exponential backoff — ``max_respawns`` fresh
pools, each rebuilt by the same initializer — before the request path
degrades to the serial backend permanently.  Respawns and degrades are
counted in the ambient metrics registry
(``repro_worker_pool_respawns_total`` /
``repro_worker_pool_degrades_total``), so a fleet quietly limping on the
serial fallback is visible on a dashboard instead of just slow.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from ..obs.metrics import get_registry, reset_worker_state

__all__ = ["WorkerPool", "WORKER_BACKENDS"]

WORKER_BACKENDS = ("auto", "serial", "process")

#: Per-process worker context, set once by the pool initializer.
_CONTEXT = None


def _process_init(initializer, initargs) -> None:
    global _CONTEXT
    # A forked worker inherits a copy of the parent's registry state;
    # clear it so the first task's drain ships only this worker's work.
    reset_worker_state()
    _CONTEXT = initializer(*initargs)


def _process_call(payload):
    fn, task = payload
    start = time.perf_counter()
    result = fn(_CONTEXT, task)
    busy = time.perf_counter() - start
    # Ship the metrics this task recorded (stage histograms etc.) home
    # as a plain-data delta; ``{}`` when nothing fired.
    return result, busy, get_registry().drain()


def _pick_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


class WorkerPool:
    """Order-preserving task mapper over N workers.

    Parameters
    ----------
    initializer, initargs:
        Build one worker context; called once per process (process
        backend) or once lazily in-process (serial backend).  Must be
        picklable for the process backend.
    num_workers:
        Process count; 1 with ``backend="auto"`` means serial.
    backend:
        ``"process"``, ``"serial"``, or ``"auto"`` — auto picks processes
        only when ``num_workers > 1`` *and* the host has more than one
        usable core (a 1-core host pays IPC for zero parallelism);
        ``"process"`` forces a pool regardless.
    max_respawns:
        Fresh pools to try (with exponential backoff) when a map over the
        process pool fails, before degrading to serial for the pool's
        remaining life.
    respawn_backoff_s:
        Base backoff before the first respawn; doubles per attempt.
    """

    def __init__(self, initializer, initargs=(), num_workers: int = 1,
                 backend: str = "auto", max_respawns: int = 2,
                 respawn_backoff_s: float = 0.05):
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if backend not in WORKER_BACKENDS:
            raise ValueError(f"unknown worker backend {backend!r}; "
                             f"use one of {WORKER_BACKENDS}")
        if max_respawns < 0:
            raise ValueError("max_respawns must be non-negative")
        self.num_workers = num_workers
        self.requested_backend = backend
        self.max_respawns = max_respawns
        self.respawn_backoff_s = respawn_backoff_s
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._context = None
        self._pool = None
        resolved = backend
        if backend == "auto":
            resolved = ("process" if num_workers > 1 and usable_cores() > 1
                        else "serial")
        if resolved == "process" and not self._spawn_pool():
            resolved = "serial"
            self._count_degrade()
        self.backend = resolved

    # ------------------------------------------------------------------
    def _spawn_pool(self) -> bool:
        """Build a fresh process pool; ``False`` when the host refuses."""
        try:
            ctx = multiprocessing.get_context(_pick_start_method())
            self._pool = ctx.Pool(
                self.num_workers, initializer=_process_init,
                initargs=(self._initializer, self._initargs))
        except Exception:
            self._pool = None
            return False
        return True

    @staticmethod
    def _count_respawn() -> None:
        get_registry().counter(
            "repro_worker_pool_respawns_total",
            "Process pools respawned after a map failure.").inc()

    @staticmethod
    def _count_degrade() -> None:
        get_registry().counter(
            "repro_worker_pool_degrades_total",
            "Worker pools permanently degraded to the serial backend.",
        ).inc()

    # ------------------------------------------------------------------
    def _serial_context(self):
        if self._context is None:
            self._context = self._initializer(*self._initargs)
        return self._context

    def map(self, fn, tasks) -> list:
        """Run ``fn(context, task)`` for every task, submission order.

        Returns ``[(result, busy_seconds), ...]`` aligned with ``tasks``.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self._pool is not None:
            payloads = [(fn, task) for task in tasks]
            outputs = None
            attempts_left = self.max_respawns
            while True:
                try:
                    outputs = self._pool.map(_process_call, payloads)
                    break
                except Exception:
                    # The pool died (forbidden fork, killed worker).
                    # Bounded retry: respawn a fresh pool with backoff;
                    # only when every respawn also fails does the pool
                    # degrade to serial for the rest of its life.
                    self.close()
                    if attempts_left <= 0:
                        self.backend = "serial"
                        self._count_degrade()
                        break
                    backoff = self.respawn_backoff_s * (
                        2 ** (self.max_respawns - attempts_left))
                    attempts_left -= 1
                    if backoff > 0:
                        time.sleep(backoff)
                    self._count_respawn()
                    if not self._spawn_pool():
                        self.backend = "serial"
                        self._count_degrade()
                        break
            if outputs is not None:
                # Fold each worker's metric delta into the host registry;
                # the public return shape stays (result, busy_seconds).
                registry = get_registry()
                merged = []
                for result, busy, delta in outputs:
                    if delta:
                        registry.merge(delta)
                    merged.append((result, busy))
                return merged
        context = self._serial_context()
        out = []
        for task in tasks:
            start = time.perf_counter()
            result = fn(context, task)
            out.append((result, time.perf_counter() - start))
        return out

    def close(self) -> None:
        """Shut the process pool down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
