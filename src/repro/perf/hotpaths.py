"""Hot-path microbenchmarks: sampling, batching, encoding, serving QPS.

Each benchmark times the *same work* through the legacy path and the
vectorized/fused path, so the reported number is a hardware-portable
**speedup ratio** rather than an absolute wall-clock (absolute times are
also recorded for local trend reading).  ``repro bench`` writes the
results to ``BENCH_hotpaths.json``; CI re-runs the quick profile and fails
when any speedup regresses more than ``tolerance``× against the committed
baseline (see :func:`check_regression`).

Benchmarked pairs
-----------------
* ``sampling_bfs`` / ``sampling_random_walk`` — legacy per-node Python
  samplers vs. CSR frontier engines (bit-identical outputs, see
  ``tests/test_sampling_equivalence.py``).
* ``batching_arena`` — list-append + ``np.concatenate`` batch assembly vs.
  single-pass arena assembly with reused buffers.
* ``encoding_nograd`` — autodiff-graph encoder forward vs. the fused
  ``no_grad`` numpy forward.
* ``encoding_fast`` — the fused-numpy no-grad forward vs. the ``"fast"``
  tensor backend at float32 (CSR-matmul message passing + blocked gemm,
  see :mod:`repro.nn.backend`), on a serving-shaped fat micro-batch.
* ``pool_bytes_per_session`` — at-rest candidate-pool bytes, fp64 ndarray
  vs. int8 per-row-scale quantization (ratio under the ``speedup`` key so
  the standard floor gate applies; not a timing).
* ``serving_microbatch`` — end-to-end :class:`~repro.serving.PromptServer`
  queries/sec, per-query serving vs. cross-session micro-batching.

The ``shard`` profile benchmarks the horizontal-scale subsystem instead
(``repro bench --profile shard``):

* ``shard_partition`` — greedy vs. hash partition wall-clock;
* ``shard_sampling`` — monolithic CSR sampling vs. the K-shard
  :class:`~repro.shard.ShardedGraphStore` (bit-identical outputs; the
  ratio tracks the halo-resolution overhead);
* ``shard_parallel_qps`` — sharded serve QPS, single worker vs. the
  process pool.

The ``mutate`` profile benchmarks the live-update subsystem
(``repro bench --profile mutate``):

* ``mutation_apply`` — absorbing an add+remove batch through the
  :class:`~repro.graph.DeltaAdjacency` overlay vs. rebuilding the
  undirected CSR from scratch (what a frozen-graph system pays per
  update batch);
* ``mutation_sampling_overlay`` — sampling on a clean CSR vs. the same
  graph carrying a ~10% overlay (the read-path cost compaction bounds);
* ``mutation_compact`` — compaction wall-clock and edge throughput.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..core import GraphPrompterConfig, GraphPrompterModel, sample_episode
from ..datasets import Dataset, EDGE_TASK
from ..datasets.synthetic import synthetic_knowledge_graph
from ..gnn import BatchArena, SubgraphBatch
from ..graph import EdgeInput, sample_data_graph
from ..graph.sampling import bfs_neighborhood, random_walk_neighborhood
from ..nn import no_grad
from ..serving import PromptServer
from .microbench import time_callable

__all__ = ["PROFILES", "run_benchmarks", "check_regression"]

SCHEMA_VERSION = 1

#: Workload sizes per profile.  ``full`` is the committed-baseline scale,
#: ``quick`` the CI smoke scale, ``smoke`` a seconds-fast scale for the
#: test suite.
#:
#: The sampling benchmarks run on a *dense* uniform multigraph (mean degree
#: in the hundreds) with production-sized node caps: that is the regime the
#: CSR engines target — the paper picks random walks precisely because
#: exact expansion explodes on large dense source graphs, and per-node
#: Python loops are at their worst there.  Sparse/tiny neighbourhoods stay
#: at parity (the engines fall back to scalar scans); the equivalence
#: suite covers those, the perf harness pins the dense regime.
PROFILES = {
    "full": dict(sample_nodes=8000, sample_edges=1_000_000,
                 sample_calls=32, bfs_hops=2, bfs_cap=256,
                 rw_hops=3, rw_cap=1024,
                 nodes=4000, edges=24000, relations=8, feature_dim=32,
                 num_hops=2, max_nodes=48,
                 batch_subgraphs=192, batch_cap=20,
                 encode_subgraphs=16, hidden_dim=32,
                 fast_subgraphs=64, fast_cap=96, fast_hidden=64,
                 pool_shots=3,
                 serve_sessions=6, serve_queries=10, serve_batch=16,
                 num_ways=5, min_runtime_s=0.1),
    "quick": dict(sample_nodes=4000, sample_edges=400_000,
                  sample_calls=24, bfs_hops=2, bfs_cap=256,
                  rw_hops=3, rw_cap=1024,
                  nodes=1500, edges=9000, relations=8, feature_dim=32,
                  num_hops=2, max_nodes=48,
                  batch_subgraphs=96, batch_cap=20,
                  encode_subgraphs=16, hidden_dim=32,
                  fast_subgraphs=48, fast_cap=96, fast_hidden=64,
                  pool_shots=3,
                  serve_sessions=4, serve_queries=6, serve_batch=16,
                  num_ways=5, min_runtime_s=0.05),
    "smoke": dict(sample_nodes=600, sample_edges=60_000,
                  sample_calls=8, bfs_hops=2, bfs_cap=128,
                  rw_hops=2, rw_cap=512,
                  nodes=300, edges=1800, relations=6, feature_dim=16,
                  num_hops=2, max_nodes=24,
                  batch_subgraphs=24, batch_cap=20,
                  encode_subgraphs=8, hidden_dim=16,
                  fast_subgraphs=16, fast_cap=24, fast_hidden=16,
                  pool_shots=2,
                  serve_sessions=2, serve_queries=3, serve_batch=4,
                  num_ways=3, min_runtime_s=0.01),
    # Horizontal-scale subsystem (runs the shard benchmarks only).  The
    # serving workload is deliberately encode-heavy (wide model, large
    # subgraph cap, fat micro-batches): process workers only pay off once
    # per-task compute dominates task pickling, which is the regime the
    # pool targets — web-scale graphs, not smoke-test ones.
    "shard": dict(sample_nodes=4000, sample_edges=400_000,
                  sample_calls=24, bfs_hops=2, bfs_cap=256,
                  rw_hops=3, rw_cap=1024,
                  nodes=3000, edges=18000, relations=8, feature_dim=32,
                  max_nodes=48, hidden_dim=64,
                  shard_k=2, serve_sessions=6, serve_queries=12,
                  serve_batch=32, serve_workers=2,
                  num_ways=5, min_runtime_s=0.05),
    # Live-update subsystem (runs the mutation benchmarks only).  The
    # apply benchmark cycles one batch of adds followed by the matching
    # removes, so the live edge set — and therefore the work per timed
    # call — stays fixed while the id space grows realistically.
    "mutate": dict(sample_nodes=4000, sample_edges=400_000,
                   sample_calls=24, bfs_hops=2, bfs_cap=256,
                   rw_hops=3, rw_cap=1024,
                   mutate_batch=512, overlay_fraction=0.10,
                   min_runtime_s=0.05),
    # Multi-tenant gateway (runs the gateway benchmarks only): the
    # admission/priority/deadline machinery's end-to-end overhead over a
    # bare PromptServer drain, and the overload shedding outcome.
    "gateway": dict(nodes=1500, edges=9000, relations=8, feature_dim=32,
                    hidden_dim=32, max_nodes=48,
                    serve_sessions=4, serve_queries=6, serve_batch=8,
                    overload_rounds=2, overload_per_round=3,
                    num_ways=5, min_runtime_s=0.05),
}


def _pair(legacy_s: float, fast_s: float, legacy_key: str,
          fast_key: str) -> dict:
    return {
        legacy_key: legacy_s,
        fast_key: fast_s,
        "speedup": legacy_s / fast_s if fast_s > 0 else float("inf"),
    }


def _benchmark_graph(p: dict):
    return synthetic_knowledge_graph(
        p["nodes"], p["relations"], p["edges"],
        feature_dim=p["feature_dim"], rng=0, name="bench-kg")


def _dense_sampling_graph(p: dict):
    from ..graph import Graph

    rng_np = np.random.default_rng(3)
    n, m = p["sample_nodes"], p["sample_edges"]
    return Graph(n, rng_np.integers(0, n, size=m),
                 rng_np.integers(0, n, size=m),
                 node_features=np.zeros((n, 2)), name="bench-dense")


def _sampling_benchmarks(p: dict) -> dict:
    graph = _dense_sampling_graph(p)
    rng_np = np.random.default_rng(1)
    seeds = rng_np.integers(0, graph.num_nodes, size=p["sample_calls"])
    graph.undirected_adjacency  # build the CSR outside the timed region

    def run(sampler, engine, hops, cap):
        # One shared RNG per measurement: generator *construction* is
        # engine-independent caller cost, the draws inside the sampler are
        # what differs.
        rng = np.random.default_rng(0)

        def call():
            for seed in seeds:
                sampler(graph, np.array([seed]), hops, cap, rng,
                        engine=engine)
        return call

    out = {}
    for name, sampler, hops, cap in (
            ("sampling_bfs", bfs_neighborhood, p["bfs_hops"], p["bfs_cap"]),
            ("sampling_random_walk", random_walk_neighborhood,
             p["rw_hops"], p["rw_cap"])):
        legacy = time_callable(run(sampler, "legacy", hops, cap),
                               min_runtime_s=p["min_runtime_s"], repeats=5)
        fast = time_callable(run(sampler, "vectorized", hops, cap),
                             min_runtime_s=p["min_runtime_s"], repeats=5)
        out[name] = _pair(legacy.per_call_s, fast.per_call_s,
                          "legacy_s", "vectorized_s")
        out[name]["calls_per_measurement"] = int(seeds.size)
    return out


def _make_subgraphs(graph, count: int, p: dict):
    rng_np = np.random.default_rng(2)
    heads = rng_np.integers(0, graph.num_nodes, size=count)
    tails = rng_np.integers(0, graph.num_nodes, size=count)
    return [
        sample_data_graph(graph, EdgeInput(int(u), int(v), relation=0),
                          num_hops=p["num_hops"], max_nodes=p["max_nodes"],
                          rng=np.random.default_rng(i))
        for i, (u, v) in enumerate(zip(heads, tails))
    ]


def _batching_benchmark(p: dict) -> dict:
    # Node-task subgraphs at the config-default cap: the Table-3-style
    # serving shape where per-subgraph assembly overhead — not feature
    # memcpy — dominates, i.e. what the arena exists to eliminate.
    from ..datasets.synthetic import synthetic_citation_graph
    from ..graph import NodeInput

    graph = synthetic_citation_graph(p["nodes"], 10,
                                     feature_dim=p["feature_dim"],
                                     avg_degree=12.0, rng=0)
    rng_np = np.random.default_rng(2)
    subgraphs = [
        sample_data_graph(graph, NodeInput(int(u)), num_hops=1,
                          max_nodes=p["batch_cap"],
                          rng=np.random.default_rng(i))
        for i, u in enumerate(rng_np.integers(0, graph.num_nodes,
                                              size=p["batch_subgraphs"]))
    ]
    arena = BatchArena()
    SubgraphBatch.from_subgraphs(subgraphs, arena=arena)  # pre-grow buffers
    legacy = time_callable(
        lambda: SubgraphBatch.from_subgraphs_concat(subgraphs),
        min_runtime_s=p["min_runtime_s"], repeats=5)
    fast = time_callable(
        lambda: SubgraphBatch.from_subgraphs(subgraphs, arena=arena),
        min_runtime_s=p["min_runtime_s"], repeats=5)
    result = _pair(legacy.per_call_s, fast.per_call_s, "concat_s", "arena_s")
    result["subgraphs_per_batch"] = p["batch_subgraphs"]
    return {"batching_arena": result}


def _encoding_benchmark(graph, p: dict) -> dict:
    config = GraphPrompterConfig(hidden_dim=p["hidden_dim"])
    model = GraphPrompterModel(graph.feature_dim, graph.num_relations, config)
    model.eval()
    batch = SubgraphBatch.from_subgraphs(
        _make_subgraphs(graph, p["encode_subgraphs"], p))

    def grad_path():
        model.encode_batch(batch)

    def nograd_path():
        with no_grad():
            model.encode_batch(batch)

    # The encoder ratio is the noisiest of the suite (allocator and cache
    # state dependent): use more repeats so best-of-k converges.
    grad = time_callable(grad_path, min_runtime_s=p["min_runtime_s"],
                         repeats=5)
    fast = time_callable(nograd_path, min_runtime_s=p["min_runtime_s"],
                         repeats=5)
    result = _pair(grad.per_call_s, fast.per_call_s, "grad_s", "nograd_s")
    result["subgraphs_per_batch"] = p["encode_subgraphs"]
    return {"encoding_nograd": result}


def _encoding_fast_benchmark(graph, p: dict) -> dict:
    """The accelerated tensor backend vs. the fused-numpy no-grad path.

    Both sides run the same no-grad encoder forward; the fast side swaps
    in the ``"fast"`` backend (CSR-matmul message passing — sorted-segment
    reduceat when scipy is absent — plus blocked gemm) at float32.  The workload is larger than
    ``encoding_nograd``'s — serving-shaped fat micro-batches, where the
    scatter kernels and gemms dominate Python overhead — because that is
    the regime the accelerated backend targets.  No environment keys are
    recorded: the win comes from fused kernels and float32 bandwidth,
    not threading, so the ratio must hold on 1-core CI runners too.
    """
    fp = dict(p, num_hops=2, max_nodes=p["fast_cap"])
    config = GraphPrompterConfig(hidden_dim=p["fast_hidden"])
    model = GraphPrompterModel(graph.feature_dim, graph.num_relations,
                               config)
    fast_model = GraphPrompterModel(
        graph.feature_dim, graph.num_relations,
        config.ablate(tensor_backend="fast", inference_dtype="float32"))
    fast_model.load_state_dict(model.state_dict())
    model.eval()
    fast_model.eval()
    batch = SubgraphBatch.from_subgraphs(
        _make_subgraphs(graph, p["fast_subgraphs"], fp))

    def exact_path():
        with no_grad():
            model.encode_batch(batch)

    def fast_path():
        with no_grad():
            fast_model.encode_batch(batch)

    exact = time_callable(exact_path, min_runtime_s=p["min_runtime_s"],
                          repeats=5)
    fast = time_callable(fast_path, min_runtime_s=p["min_runtime_s"],
                         repeats=5)
    result = _pair(exact.per_call_s, fast.per_call_s, "numpy_f64_s",
                   "fast_f32_s")
    result["subgraphs_per_batch"] = p["fast_subgraphs"]
    result["hidden_dim"] = p["fast_hidden"]
    return {"encoding_fast": result}


def _pool_bytes_benchmark(graph, p: dict) -> dict:
    """At-rest candidate-pool bytes: fp64 ndarray vs. int8 quantized.

    Opens the same session under both ``pool_quantization`` settings and
    compares :meth:`SessionState.pool_nbytes`.  Reported under the
    ``speedup`` key as the reduction ratio (fp64 bytes / int8 bytes) so
    the standard regression gate — and the CI ``--floor`` — apply; a
    floor of 3.3 is the ≤0.3x-of-fp64 acceptance bound.  Predictions
    under quantized pools are agreement-gated in
    ``tests/test_backend_equivalence.py``, not here.
    """
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    episode = sample_episode(dataset, num_ways=p["num_ways"],
                             num_queries=1, rng=7)
    sizes = {}
    for quant in ("none", "int8"):
        config = GraphPrompterConfig(hidden_dim=p["hidden_dim"],
                                     max_subgraph_nodes=p["max_nodes"],
                                     pool_quantization=quant)
        model = GraphPrompterModel(graph.feature_dim, graph.num_relations,
                                   config)
        with PromptServer(model, dataset, rng=0) as server:
            state = server.open_session("pool-bytes", episode,
                                        shots=p["pool_shots"])
            sizes[quant] = state.pool_nbytes()
            rows, dim = state.candidate_emb.shape
    return {"pool_bytes_per_session": {
        "fp64_bytes": sizes["none"],
        "int8_bytes": sizes["int8"],
        "speedup": (sizes["none"] / sizes["int8"]
                    if sizes["int8"] else float("inf")),
        "pool_rows": rows,
        "hidden_dim": dim,
    }}


def _serving_benchmark(graph, p: dict) -> dict:
    # The replay protocol (round-robin arrival across sessions) is owned
    # by the serve-bench experiment — reusing it keeps the perf baseline
    # measuring exactly the workload serve-bench validates.
    from ..experiments.serving import replay_workload

    config = GraphPrompterConfig(hidden_dim=p["hidden_dim"],
                                 max_subgraph_nodes=p["max_nodes"])
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    model = GraphPrompterModel(graph.feature_dim, graph.num_relations, config)
    episodes = [
        sample_episode(dataset, num_ways=p["num_ways"],
                       num_queries=p["serve_queries"], rng=100 + i)
        for i in range(p["serve_sessions"])
    ]

    def run(batch_size: int) -> float:
        # Best-of-3 replays, like the calibrated timer used everywhere
        # else: one wall-clock sample would let a scheduler hiccup (or the
        # first-touch warm-up the first run pays) skew the CI-gated ratio.
        best = 0.0
        for _ in range(3):
            server = PromptServer(model, dataset, max_batch_size=batch_size,
                                  rng=0)
            results, elapsed = replay_workload(server, episodes)
            best = max(best, len(results) / elapsed)
        return best

    qps_single = run(1)
    qps_batched = run(p["serve_batch"])
    return {"serving_microbatch": {
        "qps_per_query": qps_single,
        "qps_batched": qps_batched,
        "speedup": qps_batched / qps_single if qps_single > 0 else float("inf"),
        "batch_size": p["serve_batch"],
        "sessions": p["serve_sessions"],
    }}


def _shard_benchmarks(p: dict) -> dict:
    """Partition time, cross-shard sampling overhead, parallel serve QPS."""
    from ..shard import ShardedGraphStore, partition_graph

    dense = _dense_sampling_graph(p)
    dense.undirected_adjacency  # CSR build outside the timed region
    K = p["shard_k"]
    out: dict = {"shard_partition": {}}
    for strategy in ("greedy", "hash"):
        measured = time_callable(
            lambda strategy=strategy: partition_graph(dense, K, strategy),
            min_runtime_s=p["min_runtime_s"], repeats=3)
        out["shard_partition"][f"{strategy}_s"] = measured.per_call_s
    out["shard_partition"]["num_shards"] = K
    out["shard_partition"]["edges"] = dense.num_edges

    # Cross-shard sampling: the K-shard store's halo resolution vs. the
    # monolithic CSR, same seeds and draws (outputs are bit-identical —
    # the equivalence suite asserts it; this pins what it costs).
    view = ShardedGraphStore.from_graph(dense, K, "greedy").view()
    rng_np = np.random.default_rng(1)
    seeds = rng_np.integers(0, dense.num_nodes, size=p["sample_calls"])

    def run(graph, sampler, hops, cap):
        rng = np.random.default_rng(0)

        def call():
            for seed in seeds:
                sampler(graph, np.array([seed]), hops, cap, rng)
        return call

    for name, sampler, hops, cap in (
            ("shard_sampling_bfs", bfs_neighborhood,
             p["bfs_hops"], p["bfs_cap"]),
            ("shard_sampling_random_walk", random_walk_neighborhood,
             p["rw_hops"], p["rw_cap"])):
        mono = time_callable(run(dense, sampler, hops, cap),
                             min_runtime_s=p["min_runtime_s"], repeats=5)
        sharded = time_callable(run(view, sampler, hops, cap),
                                min_runtime_s=p["min_runtime_s"], repeats=5)
        # speedup < 1 is expected: this ratio tracks halo overhead, and
        # the regression check guards it from silently getting worse.
        out[name] = _pair(mono.per_call_s, sharded.per_call_s,
                          "monolithic_s", "sharded_s")
        out[name]["num_shards"] = K

    # Halo row cache: repeated expansion of the same frontier with the
    # cache disabled (every remote row re-pulled and re-translated per
    # call) vs. warm (hits answered from the contiguous ghost-row
    # buffer).  Read-transparent — the equivalence suite asserts the
    # rows match; this ratio pins the payoff (speedup > 1 expected).
    store = ShardedGraphStore.from_graph(dense, K, "greedy")
    frontier = rng_np.integers(0, dense.num_nodes, size=p["bfs_cap"])

    def expand():
        store.gather_neighbors(frontier)

    store.cache_enabled = False
    uncached = time_callable(expand, min_runtime_s=p["min_runtime_s"],
                             repeats=5)
    store.cache_enabled = True
    store.reset_counters()
    expand()  # warm fill outside the timed region
    cached = time_callable(expand, min_runtime_s=p["min_runtime_s"],
                           repeats=5)
    stats = store.cache_stats()
    halo = _pair(uncached.per_call_s, cached.per_call_s,
                 "uncached_s", "cached_s")
    halo["num_shards"] = K
    halo["frontier_rows"] = int(frontier.size)
    halo["hit_rate"] = (stats["hits"]
                        / max(stats["hits"] + stats["misses"], 1))
    out["shard_halo_cache"] = halo

    # Batched frontier expansion: a micro-batch of concurrent sessions,
    # each holding its own frontier.  Per-session, every session pays its
    # own store round-trip (one gather per session — the pre-batching
    # serving path); batched, one grouped prefetch pulls the union of all
    # frontiers in a single round-trip per shard, which is what the
    # router now does ahead of sampling.
    sessions = p["serve_batch"]
    rows_per_session = max(1, p["bfs_cap"] // sessions)
    session_frontiers = [
        rng_np.integers(0, dense.num_nodes, size=rows_per_session)
        for _ in range(sessions)
    ]
    union = np.concatenate(session_frontiers)

    def per_session():
        for session_frontier in session_frontiers:
            store.gather_neighbors(session_frontier)

    def batched():
        store._cache_reset(store.num_nodes)  # force a cold prefetch
        store.prefetch_rows(union)

    store.cache_enabled = False
    per = time_callable(per_session, min_runtime_s=p["min_runtime_s"],
                        repeats=5)
    store.cache_enabled = True
    bat = time_callable(batched, min_runtime_s=p["min_runtime_s"],
                        repeats=5)
    frontier_qps = _pair(per.per_call_s, bat.per_call_s,
                         "per_session_s", "batched_s")
    frontier_qps["num_shards"] = K
    frontier_qps["batch_sessions"] = sessions
    frontier_qps["frontier_rows"] = int(union.size)
    frontier_qps["batches_per_sec"] = (1.0 / bat.per_call_s
                                       if bat.per_call_s > 0
                                       else float("inf"))
    out["shard_batched_frontier_qps"] = frontier_qps

    # Parallel serving: K shards, 1 worker vs. the process pool.
    from ..experiments.serving import replay_workload

    graph = _benchmark_graph(p)
    config = GraphPrompterConfig(hidden_dim=p["hidden_dim"],
                                 max_subgraph_nodes=p["max_nodes"])
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    model = GraphPrompterModel(graph.feature_dim, graph.num_relations,
                               config)
    episodes = [
        sample_episode(dataset, num_ways=p["num_ways"],
                       num_queries=p["serve_queries"], rng=100 + i)
        for i in range(p["serve_sessions"])
    ]

    def serve_qps(num_workers: int, backend: str) -> tuple[float, str]:
        best, effective = 0.0, backend
        for _ in range(3):
            server = PromptServer(model, dataset,
                                  max_batch_size=p["serve_batch"], rng=0,
                                  num_shards=K, num_workers=num_workers,
                                  worker_backend=backend)
            results, elapsed = replay_workload(server, episodes)
            best = max(best, len(results) / elapsed)
            effective = server.router.backend
            server.close()
        return best, effective

    from ..shard.workers import usable_cores

    # ``auto`` picks processes only on multi-core hosts, so on a 1-core
    # runner this measures the serial fallback against itself (speedup
    # ~1.0) instead of paying IPC for parallelism the host cannot give.
    # ``cores`` is recorded so baselines stay interpretable across
    # machines.
    qps_serial, _ = serve_qps(1, "serial")
    qps_parallel, effective = serve_qps(p["serve_workers"], "auto")
    out["shard_parallel_qps"] = {
        "qps_1worker": qps_serial,
        "qps_parallel": qps_parallel,
        "speedup": (qps_parallel / qps_serial if qps_serial > 0
                    else float("inf")),
        "workers": p["serve_workers"],
        "num_shards": K,
        "backend": effective,
        "cores": usable_cores(),
        # Raw host core count alongside affinity-aware ``cores``: when a
        # container pins affinity below the hardware size the two
        # diverge, which is the first thing to check when a parallel-QPS
        # baseline looks implausible.
        "cpu_count": os.cpu_count() or 1,
    }
    return out


def _mutation_benchmarks(p: dict) -> dict:
    """Overlay apply throughput, overlay read overhead, compaction."""
    from ..graph import CSRAdjacency

    out: dict = {}
    batch = p["mutate_batch"]

    # Apply: absorb (add K, remove the same K) through the overlay vs.
    # rebuilding the undirected CSR from the live list — the per-batch
    # cost a frozen-graph serving system pays for the same freshness.
    graph = _dense_sampling_graph(p)
    graph.adjacency
    graph.undirected_adjacency  # promote-and-build outside the timed region
    rng_np = np.random.default_rng(5)
    add_src = rng_np.integers(0, graph.num_nodes, size=batch)
    add_dst = rng_np.integers(0, graph.num_nodes, size=batch)

    def overlay_cycle():
        eids = graph.add_edges(add_src, add_dst)
        graph.remove_edges(eids)

    overlay_cycle()  # first cycle pays overlay promotion; warm it up

    def rebuild_cycle():
        src, dst, _, _ = graph.live_edges()
        CSRAdjacency(graph.num_nodes,
                     np.concatenate([src, dst]),
                     np.concatenate([dst, src]))

    rebuild = time_callable(rebuild_cycle, min_runtime_s=p["min_runtime_s"],
                            repeats=3)
    overlay = time_callable(overlay_cycle, min_runtime_s=p["min_runtime_s"],
                            repeats=3)
    result = _pair(rebuild.per_call_s, overlay.per_call_s,
                   "rebuild_s", "overlay_s")
    result["batch_edges"] = 2 * batch  # adds + removes per cycle
    result["apply_edges_per_sec"] = (2 * batch / overlay.per_call_s
                                   if overlay.per_call_s > 0 else float("inf"))
    out["mutation_apply"] = result

    # Read overhead: sampling over a clean CSR vs. the same graph carrying
    # an uncompacted overlay at the configured fraction (bit-identical
    # outputs — the differential suite asserts it; this pins the cost).
    clean = _dense_sampling_graph(p)
    clean.undirected_adjacency

    def make_dirty(tier_enabled: bool):
        mutated = clean.rebuild()
        mutated.tier_enabled = tier_enabled
        # Build the CSR *before* mutating: only then do the writes land in
        # a live overlay.  (Mutating first would let the lazy build fold
        # them into a clean base and this benchmark would sample zero
        # overlay.)
        mutated.undirected_adjacency
        count = int(mutated.num_live_edges * p["overlay_fraction"] / 2)
        mut_rng = np.random.default_rng(6)
        mutated.add_edges(mut_rng.integers(0, mutated.num_nodes, size=count),
                          mut_rng.integers(0, mutated.num_nodes, size=count))
        mutated.remove_edges(mut_rng.choice(clean.num_edges, size=count,
                                            replace=False))
        return mutated

    dirty = make_dirty(tier_enabled=True)
    assert dirty.overlay_fraction > 0, "benchmark must sample a live overlay"
    seeds = np.random.default_rng(1).integers(0, clean.num_nodes,
                                              size=p["sample_calls"])

    def run(graph, sampler, hops, cap):
        rng = np.random.default_rng(0)

        def call():
            for seed in seeds:
                sampler(graph, np.array([seed]), hops, cap, rng)
        return call

    for name, sampler, hops, cap in (
            ("mutation_sampling_bfs", bfs_neighborhood,
             p["bfs_hops"], p["bfs_cap"]),
            ("mutation_sampling_random_walk", random_walk_neighborhood,
             p["rw_hops"], p["rw_cap"])):
        clean_t = time_callable(run(clean, sampler, hops, cap),
                                min_runtime_s=p["min_runtime_s"], repeats=5)
        dirty_t = time_callable(run(dirty, sampler, hops, cap),
                                min_runtime_s=p["min_runtime_s"], repeats=5)
        # speedup < 1 is expected: the ratio tracks the overlay read
        # overhead compaction exists to bound.
        out[name] = _pair(clean_t.per_call_s, dirty_t.per_call_s,
                          "clean_s", "overlay_s")
        out[name]["overlay_fraction"] = dirty.overlay_fraction

    # Tiered compaction payoff: the same overlay sampled with row
    # promotion disabled (every dirty row re-assembled per read) vs. the
    # default tiered path, where hot dirty rows are re-materialized into
    # contiguous side storage and the frontier gather stays fused.
    # Outputs are bit-identical — the differential suite asserts it;
    # this ratio pins what the tier buys (speedup > 1 expected).
    untiered = make_dirty(tier_enabled=False)
    delta_t = time_callable(run(untiered, bfs_neighborhood,
                                p["bfs_hops"], p["bfs_cap"]),
                            min_runtime_s=p["min_runtime_s"], repeats=5)
    tiered_t = time_callable(run(dirty, bfs_neighborhood,
                                 p["bfs_hops"], p["bfs_cap"]),
                             min_runtime_s=p["min_runtime_s"], repeats=5)
    tiered = _pair(delta_t.per_call_s, tiered_t.per_call_s,
                   "delta_only_s", "tiered_s")
    tier_stats = dirty.undirected_adjacency.overlay_stats()
    tiered["promoted_rows"] = tier_stats["promoted_rows"]
    out["mutation_sampling_bfs_tiered"] = tiered

    # Compaction: fold the overlay back into clean bases.  Repeatable —
    # compacting an already-clean mutated graph still rebuilds both
    # adjacency views from the live list, which is exactly the work.
    compact = time_callable(dirty.compact, min_runtime_s=p["min_runtime_s"],
                            repeats=3)
    out["mutation_compact"] = {
        "compact_s": compact.per_call_s,
        "edges_per_sec": (dirty.num_live_edges / compact.per_call_s
                        if compact.per_call_s > 0 else float("inf")),
        "live_edges": dirty.num_live_edges,
    }
    return out


def _gateway_benchmarks(p: dict) -> dict:
    """Gateway overhead vs. bare server, plus the overload shed outcome.

    Both replay paths run with a **live metrics registry** scoped in, so
    the ratio CI gates includes the per-event cost of the observability
    layer — that is the "metrics enabled regresses < 5%" acceptance
    check, pinned structurally rather than by a separate benchmark.
    """
    import asyncio

    from ..experiments.serving import replay_workload
    from ..obs.metrics import MetricsRegistry, scoped_registry
    from ..obs.tracing import STAGE_HELP, STAGE_METRIC
    from ..serving import Overloaded, Priority, ServingGateway

    graph = _benchmark_graph(p)
    config = GraphPrompterConfig(hidden_dim=p["hidden_dim"],
                                 max_subgraph_nodes=p["max_nodes"])
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    model = GraphPrompterModel(graph.feature_dim, graph.num_relations,
                               config)
    episodes = [
        sample_episode(dataset, num_ways=p["num_ways"],
                       num_queries=p["serve_queries"], rng=100 + i)
        for i in range(p["serve_sessions"])
    ]

    def direct_qps() -> float:
        best = 0.0
        for _ in range(3):
            with scoped_registry(MetricsRegistry()):
                server = PromptServer(model, dataset,
                                      max_batch_size=p["serve_batch"],
                                      rng=0)
                results, elapsed = replay_workload(server, episodes)
            best = max(best, len(results) / elapsed)
        return best

    async def one_gateway_replay() -> float:
        server = PromptServer(model, dataset,
                              max_batch_size=p["serve_batch"], rng=0)
        gateway = ServingGateway(server, max_queue=4096,
                                 max_batch_size=p["serve_batch"],
                                 auto_drain=False)
        for i, episode in enumerate(episodes):
            gateway.open_session(f"tenant-{i}", f"session-{i}", episode)
        futures = []
        start = time.perf_counter()
        for q in range(episodes[0].num_queries):
            for i, episode in enumerate(episodes):
                futures.append(gateway.submit_nowait(f"session-{i}",
                                                     episode.queries[q]))
        await gateway.flush()
        elapsed = time.perf_counter() - start
        await gateway.close()
        return len(futures) / elapsed

    # One registry across the gateway replays: the qps pays live metric
    # recording (the overhead under test) and its stage histograms feed
    # the profile entry below.
    gateway_registry = MetricsRegistry()

    def gateway_qps() -> float:
        best = 0.0
        for _ in range(3):
            with scoped_registry(gateway_registry):
                best = max(best, asyncio.run(one_gateway_replay()))
        return best

    qps_direct = direct_qps()
    qps_gateway = gateway_qps()
    out = {"gateway_overhead": {
        "qps_direct": qps_direct,
        "qps_gateway": qps_gateway,
        # Ratio ≤ 1 expected: it tracks the admission + ledger + asyncio
        # overhead per query; the regression check guards it from
        # silently growing.
        "speedup": qps_gateway / qps_direct if qps_direct > 0
        else float("inf"),
        "batch_size": p["serve_batch"],
        "sessions": p["serve_sessions"],
        "metrics_enabled": True,
    }}

    # Per-stage hot-path profile from the replays above — recorded, not
    # ratio-gated: it documents where gateway-served time goes (sample /
    # batch_assembly / forward / encode / predict) for trend reading.
    stage_hist = gateway_registry.histogram(STAGE_METRIC, STAGE_HELP,
                                            ("stage",))
    stage_profile = {}
    for (stage,), series in sorted(stage_hist.series().items()):
        if series.count:
            stage_profile[stage] = {
                "mean_ms": 1000.0 * series.total / series.count,
                "count": series.count,
            }
    out["gateway_stage_profile"] = stage_profile

    # Overload outcome at 2x queue capacity: shed rate, interactive p95
    # queue wait, deadline misses — recorded (not ratio-gated) so the
    # committed baseline documents the QoS behaviour CI smoke asserts.
    async def overload() -> dict:
        rounds = p["overload_rounds"]
        per_round = p["overload_per_round"]
        classes = [Priority.INTERACTIVE, Priority.BATCH,
                   Priority.BACKGROUND, Priority.BATCH]
        max_queue = max(len(episodes) * per_round // 2, 4)
        server = PromptServer(model, dataset,
                              max_batch_size=p["serve_batch"], rng=0)
        gateway = ServingGateway(server, max_queue=max_queue,
                                 max_batch_size=p["serve_batch"],
                                 auto_drain=False)
        for i, episode in enumerate(episodes):
            gateway.open_session(f"tenant-{i}", f"session-{i}", episode,
                                 priority=classes[i % len(classes)])
        shed = 0
        offered = 0
        for round_id in range(rounds):
            for offset in range(per_round):
                q = round_id * per_round + offset
                for i, episode in enumerate(episodes):
                    offered += 1
                    outcome = gateway.submit_nowait(f"session-{i}",
                                                    episode.queries[q])
                    shed += isinstance(outcome, Overloaded)
            await gateway.flush()
        await gateway.flush()
        stats = gateway.stats
        interactive_p95 = max(
            (t.wait_p95_s for t in stats.tenants
             if t.priority == Priority.INTERACTIVE), default=0.0)
        misses = sum(t.deadline_misses for t in stats.tenants)
        await gateway.close()
        return {
            "offered": offered,
            "shed": shed,
            "shed_rate": shed / offered if offered else 0.0,
            "interactive_wait_p95_ms": 1000.0 * interactive_p95,
            "deadline_misses": misses,
            "max_queue": max_queue,
        }

    out["gateway_overload"] = asyncio.run(overload())
    return out


def run_benchmarks(profile: str = "full") -> dict:
    """Run every hot-path benchmark; returns the JSON-ready result dict."""
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; "
                         f"use one of {sorted(PROFILES)}")
    p = PROFILES[profile]
    benchmarks: dict = {}
    if profile == "shard":
        benchmarks.update(_shard_benchmarks(p))
    elif profile == "mutate":
        benchmarks.update(_mutation_benchmarks(p))
    elif profile == "gateway":
        benchmarks.update(_gateway_benchmarks(p))
    else:
        graph = _benchmark_graph(p)
        benchmarks.update(_sampling_benchmarks(p))
        benchmarks.update(_batching_benchmark(p))
        benchmarks.update(_encoding_benchmark(graph, p))
        benchmarks.update(_encoding_fast_benchmark(graph, p))
        benchmarks.update(_pool_bytes_benchmark(graph, p))
        benchmarks.update(_serving_benchmark(graph, p))
    return {
        "schema": SCHEMA_VERSION,
        "profile": profile,
        "benchmarks": benchmarks,
    }


#: Result keys recording the *environment* a ratio was measured under.
#: When current and baseline disagree on one (e.g. the parallel-QPS row
#: measured with the process pool on a multi-core runner vs. the serial
#: fallback on a 1-core box), their speedups describe different
#: experiments and comparing them would only produce false alarms.
_ENVIRONMENT_KEYS = ("backend", "cores")


def check_regression(current: dict, baseline: dict,
                     tolerance: float = 1.5,
                     skipped: list[str] | None = None) -> list[str]:
    """Compare two result dicts; returns human-readable failures.

    A benchmark regresses when its speedup ratio falls below the
    baseline's by more than ``tolerance``× — ratios, not absolute times,
    so the check is portable across machines (the committed baseline was
    produced on different hardware than CI runners).  Benchmarks whose
    recorded environment keys (``backend``/``cores``) differ from the
    baseline's are skipped: their ratios measure different experiments.
    Pass a ``skipped`` list to receive one explicit message per skip
    (which keys diverged, run vs. baseline) — a silently passing gate
    that compared nothing is indistinguishable from a healthy one
    otherwise.  The return value stays the failures list either way.
    """
    if tolerance < 1.0:
        raise ValueError("tolerance must be at least 1.0")
    failures = []
    base_benchmarks = baseline.get("benchmarks", {})
    for name, result in current.get("benchmarks", {}).items():
        base = base_benchmarks.get(name)
        if base is None or "speedup" not in base or "speedup" not in result:
            continue
        mismatched = [key for key in _ENVIRONMENT_KEYS
                      if (key in result or key in base)
                      and result.get(key) != base.get(key)]
        if mismatched:
            if skipped is not None:
                detail = ", ".join(
                    f"{key} run={result.get(key)!r} "
                    f"baseline={base.get(key)!r}" for key in mismatched)
                skipped.append(
                    f"{name}: environment-skipped — {detail}")
            continue
        floor = base["speedup"] / tolerance
        if result["speedup"] < floor:
            failures.append(
                f"{name}: speedup {result['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x / "
                f"tolerance {tolerance:g})")
    return failures
