"""Self-calibrating microbenchmark timer.

``time_callable`` is the single primitive of the harness: it calibrates an
inner-loop count so one measurement repetition runs for at least
``min_runtime_s`` (amortising clock granularity), then reports the *best*
per-call time over several repetitions — the standard way to strip
scheduler noise from CPU microbenchmarks (cf. ``timeit``'s ``repeat``
guidance: the minimum is the measurement, the rest is interference).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["Measurement", "time_callable"]


@dataclass(frozen=True)
class Measurement:
    """Best-of-``repeats`` timing for one callable."""

    per_call_s: float
    inner_loops: int
    repeats: int

    @property
    def per_call_us(self) -> float:
        return self.per_call_s * 1e6


def time_callable(fn, *, min_runtime_s: float = 0.05, repeats: int = 3,
                  max_inner: int = 1 << 20) -> Measurement:
    """Best per-call seconds of ``fn()`` over ``repeats`` measured blocks.

    The inner-loop count doubles until one block takes ``min_runtime_s``;
    every block then runs that many calls, and the fastest block sets the
    reported per-call time.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    fn()  # warm-up: JIT-less here, but fills caches and lazy structures
    inner = 1
    while True:
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        elapsed = time.perf_counter() - start
        # Break only on a block measured at the *current* inner count, so
        # elapsed/inner always refer to the same block.
        if elapsed >= min_runtime_s or inner >= max_inner:
            break
        # Aim straight for the target instead of pure doubling.
        scale = min_runtime_s / max(elapsed, 1e-9)
        inner = min(max(inner * 2, int(inner * scale * 1.2) + 1), max_inner)
    best = elapsed / inner
    for _ in range(repeats - 1):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / inner)
    return Measurement(per_call_s=best, inner_loops=inner, repeats=repeats)
