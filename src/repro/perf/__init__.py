"""Performance-regression harness for the inference hot paths.

This subsystem pins the repo's perf trajectory the way the test suite pins
behaviour: :mod:`repro.perf.hotpaths` defines paired microbenchmarks
(legacy vs. vectorized sampling, concat vs. arena batching, autodiff vs.
fused no-grad encoding, per-query vs. micro-batched serving QPS),
:mod:`repro.perf.microbench` provides the calibrated best-of-N timer, and
``repro bench`` (:func:`bench_main`) runs everything, writes
``BENCH_hotpaths.json``, and — given ``--baseline`` — fails when any
speedup ratio regresses beyond the tolerance.

Baselines are **per profile**: the committed JSON holds one section per
workload profile that was run, and a regression check only ever compares a
profile against its own section (quick vs. quick in CI) — ratios shift
with workload scale, so cross-profile comparison would be meaningless.

Usage::

    python -m repro bench                  # full + quick → BENCH_hotpaths.json
    python -m repro bench --quick          # CI-scale profile only
    python -m repro bench --quick --baseline BENCH_hotpaths.json
    python -m repro bench --profile mutate --floor mutation_sampling_bfs=0.8

``--floor NAME=VALUE`` gates a benchmark's speedup ratio against an
absolute minimum: unlike ``--baseline`` (which tracks whatever numbers
were last recorded) a floor cannot drift downward when the baseline is
regenerated.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .hotpaths import PROFILES, check_regression, run_benchmarks
from .microbench import Measurement, time_callable

__all__ = [
    "PROFILES",
    "run_benchmarks",
    "check_regression",
    "time_callable",
    "Measurement",
    "bench_main",
]

#: Written to / expected in the baseline JSON.
BASELINE_SCHEMA = 2


def _format_results(results: dict) -> str:
    from ..viz import format_table

    rows = []
    for name, cells in results["benchmarks"].items():
        keys = [k for k in cells if k.endswith("_s")]
        qps_keys = [k for k in cells if k.startswith("qps_")]
        if keys:  # microbenchmark pair: per-call seconds
            detail = ", ".join(f"{k[:-2]} {cells[k] * 1e6:.0f}us"
                               for k in keys)
        elif qps_keys:  # serving: QPS pair
            detail = ("qps " + " -> ".join(f"{cells[k]:.1f}"
                                           for k in qps_keys))
        else:  # counter-style entry (e.g. the gateway overload outcome)
            detail = ", ".join(
                f"{k} {value:.3g}" for k, value in cells.items()
                if isinstance(value, (int, float)))
        speedup = (f"{cells['speedup']:.2f}x" if "speedup" in cells
                   else "-")
        rows.append([name, speedup, detail])
    return format_table(
        ["Benchmark", "Speedup", "Detail"], rows,
        title=f"Hot-path microbenchmarks ({results['profile']} profile)")


def baseline_profile_section(baseline: dict, profile: str) -> dict | None:
    """The baseline entry matching ``profile``, or ``None``.

    Accepts both the schema-2 layout (``{"profiles": {name: {...}}}``) and
    a bare single-profile result dict whose ``"profile"`` field matches.
    """
    sections = baseline.get("profiles")
    if isinstance(sections, dict):
        return sections.get(profile)
    if baseline.get("profile") == profile:
        return baseline
    return None


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="hot-path microbenchmarks + perf-regression check",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run only the CI-scale profile (seconds instead of a minute)")
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default=None,
        help="run exactly one workload profile (overrides --quick)")
    parser.add_argument(
        "--output", default="BENCH_hotpaths.json",
        help="where to write the results JSON (default: %(default)s)")
    parser.add_argument(
        "--no-write", action="store_true",
        help="print results without writing the JSON")
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline JSON to compare against (same-profile sections); "
             "exit 1 on regression")
    parser.add_argument(
        "--tolerance", type=float, default=1.5,
        help="allowed speedup-ratio slack vs. the baseline "
             "(default: %(default)s)")
    parser.add_argument(
        "--floor", action="append", default=[], metavar="NAME=VALUE",
        help="absolute gate: require benchmark NAME's speedup ratio to "
             "stay at or above VALUE (repeatable); exit 1 when it does "
             "not — unlike --baseline this does not drift with the "
             "recorded numbers")
    return parser


def bench_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro bench``."""
    args = build_bench_parser().parse_args(argv)
    floors: dict[str, float] = {}
    for spec in args.floor:
        name, sep, value = spec.partition("=")
        try:
            if not sep:
                raise ValueError(spec)
            floors[name] = float(value)
        except ValueError:
            print(f"--floor expects NAME=VALUE, got {spec!r}",
                  file=sys.stderr)
            return 2
    if args.profile:
        profiles = [args.profile]
    elif args.quick:
        profiles = ["quick"]
    else:
        # Default run produces a baseline-ready file: every profile a
        # later --baseline check might be run under.
        profiles = ["full", "quick"]
    # Load the baseline BEFORE any write: with the default --output the
    # baseline may be the same file, and writing first would turn the
    # regression check into a self-comparison that can never fail.
    baseline = None
    if args.baseline is not None:
        with open(args.baseline) as handle:
            baseline = json.load(handle)

    results = {}
    for profile in profiles:
        results[profile] = run_benchmarks(profile)
        print(_format_results(results[profile]))

    write = not args.no_write
    if write and args.baseline is not None and (
            os.path.realpath(args.output) == os.path.realpath(args.baseline)):
        # Checking against a baseline must not clobber it (a partial run
        # would also drop the other profiles' sections).
        print(f"[not overwriting baseline {args.baseline}; "
              f"pass a different --output to record this run]")
        write = False
    if write:
        sections = {name: {"benchmarks": r["benchmarks"]}
                    for name, r in results.items()}
        # Merge with the sections already recorded in the output file —
        # running one profile (e.g. --profile shard) must not drop the
        # others' committed baselines.
        if os.path.exists(args.output):
            try:
                with open(args.output) as handle:
                    existing = json.load(handle)
            except (OSError, ValueError):
                existing = {}
            previous = existing.get("profiles")
            if isinstance(previous, dict):
                sections = {**previous, **sections}
        payload = {
            "schema": BASELINE_SCHEMA,
            "profiles": sections,
        }
        # Atomic merge-write: an interrupted run must never leave a
        # truncated/half-written baseline behind — CI compares against
        # this file, so a torn write would fail every later check.
        from ..persist import atomic_write

        with atomic_write(args.output) as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[wrote {args.output}]")

    if baseline is not None:
        failures = []
        skipped: list[str] = []
        for name, result in results.items():
            section = baseline_profile_section(baseline, name)
            if section is None:
                failures.append(
                    f"{name}: baseline {args.baseline} has no section for "
                    f"this profile — regenerate it with 'repro bench'")
                continue
            profile_skips: list[str] = []
            failures.extend(
                f"[{name}] {failure}"
                for failure in check_regression(result, section,
                                                tolerance=args.tolerance,
                                                skipped=profile_skips))
            skipped.extend(f"[{name}] {skip}" for skip in profile_skips)
        # Skips print even on success: a gate that silently compared
        # nothing (e.g. serial fallback vs. a process-pool baseline)
        # must be visible in the log, not mistaken for a green check.
        for skip in skipped:
            print(f"ENVIRONMENT-SKIPPED: {skip}")
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"[no perf regressions vs. {args.baseline} "
              f"(tolerance {args.tolerance:g}x)]")

    if floors:
        floor_failures = []
        for bench_name, minimum in floors.items():
            matched = False
            for profile, result in results.items():
                entry = result["benchmarks"].get(bench_name)
                if entry is None:
                    continue
                matched = True
                speedup = entry.get("speedup")
                if speedup is None or speedup < minimum:
                    shown = ("missing" if speedup is None
                             else f"{speedup:.3f}x")
                    floor_failures.append(
                        f"[{profile}] {bench_name}: speedup {shown} "
                        f"below floor {minimum:g}x")
            if not matched:
                floor_failures.append(
                    f"{bench_name}: no such benchmark in the profiles "
                    f"run — check the --floor name")
        if floor_failures:
            for failure in floor_failures:
                print(f"PERF FLOOR: {failure}", file=sys.stderr)
            return 1
        print(f"[all {len(floors)} perf floor(s) held]")
    return 0
