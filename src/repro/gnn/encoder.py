"""The data-graph encoder ``GNN_D`` producing subgraph embeddings (Eq. 4).

Pipeline per batch: project raw node features, embed relation types, run a
stack of (weighted) graph convolutions, then read out the center-node
embeddings — one center for node-classification inputs, a projected
(head, tail) pair for edge-classification inputs.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor
from .batch import SubgraphBatch
from .gat import GATConv
from .pooling import center_pool
from .sage import SAGEConv

__all__ = ["DataGraphEncoder"]

_CONV_TYPES = {"sage": SAGEConv, "gat": GATConv}


class DataGraphEncoder(Module):
    """Stacked graph convolutions with center readout.

    Parameters
    ----------
    feature_dim:
        Raw node-feature dimensionality of the source graph.
    hidden_dim:
        Embedding dimensionality (the paper uses 256 at GPU scale; the
        default here is CPU-sized).
    num_layers:
        Number of convolution layers (receptive field = num_layers hops).
    rel_feature_dim:
        Dimensionality of relation feature vectors.  Relations are
        *feature-based* — a shared linear projection maps each edge's
        relation feature into the hidden space — so the same weights apply
        to any downstream KG (the cross-domain requirement of Sec. V-A2).
        Defaults to ``feature_dim`` (shared semantic space).
    conv:
        ``"sage"`` (paper default) or ``"gat"`` (Fig. 4 ablation).
    """

    def __init__(
        self,
        feature_dim: int,
        hidden_dim: int = 32,
        num_layers: int = 2,
        rel_feature_dim: int | None = None,
        conv: str = "sage",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if conv not in _CONV_TYPES:
            raise ValueError(f"unknown conv type {conv!r}; use one of "
                             f"{sorted(_CONV_TYPES)}")
        if num_layers < 1:
            raise ValueError("need at least one convolution layer")
        rng = rng or np.random.default_rng(0)
        self.feature_dim = feature_dim
        self.hidden_dim = hidden_dim
        self.rel_feature_dim = rel_feature_dim or feature_dim
        self.conv_type = conv
        self.input_proj = Linear(feature_dim, hidden_dim, rng=rng)
        self.rel_proj = Linear(self.rel_feature_dim, hidden_dim, rng=rng)
        conv_cls = _CONV_TYPES[conv]
        self._modules_list = [
            conv_cls(
                hidden_dim,
                hidden_dim,
                activation="relu" if i < num_layers - 1 else "identity",
                rng=rng,
            )
            for i in range(num_layers)
        ]
        self.pair_proj = Linear(2 * hidden_dim, hidden_dim, rng=rng)

    def forward(
        self,
        batch: SubgraphBatch,
        edge_weights: Tensor | np.ndarray | None = None,
    ) -> Tensor:
        """Encode a batch of data graphs into ``(num_graphs, hidden_dim)``.

        ``edge_weights`` are the reconstruction weights ``W^D`` (Eq. 3);
        pass the live :class:`Tensor` during training so gradients reach the
        reconstruction MLP, or leave ``None`` to fall back to the weights
        stored on the batch (inference) / uniform weights.
        """
        if edge_weights is None and batch.edge_weights is not None:
            edge_weights = batch.edge_weights
        x = self.input_proj(Tensor(batch.node_features))
        rel_emb = None
        if batch.rel_features is not None and batch.num_edges:
            rel_emb = self.rel_proj(Tensor(batch.rel_features))
        for conv in self._modules_list:
            x = conv(x, batch.src, batch.dst, batch.num_nodes,
                     edge_weights=edge_weights, rel_emb=rel_emb)
        pooled = center_pool(x, batch.centers)
        if pooled.shape[-1] == self.hidden_dim:
            return pooled
        if pooled.shape[-1] == 2 * self.hidden_dim:
            return self.pair_proj(pooled)
        raise ValueError(
            f"unsupported center count: pooled dim {pooled.shape[-1]}"
        )

    def encode_subgraphs(self, subgraphs: list, edge_weights=None,
                         arena=None) -> Tensor:
        """Convenience: batch a list of subgraphs and encode it.

        ``arena`` is an optional :class:`~repro.gnn.batch.BatchArena` whose
        buffers back the assembled batch (serving reuses one across ticks).
        """
        return self.forward(SubgraphBatch.from_subgraphs(subgraphs,
                                                         arena=arena),
                            edge_weights=edge_weights)
