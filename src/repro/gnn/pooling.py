"""Graph-level readouts turning node embeddings into subgraph embeddings."""

from __future__ import annotations

import numpy as np

from ..nn import Tensor
from .message_passing import scatter_mean

__all__ = ["mean_pool", "center_pool"]


def mean_pool(h: Tensor, graph_index: np.ndarray, num_graphs: int) -> Tensor:
    """Average node embeddings within each subgraph of a batch."""
    return scatter_mean(h, graph_index, num_graphs)


def center_pool(h: Tensor, centers: list[np.ndarray]) -> Tensor:
    """Concatenate the center-node embeddings of each subgraph.

    All subgraphs in a batch must have the same number of centers (one for
    node tasks, two for edge tasks); the result is ``(num_graphs, c * d)``.
    """
    counts = {len(c) for c in centers}
    if len(counts) != 1:
        raise ValueError(f"inconsistent center counts in batch: {sorted(counts)}")
    num_centers = counts.pop()
    flat = np.concatenate(centers)
    gathered = h.gather_rows(flat)
    dim = h.shape[-1]
    return gathered.reshape(len(centers), num_centers * dim)
