"""GNN layers: message passing, convolutions, pooling and the task GNN."""

from .batch import BatchArena, SubgraphBatch
from .encoder import DataGraphEncoder
from .gat import GATConv
from .message_passing import scatter_mean, scatter_sum, segment_count, segment_softmax
from .pooling import center_pool, mean_pool
from .sage import SAGEConv
from .task_gnn import (
    EDGE_ATTR_PROMPT_FALSE,
    EDGE_ATTR_PROMPT_TRUE,
    EDGE_ATTR_QUERY,
    NUM_EDGE_ATTRS,
    TaskGraphGNN,
)

__all__ = [
    "BatchArena",
    "SubgraphBatch",
    "DataGraphEncoder",
    "SAGEConv",
    "GATConv",
    "TaskGraphGNN",
    "scatter_sum",
    "scatter_mean",
    "segment_count",
    "segment_softmax",
    "mean_pool",
    "center_pool",
    "EDGE_ATTR_PROMPT_TRUE",
    "EDGE_ATTR_PROMPT_FALSE",
    "EDGE_ATTR_QUERY",
    "NUM_EDGE_ATTRS",
]
