"""Scatter/segment primitives shared by all GNN layers.

Each differentiable :class:`~repro.nn.Tensor` primitive has a raw-ndarray
twin (``*_data``) used by the fused no-grad inference path: identical
arithmetic, identical op order — therefore bit-identical outputs — but no
tensor wrapping, and dtype-preserving (float32 inputs stay float32 instead
of silently upcasting the whole attention path to float64).
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor

__all__ = [
    "scatter_sum",
    "scatter_mean",
    "segment_softmax",
    "segment_count",
    "data_of",
    "scatter_sum_data",
    "segment_softmax_data",
]


def _as_index(index: np.ndarray) -> np.ndarray:
    """Shared int64 coercion for segment ids (bincount/ufunc.at require it)."""
    return np.asarray(index, dtype=np.int64)


def data_of(value) -> np.ndarray:
    """Unwrap a :class:`Tensor` (or coerce array-likes) to its ndarray.

    The single Tensor-unwrapping rule of the fused no-grad forwards in
    :mod:`repro.gnn.sage` / :mod:`repro.gnn.gat` / :mod:`repro.gnn.task_gnn`.
    """
    return value.data if isinstance(value, Tensor) else np.asarray(value)


def scatter_sum(values: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Sum ``values`` rows into ``num_segments`` buckets (differentiable)."""
    return values.scatter_add(index, num_segments)


def segment_count(index: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of rows per segment, clamped to a minimum of one."""
    counts = np.bincount(_as_index(index),
                         minlength=num_segments).astype(np.float64)
    return np.maximum(counts, 1.0)


def scatter_mean(values: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregate ``values`` rows per segment; empty segments yield zeros."""
    summed = scatter_sum(values, index, num_segments)
    counts = segment_count(index, num_segments)
    return summed / Tensor(counts.reshape(-1, *([1] * (values.ndim - 1))))


def segment_softmax(scores: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Softmax of ``scores`` normalised within each segment.

    This is the attention normalisation of GAT and of the task-graph
    attention GNN: scores of all edges pointing at the same target node sum
    to one.
    """
    index = _as_index(index)
    if scores.ndim != 1:
        raise ValueError("segment_softmax expects 1-D scores")
    # Per-segment max for numerical stability (constant w.r.t. gradient).
    max_per_segment = np.full(num_segments, -np.inf)
    np.maximum.at(max_per_segment, index, scores.data)
    max_per_segment[~np.isfinite(max_per_segment)] = 0.0
    shifted = scores - Tensor(max_per_segment[index])
    exps = shifted.exp()
    denom = exps.reshape(-1, 1).scatter_add(index, num_segments)
    # Epsilon in the scores' dtype: a float64 literal here would promote a
    # float32 attention path to float64 from this op onward.
    eps = np.asarray(1e-16, dtype=scores.data.dtype)
    return exps / (denom.gather_rows(index).reshape(-1) + eps)


# ----------------------------------------------------------------------
# Raw-ndarray twins — the fused no-grad inference path
# ----------------------------------------------------------------------
def scatter_sum_data(values: np.ndarray, index: np.ndarray,
                     num_segments: int) -> np.ndarray:
    """Bucket-sum rows of a plain ndarray; same summation order as
    :meth:`Tensor.scatter_add` (sequential ``np.add.at``), same zeros
    initialisation — bit-identical for float64 inputs."""
    index = _as_index(index)
    out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
    np.add.at(out, index, values)
    return out


def segment_softmax_data(scores: np.ndarray, index: np.ndarray,
                         num_segments: int) -> np.ndarray:
    """Raw-ndarray :func:`segment_softmax`; dtype-preserving."""
    index = _as_index(index)
    if scores.ndim != 1:
        raise ValueError("segment_softmax expects 1-D scores")
    max_per_segment = np.full(num_segments, -np.inf, dtype=scores.dtype)
    np.maximum.at(max_per_segment, index, scores)
    max_per_segment[~np.isfinite(max_per_segment)] = 0.0
    exps = np.exp(scores - max_per_segment[index])
    denom = np.zeros(num_segments, dtype=exps.dtype)
    np.add.at(denom, index, exps)
    eps = np.asarray(1e-16, dtype=scores.dtype)
    return exps / (denom[index] + eps)
