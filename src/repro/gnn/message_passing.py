"""Scatter/segment primitives shared by all GNN layers."""

from __future__ import annotations

import numpy as np

from ..nn import Tensor

__all__ = ["scatter_sum", "scatter_mean", "segment_softmax", "segment_count"]


def scatter_sum(values: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Sum ``values`` rows into ``num_segments`` buckets (differentiable)."""
    return values.scatter_add(index, num_segments)


def segment_count(index: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of rows per segment, clamped to a minimum of one."""
    counts = np.bincount(np.asarray(index, dtype=np.int64),
                         minlength=num_segments).astype(np.float64)
    return np.maximum(counts, 1.0)


def scatter_mean(values: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregate ``values`` rows per segment; empty segments yield zeros."""
    summed = scatter_sum(values, index, num_segments)
    counts = segment_count(index, num_segments)
    return summed / Tensor(counts.reshape(-1, *([1] * (values.ndim - 1))))


def segment_softmax(scores: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Softmax of ``scores`` normalised within each segment.

    This is the attention normalisation of GAT and of the task-graph
    attention GNN: scores of all edges pointing at the same target node sum
    to one.
    """
    index = np.asarray(index, dtype=np.int64)
    if scores.ndim != 1:
        raise ValueError("segment_softmax expects 1-D scores")
    # Per-segment max for numerical stability (constant w.r.t. gradient).
    max_per_segment = np.full(num_segments, -np.inf)
    np.maximum.at(max_per_segment, index, scores.data)
    max_per_segment[~np.isfinite(max_per_segment)] = 0.0
    shifted = scores - Tensor(max_per_segment[index])
    exps = shifted.exp()
    denom = exps.reshape(-1, 1).scatter_add(index, num_segments)
    return exps / (denom.gather_rows(index).reshape(-1) + 1e-16)
