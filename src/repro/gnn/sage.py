"""Weighted GraphSAGE convolution — the paper's data-graph GNN (Eq. 4).

The paper uses GraphSAGE for ``GNN_D`` because "it has been proven to have
good scalability on large-scale graphs" (Sec. V-A4).  The only departure
from vanilla GraphSAGE is that messages are multiplied by the reconstruction
weights ``w_uv`` learned by the Prompt Generator (Eqs. 2–3) before the mean
aggregation, so noisy edges are attenuated.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor
from .message_passing import scatter_sum, segment_count

__all__ = ["SAGEConv"]


class SAGEConv(Module):
    """One GraphSAGE layer with optional per-edge weights.

    ``h'_u = act(W_self h_u + W_neigh · mean_{v→u} (w_uv · (h_v [+ r_uv])))``
    """

    def __init__(self, in_dim: int, out_dim: int, activation: str = "relu",
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.linear_self = Linear(in_dim, out_dim, rng=rng)
        self.linear_neigh = Linear(in_dim, out_dim, bias=False, rng=rng)

    def forward(
        self,
        h: Tensor,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
        edge_weights: Tensor | np.ndarray | None = None,
        rel_emb: Tensor | None = None,
    ) -> Tensor:
        messages = h.gather_rows(src)
        if rel_emb is not None:
            messages = messages + rel_emb
        if edge_weights is not None:
            if isinstance(edge_weights, np.ndarray):
                edge_weights = Tensor(edge_weights)
            messages = messages * edge_weights.reshape(-1, 1)
        summed = scatter_sum(messages, dst, num_nodes)
        counts = segment_count(dst, num_nodes)
        aggregated = summed / Tensor(counts.reshape(-1, 1))
        out = self.linear_self(h) + self.linear_neigh(aggregated)
        if self.activation == "relu":
            out = out.relu()
        elif self.activation == "tanh":
            out = out.tanh()
        elif self.activation != "identity":
            raise ValueError(f"unknown activation {self.activation!r}")
        return out
