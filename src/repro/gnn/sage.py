"""Weighted GraphSAGE convolution — the paper's data-graph GNN (Eq. 4).

The paper uses GraphSAGE for ``GNN_D`` because "it has been proven to have
good scalability on large-scale graphs" (Sec. V-A4).  The only departure
from vanilla GraphSAGE is that messages are multiplied by the reconstruction
weights ``w_uv`` learned by the Prompt Generator (Eqs. 2–3) before the mean
aggregation, so noisy edges are attenuated.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor
from ..nn.backend import get_backend
from ..nn.tensor import is_grad_enabled
from .message_passing import data_of, scatter_sum, segment_count

__all__ = ["SAGEConv"]


class SAGEConv(Module):
    """One GraphSAGE layer with optional per-edge weights.

    ``h'_u = act(W_self h_u + W_neigh · mean_{v→u} (w_uv · (h_v [+ r_uv])))``
    """

    def __init__(self, in_dim: int, out_dim: int, activation: str = "relu",
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.linear_self = Linear(in_dim, out_dim, rng=rng)
        self.linear_neigh = Linear(in_dim, out_dim, bias=False, rng=rng)

    def forward(
        self,
        h: Tensor,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
        edge_weights: Tensor | np.ndarray | None = None,
        rel_emb: Tensor | None = None,
    ) -> Tensor:
        if not is_grad_enabled():
            return Tensor(self._forward_data(h, src, dst, num_nodes,
                                             edge_weights, rel_emb))
        messages = h.gather_rows(src)
        if rel_emb is not None:
            messages = messages + rel_emb
        if edge_weights is not None:
            if isinstance(edge_weights, np.ndarray):
                edge_weights = Tensor(edge_weights)
            messages = messages * edge_weights.reshape(-1, 1)
        summed = scatter_sum(messages, dst, num_nodes)
        counts = segment_count(dst, num_nodes)
        aggregated = summed / Tensor(counts.reshape(-1, 1))
        out = self.linear_self(h) + self.linear_neigh(aggregated)
        if self.activation == "relu":
            out = out.relu()
        elif self.activation == "tanh":
            out = out.tanh()
        elif self.activation != "identity":
            raise ValueError(f"unknown activation {self.activation!r}")
        return out

    def _forward_data(self, h, src, dst, num_nodes, edge_weights,
                      rel_emb) -> np.ndarray:
        """Fused no-grad forward: gather → weight → scatter-mean → affine.

        Routed through the active tensor backend: on the default backend
        every kernel reproduces the exact op order of the autodiff path
        above, so inference outputs are bit-identical — just without
        per-op tensor wrapping and backward-closure bookkeeping.
        Accelerated backends swap in fused aggregation / blocked gemm /
        float32 compute within their documented tolerance.
        """
        B = get_backend()
        hd = data_of(h)
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        aggregated = B.sage_aggregate(
            hd, src, dst, num_nodes,
            edge_weights=(data_of(edge_weights)
                          if edge_weights is not None else None),
            rel_emb=data_of(rel_emb) if rel_emb is not None else None,
        )
        out = (B.matmul(hd, B.param(self.linear_self.weight.data))
               + B.param(self.linear_self.bias.data)
               + B.matmul(aggregated, B.param(self.linear_neigh.weight.data)))
        if self.activation == "relu":
            out = out * (out > 0)
        elif self.activation == "tanh":
            out = np.tanh(out)
        elif self.activation != "identity":
            raise ValueError(f"unknown activation {self.activation!r}")
        return out
