"""Batching many subgraphs into one disjoint union for a single GNN pass.

Encoding each prompt/query data graph separately would launch dozens of tiny
numpy kernels; packing them into one big graph with a ``graph_index`` per
node is the standard mini-batch trick (PyG's ``Batch``) and what the encoder
consumes.

Assembly is *arena-style*: total node/edge counts are computed first, the
output arrays are allocated (or borrowed from a :class:`BatchArena`) once,
and every subgraph is written into its slice in a single pass — no
intermediate per-subgraph lists, no ``np.concatenate`` of dozens of
fragments.  The original concatenate-based assembly survives as
:meth:`SubgraphBatch.from_subgraphs_concat`, the byte-identity reference
for the equivalence suite and the ``repro bench`` batching microbenchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.subgraph import Subgraph
from ..obs.tracing import span

__all__ = ["SubgraphBatch", "BatchArena"]


class BatchArena:
    """Reusable buffer pool for repeated :meth:`SubgraphBatch.from_subgraphs`.

    A serving loop assembles a fresh batch every tick; allocating the batch
    arrays anew each time is pure churn.  An arena keeps one growable flat
    buffer per field and hands out right-sized views, so the large
    destination arrays (features, edges, weights) are recycled across ticks
    — only the small derived index arrays (offsets, ``graph_index``) are
    still built per batch.  Buffers grow geometrically and never shrink.

    The returned batch arrays **alias arena memory**: a batch built from an
    arena is only valid until the next ``take``/assembly against the same
    arena.  That is exactly the micro-batch lifecycle (assemble → encode →
    discard); anything that must outlive the tick should copy.
    """

    def __init__(self):
        self._buffers: dict[str, np.ndarray] = {}

    def take(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A writable ``shape``/``dtype`` view backed by the pooled buffer."""
        dtype = np.dtype(dtype)
        size = 1
        for dim in shape:
            size *= int(dim)
        buffer = self._buffers.get(name)
        if buffer is None or buffer.dtype != dtype or buffer.size < size:
            grow = 2 * buffer.size if buffer is not None and buffer.dtype == dtype else 0
            buffer = np.empty(max(size, grow), dtype=dtype)
            self._buffers[name] = buffer
        return buffer[:size].reshape(shape)

    @property
    def allocated_bytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())


def _validate(subgraphs: list[Subgraph]) -> tuple[bool, bool]:
    if not subgraphs:
        raise ValueError("cannot batch zero subgraphs")
    any_weights = any(s.edge_weights is not None for s in subgraphs)
    any_rel_features = any(s.rel_features is not None for s in subgraphs)
    if any_rel_features and not all(s.rel_features is not None
                                    or s.num_edges == 0
                                    for s in subgraphs):
        raise ValueError(
            "cannot batch subgraphs with and without relation features")
    return any_weights, any_rel_features


@dataclass
class SubgraphBatch:
    """Disjoint union of subgraphs with bookkeeping arrays."""

    node_features: np.ndarray     # (total_nodes, d)
    src: np.ndarray               # global-local edge sources
    dst: np.ndarray
    rel: np.ndarray
    edge_weights: np.ndarray | None  # optional W^D per edge
    rel_features: np.ndarray | None  # (total_edges, d_rel) relation features
    graph_index: np.ndarray       # (total_nodes,) which subgraph a node is in
    edge_graph_index: np.ndarray  # (total_edges,)
    centers: list[np.ndarray]     # per-subgraph center ids (batch-local)
    num_graphs: int

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    @classmethod
    def from_subgraphs(cls, subgraphs: list[Subgraph],
                       arena: BatchArena | None = None) -> "SubgraphBatch":
        """Assemble a batch in one preallocated pass.

        ``arena`` supplies reusable buffers (serving hot path); without one,
        arrays are freshly allocated.  Either way the result is byte-
        identical to :meth:`from_subgraphs_concat`.
        """
        with span("batch_assembly"):
            return cls._from_subgraphs_impl(subgraphs, arena)

    @classmethod
    def _from_subgraphs_impl(cls, subgraphs: list[Subgraph],
                             arena: BatchArena | None) -> "SubgraphBatch":
        n = len(subgraphs)
        if n == 0:
            raise ValueError("cannot batch zero subgraphs")
        # Field collection as separate comprehensions: specialised list
        # bytecode plus ``fromiter``'s C loop beat a fused Python loop by a
        # wide margin at hundreds of subgraphs per serving tick.
        feats = [s.node_features for s in subgraphs]
        srcs = [s.src for s in subgraphs]
        dsts = [s.dst for s in subgraphs]
        rels = [s.rel for s in subgraphs]
        centers_raw = [s.centers for s in subgraphs]
        node_counts = np.fromiter((f.shape[0] for f in feats),
                                  dtype=np.int64, count=n)
        edge_counts = np.fromiter((e.shape[0] for e in srcs),
                                  dtype=np.int64, count=n)
        any_weights, any_rel_features = _validate(subgraphs)
        total_nodes = int(node_counts.sum())
        total_edges = int(edge_counts.sum())
        feat_dtypes = {f.dtype for f in feats}
        feat_dtype = (feat_dtypes.pop() if len(feat_dtypes) == 1
                      else np.result_type(*feat_dtypes))
        feat_dim = int(feats[0].shape[1])

        def alloc(name, shape, dtype):
            if arena is not None:
                return arena.take(name, shape, dtype)
            return np.empty(shape, dtype=dtype)

        # One kernel per field: concatenate the original arrays straight
        # into the (arena) destination, then add the per-graph node offsets
        # as a single vectorized `+= repeat(...)` — no per-subgraph
        # intermediate copies, no O(num_subgraphs) kernel launches.
        node_features = alloc("node_features", (total_nodes, feat_dim),
                              feat_dtype)
        np.concatenate(feats, axis=0, out=node_features)
        src = alloc("src", (total_edges,), np.int64)
        dst = alloc("dst", (total_edges,), np.int64)
        rel = alloc("rel", (total_edges,), np.int64)
        np.concatenate(srcs, out=src)
        np.concatenate(dsts, out=dst)
        np.concatenate(rels, out=rel)
        node_offsets = np.concatenate([[0], np.cumsum(node_counts)[:-1]])
        edge_offsets = np.repeat(node_offsets, edge_counts)
        src += edge_offsets
        dst += edge_offsets
        graph_ids = np.arange(n, dtype=np.int64)
        graph_index = np.repeat(graph_ids, node_counts)
        edge_graph_index = np.repeat(graph_ids, edge_counts)

        edge_weights = None
        if any_weights:
            edge_weights = alloc("edge_weights", (total_edges,), np.float64)
            np.concatenate(
                [s.edge_weights if s.edge_weights is not None
                 else np.broadcast_to(1.0, s.src.shape[0])
                 for s in subgraphs], out=edge_weights)
        rel_features = None
        if any_rel_features:
            carriers = [s.rel_features for s in subgraphs
                        if s.rel_features is not None]
            dtypes = {c.dtype for c in carriers}
            rel_feat_dtype = (dtypes.pop() if len(dtypes) == 1
                              else np.result_type(*dtypes))
            rel_features = alloc(
                "rel_features", (total_edges, int(carriers[0].shape[1])),
                rel_feat_dtype)
            np.concatenate(carriers, axis=0, out=rel_features)

        centers = [c + offset
                   for c, offset in zip(centers_raw, node_offsets.tolist())]
        return cls(
            node_features=node_features,
            src=src, dst=dst, rel=rel,
            edge_weights=edge_weights,
            rel_features=rel_features,
            graph_index=graph_index,
            edge_graph_index=edge_graph_index,
            centers=centers,
            num_graphs=n,
        )

    @classmethod
    def from_subgraphs_concat(cls, subgraphs: list[Subgraph]) -> "SubgraphBatch":
        """Original list-append + ``np.concatenate`` assembly.

        Kept as the behavioural reference: the equivalence suite asserts the
        arena path is byte-identical, and ``repro bench`` times the two
        against each other.
        """
        any_weights, any_rel_features = _validate(subgraphs)
        features, srcs, dsts, rels, weights, rel_feats = [], [], [], [], [], []
        graph_index, edge_graph_index, centers = [], [], []
        offset = 0
        for i, sub in enumerate(subgraphs):
            features.append(sub.node_features)
            srcs.append(sub.src + offset)
            dsts.append(sub.dst + offset)
            rels.append(sub.rel)
            if any_weights:
                if sub.edge_weights is not None:
                    weights.append(sub.edge_weights)
                else:
                    weights.append(np.ones(sub.num_edges))
            if any_rel_features and sub.rel_features is not None:
                rel_feats.append(sub.rel_features)
            graph_index.append(np.full(sub.num_nodes, i, dtype=np.int64))
            edge_graph_index.append(np.full(sub.num_edges, i, dtype=np.int64))
            centers.append(sub.centers + offset)
            offset += sub.num_nodes
        return cls(
            node_features=np.concatenate(features, axis=0),
            src=np.concatenate(srcs),
            dst=np.concatenate(dsts),
            rel=np.concatenate(rels),
            edge_weights=np.concatenate(weights) if any_weights else None,
            rel_features=(np.concatenate(rel_feats, axis=0)
                          if any_rel_features else None),
            graph_index=np.concatenate(graph_index),
            edge_graph_index=np.concatenate(edge_graph_index),
            centers=centers,
            num_graphs=len(subgraphs),
        )
