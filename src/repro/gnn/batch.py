"""Batching many subgraphs into one disjoint union for a single GNN pass.

Encoding each prompt/query data graph separately would launch dozens of tiny
numpy kernels; packing them into one big graph with a ``graph_index`` per
node is the standard mini-batch trick (PyG's ``Batch``) and what the encoder
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.subgraph import Subgraph

__all__ = ["SubgraphBatch"]


@dataclass
class SubgraphBatch:
    """Disjoint union of subgraphs with bookkeeping arrays."""

    node_features: np.ndarray     # (total_nodes, d)
    src: np.ndarray               # global-local edge sources
    dst: np.ndarray
    rel: np.ndarray
    edge_weights: np.ndarray | None  # optional W^D per edge
    rel_features: np.ndarray | None  # (total_edges, d_rel) relation features
    graph_index: np.ndarray       # (total_nodes,) which subgraph a node is in
    edge_graph_index: np.ndarray  # (total_edges,)
    centers: list[np.ndarray]     # per-subgraph center ids (batch-local)
    num_graphs: int

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    @classmethod
    def from_subgraphs(cls, subgraphs: list[Subgraph]) -> "SubgraphBatch":
        if not subgraphs:
            raise ValueError("cannot batch zero subgraphs")
        features, srcs, dsts, rels, weights, rel_feats = [], [], [], [], [], []
        graph_index, edge_graph_index, centers = [], [], []
        offset = 0
        any_weights = any(s.edge_weights is not None for s in subgraphs)
        any_rel_features = any(s.rel_features is not None for s in subgraphs)
        if any_rel_features and not all(s.rel_features is not None
                                        or s.num_edges == 0
                                        for s in subgraphs):
            raise ValueError(
                "cannot batch subgraphs with and without relation features")
        for i, sub in enumerate(subgraphs):
            features.append(sub.node_features)
            srcs.append(sub.src + offset)
            dsts.append(sub.dst + offset)
            rels.append(sub.rel)
            if any_weights:
                if sub.edge_weights is not None:
                    weights.append(sub.edge_weights)
                else:
                    weights.append(np.ones(sub.num_edges))
            if any_rel_features and sub.rel_features is not None:
                rel_feats.append(sub.rel_features)
            graph_index.append(np.full(sub.num_nodes, i, dtype=np.int64))
            edge_graph_index.append(np.full(sub.num_edges, i, dtype=np.int64))
            centers.append(sub.centers + offset)
            offset += sub.num_nodes
        return cls(
            node_features=np.concatenate(features, axis=0),
            src=np.concatenate(srcs),
            dst=np.concatenate(dsts),
            rel=np.concatenate(rels),
            edge_weights=np.concatenate(weights) if any_weights else None,
            rel_features=(np.concatenate(rel_feats, axis=0)
                          if any_rel_features else None),
            graph_index=np.concatenate(graph_index),
            edge_graph_index=np.concatenate(edge_graph_index),
            centers=centers,
            num_graphs=len(subgraphs),
        )
