"""Graph attention convolution (Veličković et al.) for the Fig. 4 ablation.

The paper compares GAT against GraphSAGE as the prompt-generator GNN
(Sec. V-D2): GAT learns edge importance through attention rather than the
reconstruction MLP, making it the natural "structure learning" alternative.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Parameter, Tensor
from ..nn import init as _init
from ..nn.backend import get_backend
from ..nn.tensor import is_grad_enabled
from .message_passing import data_of, scatter_sum, segment_softmax

__all__ = ["GATConv"]


class GATConv(Module):
    """Multi-head GAT layer with optional relation terms and edge weights.

    Per head: ``e_uv = LeakyReLU(a_s·Wh_u + a_d·Wh_v [+ a_r·r_uv])``
    followed by a softmax over each target's incoming edges; head outputs
    are concatenated (``out_dim`` must divide evenly).  External
    ``edge_weights`` multiply the attention coefficients of every head.
    """

    def __init__(self, in_dim: int, out_dim: int, activation: str = "relu",
                 num_heads: int = 1, negative_slope: float = 0.2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if num_heads < 1 or out_dim % num_heads != 0:
            raise ValueError("out_dim must be divisible by num_heads")
        rng = rng or np.random.default_rng(0)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.activation = activation
        self.negative_slope = negative_slope
        self.linear = Linear(in_dim, out_dim, bias=False, rng=rng)
        self.linear_self = Linear(in_dim, out_dim, rng=rng)
        self.attn_src = Parameter(_init.xavier_uniform(
            rng, out_dim, 1, shape=(num_heads, self.head_dim)))
        self.attn_dst = Parameter(_init.xavier_uniform(
            rng, out_dim, 1, shape=(num_heads, self.head_dim)))
        self.attn_rel = Parameter(_init.xavier_uniform(
            rng, in_dim, 1, shape=(num_heads, in_dim)))

    def forward(
        self,
        h: Tensor,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
        edge_weights: Tensor | np.ndarray | None = None,
        rel_emb: Tensor | None = None,
    ) -> Tensor:
        if not is_grad_enabled():
            return Tensor(self._forward_data(h, src, dst, num_nodes,
                                             edge_weights, rel_emb))
        transformed = self.linear(h)
        if edge_weights is not None and isinstance(edge_weights, np.ndarray):
            edge_weights = Tensor(edge_weights)

        head_outputs = []
        for head in range(self.num_heads):
            lo = head * self.head_dim
            hi = lo + self.head_dim
            head_h = transformed[:, lo:hi]
            scores_src = (head_h * self.attn_src[head]).sum(axis=-1)
            scores_dst = (head_h * self.attn_dst[head]).sum(axis=-1)
            edge_scores = (scores_src.gather_rows(src)
                           + scores_dst.gather_rows(dst))
            if rel_emb is not None:
                edge_scores = edge_scores + (
                    rel_emb * self.attn_rel[head]).sum(axis=-1)
            edge_scores = edge_scores.leaky_relu(self.negative_slope)
            alpha = segment_softmax(edge_scores, dst, num_nodes)
            if edge_weights is not None:
                alpha = alpha * edge_weights
            messages = head_h.gather_rows(src) * alpha.reshape(-1, 1)
            head_outputs.append(scatter_sum(messages, dst, num_nodes))
        aggregated = (head_outputs[0] if self.num_heads == 1
                      else Tensor.concatenate(head_outputs, axis=1))
        out = self.linear_self(h) + aggregated
        if self.activation == "relu":
            out = out.relu()
        elif self.activation == "tanh":
            out = out.tanh()
        elif self.activation != "identity":
            raise ValueError(f"unknown activation {self.activation!r}")
        return out

    def _forward_data(self, h, src, dst, num_nodes, edge_weights,
                      rel_emb) -> np.ndarray:
        """Fused no-grad forward via the active tensor backend.

        Bit-identical to the autodiff path on the default backend;
        accelerated backends replace the softmax/scatter kernels with
        fused sorted-segment variants within documented tolerance.
        """
        B = get_backend()
        hd = data_of(h)
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        rel_d = data_of(rel_emb) if rel_emb is not None else None
        weights_d = (data_of(edge_weights)
                     if edge_weights is not None else None)
        if rel_d is not None and rel_d.dtype != hd.dtype:
            rel_d = rel_d.astype(hd.dtype)
        if weights_d is not None and weights_d.dtype != hd.dtype:
            weights_d = weights_d.astype(hd.dtype)
        transformed = B.matmul(hd, B.param(self.linear.weight.data))

        head_outputs = []
        for head in range(self.num_heads):
            lo = head * self.head_dim
            hi = lo + self.head_dim
            head_h = transformed[:, lo:hi]
            scores_src = (head_h * B.param(self.attn_src.data[head])
                          ).sum(axis=-1)
            scores_dst = (head_h * B.param(self.attn_dst.data[head])
                          ).sum(axis=-1)
            edge_scores = scores_src[src] + scores_dst[dst]
            if rel_d is not None:
                edge_scores = edge_scores + (
                    rel_d * B.param(self.attn_rel.data[head])).sum(axis=-1)
            slope = np.where(edge_scores > 0, 1.0, self.negative_slope
                             ).astype(edge_scores.dtype, copy=False)
            edge_scores = edge_scores * slope
            alpha = B.segment_softmax(edge_scores, dst, num_nodes)
            if weights_d is not None:
                alpha = alpha * weights_d
            head_outputs.append(
                B.weighted_gather_scatter(head_h, src, alpha, dst,
                                          num_nodes))
        aggregated = (head_outputs[0] if self.num_heads == 1
                      else np.concatenate(head_outputs, axis=1))
        out = ((B.matmul(hd, B.param(self.linear_self.weight.data))
                + B.param(self.linear_self.bias.data)) + aggregated)
        if self.activation == "relu":
            out = out * (out > 0)
        elif self.activation == "tanh":
            out = np.tanh(out)
        elif self.activation != "identity":
            raise ValueError(f"unknown activation {self.activation!r}")
        return out
