"""Attention GNN over the bipartite task graph ``G^T`` (Eq. 10).

The task graph connects data nodes (prompts + queries) with label nodes.
Each edge carries two attributes — prompt vs. query, and T/F class match
(Sec. III-B) — embedded and injected into both the attention logits and the
messages, "the attention-based graph model following Prodigy" (Sec. V-A4).

Message passing runs over both edge directions so label embeddings aggregate
their connected prompts, and query embeddings absorb label context.
"""

from __future__ import annotations

import numpy as np

from ..nn import Embedding, LayerNorm, Linear, Module, Parameter, Tensor
from ..nn.backend import get_backend
from ..nn.tensor import is_grad_enabled
from .message_passing import data_of, scatter_sum, segment_softmax

__all__ = ["TaskGraphGNN", "EDGE_ATTR_PROMPT_TRUE", "EDGE_ATTR_PROMPT_FALSE",
           "EDGE_ATTR_QUERY", "NUM_EDGE_ATTRS"]

EDGE_ATTR_PROMPT_TRUE = 0   # prompt→label edge, label matches ("T")
EDGE_ATTR_PROMPT_FALSE = 1  # prompt→label edge, label differs ("F")
EDGE_ATTR_QUERY = 2         # query→label edge, label unknown ("?")
NUM_EDGE_ATTRS = 3


class _TaskAttentionLayer(Module):
    """One residual attention layer over the task graph."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.dim = dim
        self.query_proj = Linear(dim, dim, bias=False, rng=rng)
        self.key_proj = Linear(dim, dim, bias=False, rng=rng)
        self.value_proj = Linear(dim, dim, bias=False, rng=rng)
        # Zero-initialised output projection: the layer starts as a
        # (normalised) identity, so the untrained head already matches the
        # nearest-centroid geometry of the label initialisation and only
        # learns beneficial perturbations.
        self.out_proj = Linear(dim, dim, rng=rng)
        self.out_proj.weight.data[:] = 0.0
        self.attr_embedding = Embedding(NUM_EDGE_ATTRS, dim, rng=rng)
        self.attr_bias = Parameter(np.zeros(NUM_EDGE_ATTRS))
        self.norm = LayerNorm(dim)

    def forward(self, h: Tensor, src: np.ndarray, dst: np.ndarray,
                attr: np.ndarray, num_nodes: int) -> Tensor:
        if not is_grad_enabled():
            return Tensor(self._forward_data(h, src, dst, attr, num_nodes))
        queries = self.query_proj(h)
        keys = self.key_proj(h)
        values = self.value_proj(h)
        scale = 1.0 / np.sqrt(self.dim)
        logits = (
            (queries.gather_rows(dst) * keys.gather_rows(src)).sum(axis=-1)
            * scale
            + self.attr_bias.gather_rows(attr)
        )
        alpha = segment_softmax(logits, dst, num_nodes)
        messages = values.gather_rows(src) + self.attr_embedding(attr)
        weighted = messages * alpha.reshape(-1, 1)
        aggregated = scatter_sum(weighted, dst, num_nodes)
        return self.norm(h + self.out_proj(aggregated))

    def _forward_data(self, h, src, dst, attr, num_nodes) -> np.ndarray:
        """Fused no-grad forward — bit-identical to the autodiff path.

        The per-query prediction step runs this layer once per task-graph
        pass; fusing it keeps serving latency dominated by matmuls instead
        of graph bookkeeping.
        """
        B = get_backend()
        hd = data_of(h)
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        attr = np.asarray(attr, dtype=np.int64)
        queries = B.matmul(hd, B.param(self.query_proj.weight.data))
        keys = B.matmul(hd, B.param(self.key_proj.weight.data))
        values = B.matmul(hd, B.param(self.value_proj.weight.data))
        scale = 1.0 / np.sqrt(self.dim)
        logits = ((queries[dst] * keys[src]).sum(axis=-1) * scale
                  + B.param(self.attr_bias.data)[attr])
        alpha = B.segment_softmax(logits, dst, num_nodes)
        messages = values[src] + B.param(self.attr_embedding.weight.data)[attr]
        aggregated = B.scatter_weighted(messages, alpha, dst, num_nodes)
        out = (B.matmul(aggregated, B.param(self.out_proj.weight.data))
               + B.param(self.out_proj.bias.data))
        x = hd + out
        # LayerNorm, mirroring nn.LayerNorm op-for-op (sum/len mean, **0.5).
        mu = x.sum(axis=-1, keepdims=True) / float(x.shape[-1])
        centered = x - mu
        var = ((centered * centered).sum(axis=-1, keepdims=True)
               / float(x.shape[-1]))
        normed = centered / (var + self.norm.eps) ** 0.5
        return (normed * B.param(self.norm.gamma.data)
                + B.param(self.norm.beta.data))


class TaskGraphGNN(Module):
    """Stack of task-graph attention layers producing ``H`` (Eq. 10)."""

    def __init__(self, dim: int, num_layers: int = 2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one task-graph layer")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self._modules_list = [_TaskAttentionLayer(dim, rng)
                              for _ in range(num_layers)]

    def forward(self, h: Tensor, src: np.ndarray, dst: np.ndarray,
                attr: np.ndarray, num_nodes: int) -> Tensor:
        # Symmetrise: each edge acts in both directions with the same attr.
        src_sym = np.concatenate([src, dst])
        dst_sym = np.concatenate([dst, src])
        attr_sym = np.concatenate([attr, attr])
        for layer in self._modules_list:
            h = layer(h, src_sym, dst_sym, attr_sym, num_nodes)
        return h
