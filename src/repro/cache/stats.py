"""Uniform usage counters for the Augmenter cache policies.

Every cache policy (LFU/LRU/FIFO) tracks the same four events so the
Prompt Augmenter — and the serving layer's per-session ledgers — can report
cache behaviour without knowing which policy is installed:

* ``hits`` — successful ``get``/``touch`` lookups,
* ``misses`` — lookups of absent keys,
* ``insertions`` — ``put`` calls that added a *new* key,
* ``evictions`` — entries displaced to make room.

``clear()`` resets the counters together with the contents, so one episode's
statistics never leak into the next evaluation run.

``stale_evictions`` is owned by a layer above the policies: the Prompt
Augmenter counts entries it dropped because the *source graph mutated*
(cache-epoch invalidation, not capacity pressure) and merges the counter
into its snapshot; the raw policies always report 0.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats"]


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a cache's size and lifetime usage counters."""

    size: int
    capacity: int
    hits: int
    misses: int
    insertions: int
    evictions: int
    stale_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit; 0.0 before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0
