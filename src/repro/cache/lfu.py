"""O(1) Least-Frequently-Used cache (Mátáni, Shah & Mitra — paper ref [51]).

The Prompt Augmenter (Sec. IV-C) stores online test samples with their
pseudo-labels in a bounded cache ``C`` and evicts with LFU: retrieval hits
bump an entry's frequency, so prompts that keep being similar to incoming
queries survive while stale ones fall out.

The classic O(1) construction keeps a doubly-linked list of *frequency
buckets*, each holding the keys that share one access count; eviction pops
from the head bucket (lowest frequency, FIFO within the bucket for ties).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator

from .stats import CacheStats

__all__ = ["LFUCache"]


class _FrequencyBucket:
    """Doubly-linked node holding all keys with one access frequency."""

    __slots__ = ("frequency", "keys", "prev", "next")

    def __init__(self, frequency: int):
        self.frequency = frequency
        self.keys: "OrderedDict[Hashable, None]" = OrderedDict()
        self.prev: "_FrequencyBucket | None" = None
        self.next: "_FrequencyBucket | None" = None


class LFUCache:
    """Bounded mapping with least-frequently-used eviction in O(1).

    ``put`` inserts at frequency 1 (evicting the LFU entry when full),
    ``get``/``touch`` increment an entry's frequency.  Iteration yields
    ``(key, value)`` pairs in ascending frequency order.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._values: dict[Hashable, Any] = {}
        self._bucket_of: dict[Hashable, _FrequencyBucket] = {}
        # Sentinel head simplifies bucket insertion/removal.
        self._head = _FrequencyBucket(0)
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Bucket list maintenance
    # ------------------------------------------------------------------
    def _insert_bucket_after(self, bucket: _FrequencyBucket,
                             anchor: _FrequencyBucket) -> None:
        bucket.prev = anchor
        bucket.next = anchor.next
        if anchor.next is not None:
            anchor.next.prev = bucket
        anchor.next = bucket

    def _remove_bucket(self, bucket: _FrequencyBucket) -> None:
        if bucket.prev is not None:
            bucket.prev.next = bucket.next
        if bucket.next is not None:
            bucket.next.prev = bucket.prev

    def _bump(self, key: Hashable) -> None:
        """Move ``key`` from its bucket to the (frequency + 1) bucket."""
        bucket = self._bucket_of[key]
        target_freq = bucket.frequency + 1
        nxt = bucket.next
        if nxt is None or nxt.frequency != target_freq:
            nxt = _FrequencyBucket(target_freq)
            self._insert_bucket_after(nxt, bucket)
        del bucket.keys[key]
        nxt.keys[key] = None
        self._bucket_of[key] = nxt
        if not bucket.keys:
            self._remove_bucket(bucket)

    # ------------------------------------------------------------------
    # Mapping API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._values

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the value for ``key`` and count the access."""
        if key not in self._values:
            self._misses += 1
            return default
        self._hits += 1
        self._bump(key)
        return self._values[key]

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Return the value without affecting frequencies."""
        return self._values.get(key, default)

    def touch(self, key: Hashable) -> bool:
        """Record a hit on ``key`` (the Augmenter's similarity-hit update)."""
        if key not in self._values:
            self._misses += 1
            return False
        self._hits += 1
        self._bump(key)
        return True

    def frequency(self, key: Hashable) -> int:
        """Current access count of ``key`` (0 when absent)."""
        bucket = self._bucket_of.get(key)
        return bucket.frequency if bucket is not None else 0

    def put(self, key: Hashable, value: Any) -> Hashable | None:
        """Insert or update ``key``; returns the evicted key, if any."""
        if key in self._values:
            self._values[key] = value
            self._bump(key)
            return None
        evicted = None
        if len(self._values) >= self.capacity:
            evicted = self._evict()
            self._evictions += 1
        self._insertions += 1
        first = self._head.next
        if first is None or first.frequency != 1:
            first = _FrequencyBucket(1)
            self._insert_bucket_after(first, self._head)
        first.keys[key] = None
        self._bucket_of[key] = first
        self._values[key] = value
        return evicted

    def _evict(self) -> Hashable:
        bucket = self._head.next
        assert bucket is not None and bucket.keys, "evict called on empty cache"
        key, _ = bucket.keys.popitem(last=False)  # FIFO among ties
        if not bucket.keys:
            self._remove_bucket(bucket)
        del self._values[key]
        del self._bucket_of[key]
        return key

    def items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate ``(key, value)`` in ascending frequency order."""
        bucket = self._head.next
        while bucket is not None:
            for key in bucket.keys:
                yield key, self._values[key]
            bucket = bucket.next

    def values(self) -> Iterator[Any]:
        for _, value in self.items():
            yield value

    def keys(self) -> Iterator[Hashable]:
        for key, _ in self.items():
            yield key

    def stats(self) -> CacheStats:
        """Size plus lifetime hit/miss/insert/evict counters."""
        return CacheStats(size=len(self), capacity=self.capacity,
                          hits=self._hits, misses=self._misses,
                          insertions=self._insertions,
                          evictions=self._evictions)

    def clear(self) -> None:
        self._values.clear()
        self._bucket_of.clear()
        self._head.next = None
        self._hits = self._misses = 0
        self._insertions = self._evictions = 0

    def __repr__(self) -> str:
        return f"LFUCache(capacity={self.capacity}, size={len(self)})"
