"""Alternative cache replacement policies for the Prompt Augmenter.

The paper's Further Discussion notes "we can replace the cache in the
prompt augmenter with other caching solutions"; these are the two natural
alternatives to LFU, sharing its interface so the Augmenter can swap them
via ``GraphPrompterConfig.cache_policy``:

* :class:`LRUCache` — least-recently-used: retrieval hits refresh recency
  instead of frequency.
* :class:`FIFOCache` — plain insertion-order eviction: hits are ignored, so
  the cache is a sliding window over recent pseudo-labelled queries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator

from .stats import CacheStats

__all__ = ["LRUCache", "FIFOCache"]


class _StatCounters:
    """Mixin holding the shared hit/miss/insert/evict counters."""

    capacity: int

    def _reset_counters(self) -> None:
        self._stat_hits = 0
        self._stat_misses = 0
        self._stat_insertions = 0
        self._stat_evictions = 0

    def stats(self) -> CacheStats:
        """Size plus lifetime hit/miss/insert/evict counters."""
        return CacheStats(size=len(self), capacity=self.capacity,
                          hits=self._stat_hits, misses=self._stat_misses,
                          insertions=self._stat_insertions,
                          evictions=self._stat_evictions)

    def __len__(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError


class LRUCache(_StatCounters):
    """Bounded mapping with least-recently-used eviction."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits: dict[Hashable, int] = {}
        self._reset_counters()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        if key not in self._data:
            self._stat_misses += 1
            return default
        self._data.move_to_end(key)
        self._hits[key] = self._hits.get(key, 0) + 1
        self._stat_hits += 1
        return self._data[key]

    def peek(self, key: Hashable, default: Any = None) -> Any:
        return self._data.get(key, default)

    def touch(self, key: Hashable) -> bool:
        if key not in self._data:
            self._stat_misses += 1
            return False
        self._data.move_to_end(key)
        self._hits[key] = self._hits.get(key, 0) + 1
        self._stat_hits += 1
        return True

    def frequency(self, key: Hashable) -> int:
        """Access count (for parity with :class:`LFUCache` introspection)."""
        if key not in self._data:
            return 0
        return self._hits.get(key, 0) + 1

    def put(self, key: Hashable, value: Any) -> Hashable | None:
        evicted = None
        if key in self._data:
            self._data.move_to_end(key)
        else:
            if len(self._data) >= self.capacity:
                evicted, _ = self._data.popitem(last=False)
                self._hits.pop(evicted, None)
                self._stat_evictions += 1
            self._stat_insertions += 1
        self._data[key] = value
        return evicted

    def items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate ``(key, value)`` from least- to most-recently used."""
        return iter(list(self._data.items()))

    def keys(self) -> Iterator[Hashable]:
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        for _, value in self.items():
            yield value

    def clear(self) -> None:
        self._data.clear()
        self._hits.clear()
        self._reset_counters()

    def __repr__(self) -> str:
        return f"LRUCache(capacity={self.capacity}, size={len(self)})"


class FIFOCache(_StatCounters):
    """Bounded mapping with first-in-first-out eviction (hits ignored)."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits: dict[Hashable, int] = {}
        self._reset_counters()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        if key in self._data:
            self._hits[key] = self._hits.get(key, 0) + 1
            self._stat_hits += 1
        else:
            self._stat_misses += 1
        return self._data.get(key, default)

    def peek(self, key: Hashable, default: Any = None) -> Any:
        return self._data.get(key, default)

    def touch(self, key: Hashable) -> bool:
        if key not in self._data:
            self._stat_misses += 1
            return False
        self._hits[key] = self._hits.get(key, 0) + 1
        self._stat_hits += 1
        return True

    def frequency(self, key: Hashable) -> int:
        if key not in self._data:
            return 0
        return self._hits.get(key, 0) + 1

    def put(self, key: Hashable, value: Any) -> Hashable | None:
        evicted = None
        if key in self._data:
            self._data[key] = value  # update in place, keep insertion slot
            return None
        if len(self._data) >= self.capacity:
            evicted, _ = self._data.popitem(last=False)
            self._hits.pop(evicted, None)
            self._stat_evictions += 1
        self._stat_insertions += 1
        self._data[key] = value
        return evicted

    def items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate ``(key, value)`` in insertion order (oldest first)."""
        return iter(list(self._data.items()))

    def keys(self) -> Iterator[Hashable]:
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        for _, value in self.items():
            yield value

    def clear(self) -> None:
        self._data.clear()
        self._hits.clear()
        self._reset_counters()

    def __repr__(self) -> str:
        return f"FIFOCache(capacity={self.capacity}, size={len(self)})"
