"""Cache replacement substrate for the Prompt Augmenter."""

from .lfu import LFUCache
from .policies import FIFOCache, LRUCache

CACHE_POLICIES = {
    "lfu": LFUCache,
    "lru": LRUCache,
    "fifo": FIFOCache,
}


def make_cache(policy: str, capacity: int):
    """Build a cache by policy name (``lfu`` is the paper's choice)."""
    try:
        cache_cls = CACHE_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown cache policy {policy!r}; "
            f"available: {sorted(CACHE_POLICIES)}"
        ) from None
    return cache_cls(capacity)


__all__ = ["LFUCache", "LRUCache", "FIFOCache", "CACHE_POLICIES",
           "make_cache"]
