"""Cache replacement substrate for the Prompt Augmenter.

Every policy shares one interface — ``put``/``get``/``peek``/``touch``/
``frequency``/``items``/``clear`` plus a :meth:`stats` snapshot of its
hit/miss/insert/evict counters — so the Augmenter and the serving layer's
per-session ledgers work against any of them.
"""

from .lfu import LFUCache
from .policies import FIFOCache, LRUCache
from .stats import CacheStats

CACHE_POLICIES = {
    "lfu": LFUCache,
    "lru": LRUCache,
    "fifo": FIFOCache,
}


def make_cache(policy: str, capacity: int):
    """Build a cache by policy name (``lfu`` is the paper's choice)."""
    try:
        cache_cls = CACHE_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown cache policy {policy!r}; "
            f"available: {sorted(CACHE_POLICIES)}"
        ) from None
    return cache_cls(capacity)


__all__ = ["LFUCache", "LRUCache", "FIFOCache", "CacheStats",
           "CACHE_POLICIES", "make_cache"]
