"""Session manifests: the state needed to re-open a session after restart.

A live session's heavy state (encoded candidate pool, Augmenter cache) is
*derived* — recomputable from the episode definition over the current
graph.  What recovery actually needs per session is the small durable
part: the session id, its owner tenant and priority class, the shot count,
the materialized episode (way classes + candidate/query datapoints +
labels), the graph epoch it was opened under, and the order sessions were
opened in (server RNG draws happen per open, so re-opening in the original
order reproduces the original RNG stream).

:class:`SessionManifestStore` keeps one JSON file per session under a
directory, each written atomically, so a crash mid-open or mid-close
leaves every other session's manifest intact.  Restart loads them all,
sorted by ``open_index``, and re-opens sessions against the recovered
graph — the pool re-encode then *re-derives* the heavy state, which by the
bit-identity contract matches what an uninterrupted run would serve.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from .atomic import CorruptArtifactError, atomic_write

__all__ = ["SessionManifest", "SessionManifestStore",
           "episode_to_jsonable", "episode_from_jsonable"]


def _datapoint_to_jsonable(datapoint) -> dict:
    """Serialize a Node/EdgeInput without importing the graph package."""
    if hasattr(datapoint, "head"):
        return {"kind": "edge", "head": int(datapoint.head),
                "tail": int(datapoint.tail),
                "relation": None if datapoint.relation is None
                else int(datapoint.relation)}
    return {"kind": "node", "node": int(datapoint.node)}


def _datapoint_from_jsonable(payload: dict):
    from ..graph.datapoints import EdgeInput, NodeInput

    if payload["kind"] == "edge":
        return EdgeInput(head=payload["head"], tail=payload["tail"],
                         relation=payload["relation"])
    return NodeInput(node=payload["node"])


def episode_to_jsonable(episode) -> dict:
    """A materialized :class:`~repro.core.episodes.Episode` as plain data."""
    return {
        "way_classes": np.asarray(episode.way_classes).tolist(),
        "candidates": [_datapoint_to_jsonable(d)
                       for d in episode.candidates],
        "candidate_labels": np.asarray(episode.candidate_labels).tolist(),
        "queries": [_datapoint_to_jsonable(d) for d in episode.queries],
        "query_labels": np.asarray(episode.query_labels).tolist(),
    }


def episode_from_jsonable(payload: dict):
    """Inverse of :func:`episode_to_jsonable`."""
    from ..core.episodes import Episode

    return Episode(
        way_classes=np.asarray(payload["way_classes"], dtype=np.int64),
        candidates=[_datapoint_from_jsonable(d)
                    for d in payload["candidates"]],
        candidate_labels=np.asarray(payload["candidate_labels"],
                                    dtype=np.int64),
        queries=[_datapoint_from_jsonable(d) for d in payload["queries"]],
        query_labels=np.asarray(payload["query_labels"], dtype=np.int64),
    )


@dataclass(frozen=True)
class SessionManifest:
    """Durable description of one open session."""

    session_id: str
    open_index: int
    shots: int
    graph_version: int
    episode: dict
    tenant_id: str | None = None
    priority: int | None = None

    def to_jsonable(self) -> dict:
        return {
            "session_id": self.session_id,
            "open_index": self.open_index,
            "shots": self.shots,
            "graph_version": self.graph_version,
            "episode": self.episode,
            "tenant_id": self.tenant_id,
            "priority": self.priority,
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "SessionManifest":
        return cls(
            session_id=payload["session_id"],
            open_index=int(payload["open_index"]),
            shots=int(payload["shots"]),
            graph_version=int(payload["graph_version"]),
            episode=payload["episode"],
            tenant_id=payload.get("tenant_id"),
            priority=payload.get("priority"),
        )


class SessionManifestStore:
    """One atomically-written JSON manifest per session, in a directory."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, session_id: str) -> str:
        # Session ids may contain path-hostile characters; hex-encode so
        # each maps to exactly one flat filename.
        return os.path.join(self.directory,
                            f"session-{session_id.encode().hex()}.json")

    def write(self, manifest: SessionManifest) -> None:
        with atomic_write(self._path(manifest.session_id)) as handle:
            json.dump(manifest.to_jsonable(), handle)

    def remove(self, session_id: str) -> None:
        try:
            os.remove(self._path(session_id))
        except FileNotFoundError:
            pass

    def load_all(self) -> list[SessionManifest]:
        """Every manifest, in original open order."""
        manifests = []
        for entry in sorted(os.listdir(self.directory)):
            if not (entry.startswith("session-")
                    and entry.endswith(".json")):
                continue
            path = os.path.join(self.directory, entry)
            try:
                with open(path) as handle:
                    manifests.append(
                        SessionManifest.from_jsonable(json.load(handle)))
            except (ValueError, KeyError, TypeError) as error:
                raise CorruptArtifactError(
                    f"session manifest {path} is unreadable: "
                    f"{type(error).__name__}: {error}") from error
        manifests.sort(key=lambda m: m.open_index)
        return manifests

    def next_open_index(self) -> int:
        manifests = self.load_all()
        return manifests[-1].open_index + 1 if manifests else 0
