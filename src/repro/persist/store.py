"""PersistentStore: one directory holding a server's durable state.

Layout (all writes atomic, all reads checksum-verified)::

    <dir>/snapshot.npz   — latest graph snapshot (+ optional owner map)
    <dir>/wal.jsonl      — GraphUpdate log since (and across) snapshots
    <dir>/sessions/      — one manifest per open session

The contract the serving layer builds on: ``log_update`` is called (and
fsyncs) *before* the update is applied in memory, ``save_snapshot`` is
called only when the in-memory graph is quiescent, and ``recover`` returns
``snapshot + ordered replay`` — a graph whose reads are bit-identical to
the crashed process's live state.  Several replicas may share one store
read-only; exactly one writer (the primary, or the
:class:`~repro.serving.replicaset.ReplicaSet` front) logs updates.

Observability: appends, snapshot writes, and recovery (records replayed,
wall time) are counted in the ambient metrics registry.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..graph.delta import GraphUpdate
from ..graph.graph import Graph
from ..obs.metrics import get_registry
from .atomic import CorruptArtifactError
from .manifest import SessionManifestStore
from .snapshot import load_snapshot, write_snapshot
from .wal import WriteAheadLog

__all__ = ["PersistentStore"]


class PersistentStore:
    """Snapshot + WAL + session manifests under one directory."""

    def __init__(self, directory: str, registry=None):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.snapshot_path = os.path.join(directory, "snapshot.npz")
        self.wal = WriteAheadLog(os.path.join(directory, "wal.jsonl"))
        self.sessions = SessionManifestStore(
            os.path.join(directory, "sessions"))
        self.obs = registry if registry is not None else get_registry()
        self._m_appends = self.obs.counter(
            "repro_wal_appends_total",
            "GraphUpdate records durably appended to the WAL.")
        self._m_snapshots = self.obs.counter(
            "repro_snapshot_writes_total",
            "Graph snapshots written (atomic, checksummed).")
        self._m_replayed = self.obs.counter(
            "repro_recovery_replayed_total",
            "WAL records applied during recovery replays.")
        self._m_recovery_s = self.obs.histogram(
            "repro_recovery_seconds",
            "Wall time of snapshot-load + WAL-replay recoveries.")

    # ------------------------------------------------------------------
    def has_snapshot(self) -> bool:
        return os.path.exists(self.snapshot_path)

    def initialize(self, graph: Graph,
                   owner: np.ndarray | None = None) -> None:
        """Write the baseline snapshot once (no-op when one exists)."""
        if not self.has_snapshot():
            self.save_snapshot(graph, owner=owner)

    def log_update(self, update: GraphUpdate, base_version: int) -> int:
        """Durably append one update record; call *before* applying."""
        seq = self.wal.append(update, base_version)
        self._m_appends.inc()
        return seq

    def save_snapshot(self, graph: Graph,
                      owner: np.ndarray | None = None) -> int:
        """Checkpoint the (quiescent) graph; compacts the WAL behind it.

        Every update the graph has absorbed is in the snapshot, so log
        records below the snapshot's version are dead weight and are
        dropped atomically.  Returns the snapshot's graph version.
        """
        version = write_snapshot(self.snapshot_path, graph,
                                 wal_seq=self.wal._next_seq, owner=owner)
        self.wal.compact(min_base_version=graph.version)
        self._m_snapshots.inc()
        return version

    # ------------------------------------------------------------------
    def load_graph(self) -> tuple[Graph, np.ndarray | None]:
        """Snapshot only, no replay — the base a sharded restore partitions
        before routing the replay through graph *and* shard store."""
        if not self.has_snapshot():
            raise CorruptArtifactError(
                f"persistent store {self.directory} has no snapshot — "
                f"initialize() it from a seed graph first")
        graph, _, owner = load_snapshot(self.snapshot_path)
        return graph, owner

    def replay_records(self, graph: Graph, apply=None) -> int:
        """Replay the WAL onto ``graph`` in order; returns records applied.

        ``apply`` optionally intercepts each replayed update —
        ``apply(graph, update)`` — so callers that must mirror the replay
        into a second structure (the sharded store) see every mutation in
        order; default is ``graph.apply_updates``.  Replay is idempotent:
        records the graph has already absorbed (``base_version`` below the
        graph's version) are skipped, so duplicate delivery — or replaying
        over a snapshot that already contains a prefix of the log — is a
        no-op for those records.
        """
        replayed = 0
        for record in self.wal.records():
            if record.base_version < graph.version:
                continue
            if record.base_version > graph.version:
                raise CorruptArtifactError(
                    f"WAL record seq={record.seq} expects graph version "
                    f"{record.base_version}; graph is at {graph.version}")
            if apply is None:
                graph.apply_updates(record.update)
            else:
                apply(graph, record.update)
            replayed += 1
        self._m_replayed.inc(replayed)
        return replayed

    def recover(self, apply=None) -> tuple[Graph, np.ndarray | None, int]:
        """Snapshot-load + WAL-replay; returns (graph, owner, replayed)."""
        start = time.perf_counter()
        graph, owner = self.load_graph()
        replayed = self.replay_records(graph, apply=apply)
        self.record_recovery_seconds(time.perf_counter() - start)
        return graph, owner, replayed

    def record_recovery_seconds(self, seconds: float) -> None:
        """Observe one recovery's wall time (used by server-level restores
        that orchestrate load + replay themselves)."""
        self._m_recovery_s.observe(seconds)
