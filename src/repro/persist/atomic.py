"""Atomic file writes and artifact checksums (crash-safe foundations).

Every durable artifact in this repo — graph snapshots, WAL segments,
session manifests, model weights, the perf harness's committed baseline —
goes to disk through :func:`atomic_write`: the bytes land in a temp file in
the destination's directory, are fsynced, and then replace the destination
with one ``os.replace``.  A reader therefore only ever observes the old
complete file or the new complete file, never a truncation — the property
the crash-recovery tier (and CI, which diffs committed baselines) is built
on.

:class:`CorruptArtifactError` is the typed failure every loader raises when
a checksum or container check fails, so callers can distinguish "artifact
damaged on disk" from programming errors.  It lives here (dependency-free)
so :mod:`repro.nn.serialization` and the snapshot loader can share it
without import cycles.
"""

from __future__ import annotations

import contextlib
import os
import zlib

import numpy as np

__all__ = [
    "CorruptArtifactError",
    "atomic_write",
    "checksum_arrays",
    "fsync_directory",
]


class CorruptArtifactError(RuntimeError):
    """A persisted artifact failed its integrity check.

    Raised instead of the raw numpy/zip/pickle traceback when a snapshot,
    WAL segment, or ``.npz`` state file is truncated or bit-flipped, so
    recovery code can fall back (older snapshot, shorter replay) rather
    than crash on an undiagnosable ``BadZipFile``.
    """


@contextlib.contextmanager
def atomic_write(path: str, mode: str = "w"):
    """Write ``path`` atomically: temp file + fsync + ``os.replace``.

    Yields the open temp-file handle.  On clean exit the temp file is
    fsynced and renamed over ``path`` (same-directory, so the replace is a
    same-filesystem atomic operation); on error the temp file is removed
    and the destination is untouched.  ``mode`` is ``"w"`` or ``"wb"``.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    temp_path = f"{path}.tmp.{os.getpid()}"
    handle = open(temp_path, mode)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        with contextlib.suppress(OSError):
            os.remove(temp_path)
        raise
    handle.close()
    os.replace(temp_path, path)


def fsync_directory(path: str) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)


def checksum_arrays(arrays: dict) -> int:
    """CRC32 over a named-array mapping (order-independent, shape-aware).

    The digest covers each array's name, dtype, shape, and raw bytes, in
    sorted-name order — so any truncation, bit flip, renamed key, or
    reshaped payload changes it.  Used by both the graph snapshot and the
    model-state ``.npz`` writers; stored beside the data and verified on
    load (mismatch → :class:`CorruptArtifactError`).
    """
    digest = 0
    for name in sorted(arrays):
        array = arrays[name]
        header = f"{name}:{array.dtype.str}:{array.shape};".encode()
        digest = zlib.crc32(header, digest)
        digest = zlib.crc32(np.ascontiguousarray(array).tobytes(), digest)
    return digest
