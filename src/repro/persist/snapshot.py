"""Versioned, checksummed graph snapshots (atomic ``.npz`` on disk).

A snapshot is the full edge-id-space state of one
:class:`~repro.graph.graph.Graph` — ``src``/``dst``/``rel`` *including
tombstoned slots* plus the ``edge_alive`` mask — together with node
features/labels, relation features, the graph's epoch ``version``, and
optionally the shard owner map.  Persisting the whole id space (not just
live edges) is load-bearing: datapoints and datasets reference edges by
stable id, so a snapshot that renumbered ids would dangle every
edge-classification episode that survives the restart.

Restore rebuilds the graph and re-marks it mutated (when its version is
nonzero), so the lazily built adjacency comes up as a
:class:`~repro.graph.delta.DeltaAdjacency` over the live edge list — by
the canonical-order contract that reads bit-identically to the overlay
state the crashed process was serving from.

Integrity: every array (plus the scalar metadata) is folded into one CRC32
(:func:`~repro.persist.checksum_arrays`) stored inside the archive; the
loader recomputes and compares, raising
:class:`~repro.persist.CorruptArtifactError` on mismatch — and wraps the
zip/format errors a truncated file produces in the same typed error.  The
write goes through :func:`~repro.persist.atomic_write`, so a crash during
snapshotting leaves the previous snapshot intact.
"""

from __future__ import annotations

import io
import zipfile

import numpy as np

from ..graph.graph import Graph
from .atomic import CorruptArtifactError, atomic_write, checksum_arrays

__all__ = ["SNAPSHOT_SCHEMA", "write_snapshot", "load_snapshot"]

#: Bumped when the array layout changes; loaders reject unknown schemas.
SNAPSHOT_SCHEMA = 1

_CHECKSUM_KEY = "__checksum__"


def _snapshot_arrays(graph: Graph, wal_seq: int,
                     owner: np.ndarray | None) -> dict:
    alive = graph.edge_alive
    arrays = {
        "schema": np.array([SNAPSHOT_SCHEMA], dtype=np.int64),
        "meta": np.array([graph.num_nodes, graph.num_relations,
                          graph.version, int(wal_seq)], dtype=np.int64),
        "name": np.frombuffer(graph.name.encode(), dtype=np.uint8).copy(),
        "src": graph.src,
        "dst": graph.dst,
        "rel": graph.rel,
        "edge_alive": (np.ones(0, dtype=bool) if alive is None
                       else alive),
        "node_features": graph.node_features,
    }
    if graph.node_labels is not None:
        arrays["node_labels"] = graph.node_labels
    if graph.relation_features is not None:
        arrays["relation_features"] = graph.relation_features
    if owner is not None:
        arrays["owner"] = np.asarray(owner, dtype=np.int64)
    return arrays


def write_snapshot(path: str, graph: Graph, wal_seq: int = 0,
                   owner: np.ndarray | None = None) -> int:
    """Write a checksummed snapshot of ``graph`` atomically to ``path``.

    ``wal_seq`` records the WAL high-water mark whose effects the snapshot
    contains (the next log sequence number at snapshot time); ``owner``
    optionally persists the shard owner map so a sharded restart rebuilds
    the same partition.  Returns the snapshot's graph version.
    """
    arrays = _snapshot_arrays(graph, wal_seq, owner)
    arrays[_CHECKSUM_KEY] = np.array([checksum_arrays(arrays)],
                                     dtype=np.uint64)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    with atomic_write(path, "wb") as handle:
        handle.write(buffer.getvalue())
    return graph.version


def load_snapshot(path: str) -> tuple[Graph, int, np.ndarray | None]:
    """Load and verify a snapshot; returns ``(graph, wal_seq, owner)``.

    Raises :class:`CorruptArtifactError` when the file is truncated,
    unreadable as an archive, from an unknown schema, or fails its
    checksum.  The returned graph reads bit-identically to the state the
    snapshot captured (mutated graphs come back as delta overlays over
    the same live edge list, version preserved).
    """
    try:
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as error:
        raise CorruptArtifactError(
            f"snapshot {path} is unreadable (truncated or damaged): "
            f"{type(error).__name__}: {error}") from error
    stored = arrays.pop(_CHECKSUM_KEY, None)
    if stored is None:
        raise CorruptArtifactError(
            f"snapshot {path} carries no checksum entry")
    if int(stored[0]) != checksum_arrays(arrays):
        raise CorruptArtifactError(
            f"snapshot {path} failed its checksum — the file was "
            f"corrupted after it was written")
    schema = int(arrays["schema"][0])
    if schema != SNAPSHOT_SCHEMA:
        raise CorruptArtifactError(
            f"snapshot {path} uses schema {schema}; this build reads "
            f"schema {SNAPSHOT_SCHEMA}")
    num_nodes, num_relations, version, wal_seq = (
        int(value) for value in arrays["meta"])
    graph = Graph(
        num_nodes,
        arrays["src"], arrays["dst"], rel=arrays["rel"],
        node_features=arrays["node_features"],
        node_labels=arrays.get("node_labels"),
        num_relations=num_relations,
        relation_features=arrays.get("relation_features"),
        name=bytes(arrays["name"]).decode() if arrays["name"].size
        else "graph")
    alive = arrays["edge_alive"]
    if alive.size:
        graph.edge_alive = alive.astype(bool)
    graph.version = version
    # A snapshot of a mutated graph must come back *as* a mutated graph:
    # the lazy adjacency build then reads live_edges() into delta
    # overlays, whose rows are bit-identical to the crashed process's.
    if version > 0:
        graph._mutated = True
    owner = arrays.get("owner")
    return graph, wal_seq, owner
