"""Durable serving substrate: snapshots, write-ahead log, recovery.

This package is the persistence tier under :mod:`repro.serving` — the
subsystem that turns a process death from "lose the mutated graph and
every live session" into "warm-start and provably serve the same answers":

* :func:`atomic_write` / :class:`CorruptArtifactError`
  (:mod:`repro.persist.atomic`) — temp+fsync+replace writes and the typed
  integrity failure shared by every artifact loader in the repo;
* :class:`WriteAheadLog` (:mod:`repro.persist.wal`) — append-only,
  CRC-framed, fsync-before-apply :class:`~repro.graph.GraphUpdate` log
  with idempotent, torn-tail-tolerant replay;
* :func:`write_snapshot` / :func:`load_snapshot`
  (:mod:`repro.persist.snapshot`) — checksummed full-edge-id-space graph
  snapshots (plus the shard owner map) written atomically;
* :class:`SessionManifest` / :class:`SessionManifestStore`
  (:mod:`repro.persist.manifest`) — the durable per-session record
  (tenant, priority, episode, open order) a restart re-opens from;
* :class:`PersistentStore` (:mod:`repro.persist.store`) — the directory
  facade tying them together: ``log_update`` → ``save_snapshot`` →
  ``recover`` = snapshot + ordered replay, bit-identical to the crashed
  process's live reads.
"""

from .atomic import (
    CorruptArtifactError,
    atomic_write,
    checksum_arrays,
    fsync_directory,
)
from .manifest import (
    SessionManifest,
    SessionManifestStore,
    episode_from_jsonable,
    episode_to_jsonable,
)
from .snapshot import SNAPSHOT_SCHEMA, load_snapshot, write_snapshot
from .store import PersistentStore
from .wal import (
    WalRecord,
    WriteAheadLog,
    update_from_jsonable,
    update_to_jsonable,
)

__all__ = [
    "CorruptArtifactError",
    "PersistentStore",
    "SNAPSHOT_SCHEMA",
    "SessionManifest",
    "SessionManifestStore",
    "WalRecord",
    "WriteAheadLog",
    "atomic_write",
    "checksum_arrays",
    "episode_from_jsonable",
    "episode_to_jsonable",
    "fsync_directory",
    "load_snapshot",
    "update_from_jsonable",
    "update_to_jsonable",
    "write_snapshot",
]
