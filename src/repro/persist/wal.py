"""Append-only write-ahead log of :class:`~repro.graph.delta.GraphUpdate`.

Durability protocol (classic WAL): the serving layer appends a mutation
record — and fsyncs it — **before** applying the mutation in memory, so
any state a client could have observed is reconstructible as *snapshot +
ordered replay*.  One JSONL record per update::

    {"seq": 7, "base_version": 12, "update": {...}, "crc": 3735928559}

* ``seq`` — monotonically increasing append index (gap-checked on read);
* ``base_version`` — the graph epoch the update was applied on top of.
  Replay applies a record only when its ``base_version`` matches the
  graph's current version, which is what makes replay **idempotent**: a
  record delivered (or replayed) twice finds the graph already past its
  base version and is skipped as a no-op, and replaying a WAL over a
  snapshot that already contains its prefix skips exactly that prefix.
* ``crc`` — CRC32 of the record's canonical JSON, so a torn or bit-flipped
  record is detected rather than half-parsed.

Torn-tail tolerance: a crash mid-append (kill -9 between ``write`` and
``fsync``) can leave a truncated or garbage final line.  The reader treats
the first undecodable/CRC-failing record as the end of the log — by the
write-before-apply protocol that update was never applied, so dropping it
is the *correct* recovery, not data loss.  Anything damaged before a valid
record, by contrast, raises :class:`~repro.persist.CorruptArtifactError`
(mid-log corruption cannot be silently skipped without replaying on the
wrong base).

JSON floats round-trip float64 exactly (shortest-repr), so logged feature
payloads replay bit-identically — the property the differential crash
experiment (`repro serve-bench-recovery`) asserts end to end.
"""

from __future__ import annotations

import json
import os
import zlib

import numpy as np

from ..graph.delta import GraphUpdate
from .atomic import CorruptArtifactError, atomic_write, fsync_directory

__all__ = ["WalRecord", "WriteAheadLog", "update_to_jsonable",
           "update_from_jsonable"]


def update_to_jsonable(update: GraphUpdate) -> dict:
    """A :class:`GraphUpdate` as plain JSON-serializable data."""
    def ints(values) -> list:
        return np.asarray(values, dtype=np.int64).reshape(-1).tolist()

    payload: dict = {
        "add_src": ints(update.add_src),
        "add_dst": ints(update.add_dst),
        "add_rel": None if update.add_rel is None else ints(update.add_rel),
        "remove_edges": ints(update.remove_edges),
        "add_node_features": None,
        "add_node_labels": None,
    }
    if update.add_node_features is not None:
        features = np.asarray(update.add_node_features, dtype=np.float64)
        payload["add_node_features"] = features.tolist()
    if update.add_node_labels is not None:
        payload["add_node_labels"] = ints(update.add_node_labels)
    return payload


def update_from_jsonable(payload: dict) -> GraphUpdate:
    """Inverse of :func:`update_to_jsonable` (bit-exact for float64)."""
    features = payload.get("add_node_features")
    labels = payload.get("add_node_labels")
    rel = payload.get("add_rel")
    return GraphUpdate(
        add_src=np.asarray(payload["add_src"], dtype=np.int64),
        add_dst=np.asarray(payload["add_dst"], dtype=np.int64),
        add_rel=None if rel is None else np.asarray(rel, dtype=np.int64),
        remove_edges=np.asarray(payload["remove_edges"], dtype=np.int64),
        add_node_features=None if features is None
        else np.asarray(features, dtype=np.float64),
        add_node_labels=None if labels is None
        else np.asarray(labels, dtype=np.int64),
    )


def _record_crc(seq: int, base_version: int, update_payload: dict) -> int:
    body = json.dumps(
        {"seq": seq, "base_version": base_version,
         "update": update_payload},
        sort_keys=True, separators=(",", ":"))
    return zlib.crc32(body.encode())


class WalRecord:
    """One decoded WAL entry."""

    __slots__ = ("seq", "base_version", "update")

    def __init__(self, seq: int, base_version: int, update: GraphUpdate):
        self.seq = seq
        self.base_version = base_version
        self.update = update


class WriteAheadLog:
    """Append-only, fsynced, CRC-framed JSONL update log."""

    def __init__(self, path: str):
        self.path = path
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        self._next_seq = self._scan_next_seq()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, update: GraphUpdate, base_version: int) -> int:
        """Durably log one update; returns its sequence number.

        The record is written and fsynced before this returns — callers
        apply the update in memory only afterwards (write-ahead).
        """
        seq = self._next_seq
        payload = update_to_jsonable(update)
        record = {
            "seq": seq,
            "base_version": int(base_version),
            "update": payload,
            "crc": _record_crc(seq, int(base_version), payload),
        }
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with open(self.path, "a") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._next_seq = seq + 1
        return seq

    def compact(self, min_base_version: int) -> int:
        """Atomically drop records older than ``min_base_version``.

        Called after a snapshot: records whose effects the snapshot
        already contains (``base_version < min_base_version``) are dead
        weight.  Returns the number of records kept.  The rewrite goes
        through :func:`~repro.persist.atomic_write`, so a crash mid-compact
        leaves the previous (complete) log in place.
        """
        kept = [record for record in self.records()
                if record.base_version >= min_base_version]
        with atomic_write(self.path) as handle:
            for record in kept:
                payload = update_to_jsonable(record.update)
                handle.write(json.dumps(
                    {"seq": record.seq,
                     "base_version": record.base_version,
                     "update": payload,
                     "crc": _record_crc(record.seq, record.base_version,
                                        payload)},
                    sort_keys=True, separators=(",", ":")) + "\n")
        fsync_directory(os.path.dirname(os.path.abspath(self.path)))
        return len(kept)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def records(self) -> list[WalRecord]:
        """Decode every intact record, in append order.

        A damaged *final* record (torn tail from a crash mid-append) is
        dropped silently; damage anywhere before an intact record raises
        :class:`CorruptArtifactError`.
        """
        if not os.path.exists(self.path):
            return []
        with open(self.path, "rb") as handle:
            lines = handle.read().split(b"\n")
        records: list[WalRecord] = []
        bad_at: int | None = None
        for index, raw in enumerate(lines):
            if not raw.strip():
                continue
            record = self._decode(raw)
            if record is None:
                if bad_at is None:
                    bad_at = index
                continue
            if bad_at is not None:
                raise CorruptArtifactError(
                    f"WAL {self.path}: damaged record at line "
                    f"{bad_at + 1} followed by intact records — mid-log "
                    f"corruption cannot be replayed past safely")
            records.append(record)
        return records

    def replay(self, graph) -> int:
        """Apply every not-yet-applied record to ``graph``, in order.

        Records whose ``base_version`` is behind the graph's current
        version are skipped (already applied — duplicate delivery or a
        snapshot that contains them); a record *ahead* of the graph means
        a missing prefix and raises.  Returns the number applied.
        Idempotent: replaying the same log twice applies nothing new.
        """
        applied = 0
        for record in self.records():
            if record.base_version < graph.version:
                continue
            if record.base_version > graph.version:
                raise CorruptArtifactError(
                    f"WAL {self.path}: record seq={record.seq} expects "
                    f"graph version {record.base_version} but the graph "
                    f"is at {graph.version} — snapshot/log mismatch")
            graph.apply_updates(record.update)
            applied += 1
        return applied

    # ------------------------------------------------------------------
    def _decode(self, raw: bytes) -> WalRecord | None:
        try:
            record = json.loads(raw)
            seq = int(record["seq"])
            base_version = int(record["base_version"])
            payload = record["update"]
            crc = int(record["crc"])
        except (ValueError, KeyError, TypeError):
            return None
        if _record_crc(seq, base_version, payload) != crc:
            return None
        return WalRecord(seq, base_version,
                         update_from_jsonable(payload))

    def _scan_next_seq(self) -> int:
        if not os.path.exists(self.path):
            return 0
        records = self.records()
        return records[-1].seq + 1 if records else 0

    def __len__(self) -> int:
        return len(self.records())
