"""Per-query inference timing (Table VIII).

The paper reports milliseconds per query for Prodigy vs. GraphPrompter at
10/20/40 ways; GraphPrompter is expected to cost ~2-3× more because of kNN
retrieval and the cache-extended task graph (Eqs. 15–16).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.episodes import sample_episode
from ..datasets.base import Dataset
from .harness import EvaluationSetting, Method

__all__ = ["TimingResult", "time_method"]


@dataclass
class TimingResult:
    """Wall-clock statistics of one method in one timing cell."""

    method: str
    total_seconds: float
    num_queries: int

    @property
    def ms_per_query(self) -> float:
        return 1000.0 * self.total_seconds / max(self.num_queries, 1)


def time_method(method: Method, dataset: Dataset,
                setting: EvaluationSetting, seed: int = 0,
                warmup_runs: int = 1) -> TimingResult:
    """Measure mean per-query wall time over ``setting.runs`` episodes."""
    setting.validate()
    total = 0.0
    queries = 0
    for run in range(warmup_runs + setting.runs):
        episode_rng = np.random.default_rng(seed * 10_000 + run)
        episode = sample_episode(
            dataset,
            num_ways=setting.num_ways,
            num_candidates_per_class=setting.candidates_per_class,
            num_queries=setting.queries_per_run,
            rng=episode_rng,
        )
        method_rng = np.random.default_rng(seed * 10_000 + 5000 + run)
        start = time.perf_counter()
        method.predict(dataset, episode, setting.shots, method_rng)
        elapsed = time.perf_counter() - start
        if run >= warmup_runs:
            total += elapsed
            queries += episode.num_queries
    return TimingResult(method=method.name, total_seconds=total,
                        num_queries=queries)
