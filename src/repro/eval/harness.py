"""Uniform evaluation harness: any method × any dataset × any episode shape.

A *method* is anything with a ``name`` attribute and a
``predict(dataset, episode, shots, rng) -> np.ndarray`` method returning one
local label per episode query.  GraphPrompter, Prodigy and all the
baselines implement this protocol, so each paper table reduces to a loop
over (method, ways) cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..core.episodes import Episode, sample_episode
from ..datasets.base import Dataset
from .metrics import MethodScore, accuracy

__all__ = ["Method", "EvaluationSetting", "evaluate_method", "compare_methods"]


@runtime_checkable
class Method(Protocol):
    """The in-context classification protocol every method implements."""

    name: str

    def predict(self, dataset: Dataset, episode: Episode, shots: int,
                rng: np.random.Generator) -> np.ndarray:
        """Return predicted local labels for every episode query."""
        ...


@dataclass(frozen=True)
class EvaluationSetting:
    """One table cell's episode shape.

    The paper evaluates 500 sampled test datapoints with 3-shot prompts and
    ``N = 10`` candidates per class over several runs; defaults are scaled
    for CPU but keep the protocol.
    """

    num_ways: int
    shots: int = 3
    candidates_per_class: int = 10
    queries_per_run: int = 40
    runs: int = 5

    def validate(self) -> "EvaluationSetting":
        if self.num_ways < 2:
            raise ValueError("num_ways must be at least 2")
        if self.shots < 1 or self.candidates_per_class < self.shots:
            raise ValueError("need shots >= 1 and candidates >= shots")
        if self.queries_per_run < 1 or self.runs < 1:
            raise ValueError("need at least one query and one run")
        return self


def evaluate_method(method: Method, dataset: Dataset,
                    setting: EvaluationSetting,
                    seed: int = 0) -> MethodScore:
    """Accuracy of ``method`` over ``setting.runs`` independent episodes."""
    setting.validate()
    score = MethodScore(method.name)
    for run in range(setting.runs):
        episode_rng = np.random.default_rng(seed * 10_000 + run)
        episode = sample_episode(
            dataset,
            num_ways=setting.num_ways,
            num_candidates_per_class=setting.candidates_per_class,
            num_queries=setting.queries_per_run,
            rng=episode_rng,
        )
        method_rng = np.random.default_rng(seed * 10_000 + 5000 + run)
        predictions = method.predict(dataset, episode, setting.shots,
                                     method_rng)
        score.add(accuracy(predictions, episode.query_labels))
    return score


def compare_methods(methods: list[Method], dataset: Dataset,
                    setting: EvaluationSetting,
                    seed: int = 0) -> dict[str, MethodScore]:
    """Evaluate several methods on the *same* episodes (paired comparison)."""
    return {
        method.name: evaluate_method(method, dataset, setting, seed=seed)
        for method in methods
    }
