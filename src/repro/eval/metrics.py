"""Accuracy statistics in the paper's reporting format (mean ± std %)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["accuracy", "safe_accuracy", "MethodScore", "bootstrap_ci"]


def safe_accuracy(predictions: np.ndarray, labels: np.ndarray,
                  empty_value: float = float("nan")) -> float:
    """Fraction of correct predictions; ``empty_value`` for zero samples.

    The single definition of episode accuracy shared by every consumer
    (``EpisodeResult``, the evaluation harness, the serving ledger), so an
    empty-label episode behaves identically everywhere instead of each call
    site improvising its own ``nan`` handling.
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if labels.size == 0:
        return float(empty_value)
    return float((predictions == labels).mean())


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions; raises on zero samples."""
    if np.asarray(labels).size == 0:
        raise ValueError("cannot compute accuracy of zero samples")
    return safe_accuracy(predictions, labels)


@dataclass
class MethodScore:
    """Per-run accuracies of one method in one table cell."""

    method: str
    run_accuracies: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.run_accuracies.append(float(value))

    @property
    def mean(self) -> float:
        return float(np.mean(self.run_accuracies))

    @property
    def std(self) -> float:
        return float(np.std(self.run_accuracies))

    @property
    def mean_percent(self) -> float:
        return 100.0 * self.mean

    @property
    def std_percent(self) -> float:
        return 100.0 * self.std

    def __str__(self) -> str:
        return f"{self.mean_percent:.2f} ±{self.std_percent:.2f}"


def bootstrap_ci(values, num_resamples: int = 2000, alpha: float = 0.05,
                 rng: np.random.Generator | int | None = None
                 ) -> tuple[float, float]:
    """Percentile bootstrap confidence interval of the mean."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("no values to bootstrap")
    rng = np.random.default_rng(rng)
    means = np.empty(num_resamples)
    for i in range(num_resamples):
        means[i] = values[rng.integers(0, values.size, values.size)].mean()
    lo, hi = np.quantile(means, [alpha / 2, 1 - alpha / 2])
    return float(lo), float(hi)
