"""Evaluation harness: metrics, episode runner and timing."""

from .harness import EvaluationSetting, Method, compare_methods, evaluate_method
from .metrics import MethodScore, accuracy, bootstrap_ci, safe_accuracy
from .timing import TimingResult, time_method

__all__ = [
    "Method",
    "EvaluationSetting",
    "evaluate_method",
    "compare_methods",
    "MethodScore",
    "accuracy",
    "safe_accuracy",
    "bootstrap_ci",
    "TimingResult",
    "time_method",
]
