"""Int8 at-rest quantization of candidate-pool embeddings.

A session's candidate pool is written once (at ``open_session`` / refresh)
and read on every query — and pool bytes, not model bytes, are what cap
concurrent sessions per host.  :class:`QuantizedPool` stores each pool row
as int8 codes with one float32 scale per row (symmetric, zero-preserving),
an ~8x at-rest reduction over the float64 ndarray it replaces, and
dequantizes into a float work array only for the duration of a micro-batch
read.

Per-row symmetric quantization bounds the round-trip error of every
element by ``row_maxabs / 254`` (half a code step of ``scale =
row_maxabs / 127``), which ``tests/test_backend_equivalence.py`` pins,
along with top-1 agreement of served predictions against float pools.
Quantization is opt-in (``config.pool_quantization = "int8"``); the
default pool representation remains the exact float64 ndarray.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuantizedPool", "quantize_pool", "pool_data", "pool_nbytes"]


class QuantizedPool:
    """An (n, d) embedding matrix stored as int8 codes + per-row scales.

    Attributes
    ----------
    codes:
        ``(n, d)`` int8 — each row is ``round(row / scale)``.
    scales:
        ``(n,)`` float32 — per-row symmetric step ``maxabs / 127``
        (0.0 for all-zero rows, which decode exactly).
    dtype:
        The float dtype rows decode to (the dtype the pool was built
        from, so quantized serving hands the pipeline the same dtype
        unquantized serving would).
    """

    __slots__ = ("codes", "scales", "dtype")

    def __init__(self, codes: np.ndarray, scales: np.ndarray,
                 dtype=np.float64):
        self.codes = codes
        self.scales = scales
        self.dtype = np.dtype(dtype)

    @property
    def shape(self) -> tuple[int, int]:
        """Logical (rows, dim) of the decoded matrix."""
        return self.codes.shape

    @property
    def nbytes(self) -> int:
        """At-rest bytes: int8 codes + float32 scales."""
        return self.codes.nbytes + self.scales.nbytes

    def dequantize(self) -> np.ndarray:
        """Decode to a float ``(n, d)`` work array (codes · row scale)."""
        out = self.codes.astype(self.dtype)
        out *= self.scales.reshape(-1, 1).astype(self.dtype)
        return out


def quantize_pool(embeddings: np.ndarray) -> QuantizedPool:
    """Quantize an (n, d) float matrix to int8 with per-row scales.

    Symmetric around zero: ``scale = maxabs / 127``, codes in [-127, 127]
    (-128 unused, keeping the code space symmetric), so the worst-case
    per-element round-trip error is ``maxabs / 254``.
    """
    embeddings = np.asarray(embeddings)
    if embeddings.ndim != 2:
        raise ValueError("quantize_pool expects an (n, d) matrix")
    maxabs = np.abs(embeddings).max(axis=1) if embeddings.size else \
        np.zeros(embeddings.shape[0])
    scales = (maxabs / 127.0).astype(np.float32)
    safe = np.where(scales > 0, scales, 1.0).astype(np.float64)
    codes = np.rint(embeddings / safe.reshape(-1, 1)).astype(np.int8)
    return QuantizedPool(codes, scales, dtype=embeddings.dtype)


def pool_data(pool) -> np.ndarray:
    """A float work array for ``pool`` — ndarray pass-through (no copy)
    or :class:`QuantizedPool` dequantize-on-read."""
    if isinstance(pool, QuantizedPool):
        return pool.dequantize()
    return pool


def pool_nbytes(pool) -> int:
    """At-rest bytes of either pool representation."""
    return pool.nbytes
