"""Online serving subsystem: sessions, micro-batching, and the server façade.

The offline entry point (:meth:`GraphPrompterPipeline.run_episode`) assumes
one caller and one episode; this package serves a *stream* of single-query
requests from many concurrent logical sessions with the same three-stage
pipeline:

* :class:`SessionStore` — one Augmenter cache + encoded candidate pool per
  session, with LRU/TTL eviction and a per-session stats ledger;
* :class:`MicroBatchScheduler` — coalesces pending queries across sessions
  into one GNN encoding pass (max-batch-size / max-wait policy);
* :class:`PromptServer` — ``open_session`` / ``submit`` / ``drain`` façade,
  warm-startable from the shared disk artifact cache;
* :class:`ShardRouter` — constructed when the server is given
  ``num_shards``/``num_workers``: partitions the graph
  (:mod:`repro.shard`), fans each micro-batch out per shard to a process
  worker pool, and merges rows back in submission order — bit-identical
  results, horizontal throughput.
"""

from .router import ShardRouter
from .scheduler import MicroBatchScheduler, PendingRequest
from .server import PromptServer, ServeResult, ServerStats
from .session import SessionState, SessionStats, SessionStore

__all__ = [
    "MicroBatchScheduler",
    "PendingRequest",
    "PromptServer",
    "ServeResult",
    "ServerStats",
    "ShardRouter",
    "SessionState",
    "SessionStats",
    "SessionStore",
]
