"""Online serving subsystem: sessions, micro-batching, and the server façade.

The offline entry point (:meth:`GraphPrompterPipeline.run_episode`) assumes
one caller and one episode; this package serves a *stream* of single-query
requests from many concurrent logical sessions with the same three-stage
pipeline:

* :class:`SessionStore` — one Augmenter cache + encoded candidate pool per
  session, with LRU/TTL eviction and a per-session stats ledger;
* :class:`MicroBatchScheduler` — coalesces pending queries across sessions
  into one GNN encoding pass (max-batch-size / max-wait policy);
* :class:`PromptServer` — ``open_session`` / ``submit`` / ``drain`` façade,
  warm-startable from the shared disk artifact cache;
* :class:`ShardRouter` — constructed when the server is given
  ``num_shards``/``num_workers``: partitions the graph
  (:mod:`repro.shard`), fans each micro-batch out per shard to a process
  worker pool, and merges rows back in submission order — bit-identical
  results, horizontal throughput;
* :class:`ServingGateway` (:mod:`repro.serving.gateway`) — the async
  multi-tenant front door: per-tenant rate limiting and quotas, a bounded
  admission queue with class-aware load shedding (typed
  :class:`Overloaded` rejections, never a hang), deadline-aware priority
  batching (:mod:`repro.serving.qos`), and graceful drain around graph
  updates and model hot swaps;
* **durability** — constructed with a
  :class:`~repro.persist.PersistentStore`, the server WAL-logs every
  update before applying it, keeps per-session manifests, snapshots on
  demand, and warm-starts via :meth:`PromptServer.restore` to
  bit-identical serving; :class:`ReplicaSet`
  (:mod:`repro.serving.replicaset`) tenant-hashes across N gateway
  replicas sharing one store, with health-checked failover that settles
  in-flight requests with typed :class:`Unavailable` results.
"""

from .gateway import GatewayResult, ServingGateway
from .qos import (
    AdmissionController,
    DeadlineAwareScheduler,
    Overloaded,
    Priority,
    TenantLedger,
    TenantStats,
    TokenBucket,
    Unavailable,
)
from .replicaset import ReplicaSet
from .router import ShardRouter
from .scheduler import MicroBatchScheduler, PendingRequest
from .server import PromptServer, ServeResult, ServerStats
from .session import SessionState, SessionStats, SessionStore

__all__ = [
    "AdmissionController",
    "DeadlineAwareScheduler",
    "GatewayResult",
    "MicroBatchScheduler",
    "Overloaded",
    "PendingRequest",
    "Priority",
    "PromptServer",
    "ReplicaSet",
    "ServeResult",
    "ServerStats",
    "ServingGateway",
    "ShardRouter",
    "SessionState",
    "SessionStats",
    "SessionStore",
    "TenantLedger",
    "TenantStats",
    "TokenBucket",
    "Unavailable",
]
