"""Cross-session micro-batching of the GNN encoding hot path.

Per-query cost is dominated by encoding the query's data graph (Table VIII
measures the GNN pass as the bulk of inference time), and the encoder is a
batched disjoint-union pass — encoding 16 subgraphs in one call costs far
less than 16 single-subgraph calls.  The scheduler therefore coalesces
pending queries *across sessions* into micro-batches:

* a batch is released when ``max_batch_size`` requests are waiting, or
* when the oldest request has waited ``max_wait_s`` (latency bound), or
* unconditionally on ``drain`` (flush).

Requests leave in strict arrival order, which is what keeps micro-batched
serving *numerically identical* to per-query serving: each session's cache
updates replay in the same order either way.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..gnn.batch import BatchArena
from ..graph.datapoints import Datapoint

__all__ = ["PendingRequest", "MicroBatchScheduler", "batch_seed_nodes"]


def batch_seed_nodes(batch) -> np.ndarray:
    """All seed nodes of one micro-batch, concatenated (with duplicates).

    Accepts :class:`PendingRequest` entries or bare datapoints.  This is
    the batched-frontier handle: the shard router feeds it to
    :meth:`~repro.shard.ShardedGraphStore.prefetch_rows` so a single
    shard round-trip warms the halo cache for every concurrent session's
    first expansion, instead of each session fetching its own seeds.
    """
    seeds = [np.asarray(getattr(item, "datapoint", item).nodes,
                        dtype=np.int64).reshape(-1)
             for item in batch]
    if not seeds:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(seeds)


@dataclass(frozen=True)
class PendingRequest:
    """One enqueued query waiting for a micro-batch slot.

    ``deadline`` is an absolute clock time by which the caller wants the
    answer; ``None`` (the default, and what the plain server submits)
    means the request only participates in the base size/age release
    policy.  The gateway's :class:`~repro.serving.qos.DeadlineAwareScheduler`
    uses it to flush shallow queues before the budget is gone.

    ``trace`` optionally carries the request's sampled
    :class:`~repro.obs.TraceContext` through the queue, so the batch
    tick can attach its per-stage spans; ``None`` (the overwhelmingly
    common case) costs nothing downstream.
    """

    request_id: int
    session_id: str
    datapoint: Datapoint
    submitted_at: float
    deadline: float | None = None
    trace: object | None = None


class MicroBatchScheduler:
    """Max-batch-size / max-wait-time micro-batch release policy."""

    def __init__(self, max_batch_size: int = 16, max_wait_s: float = 0.0,
                 clock=time.monotonic):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.clock = clock
        self._queue: "deque[PendingRequest]" = deque()
        self._next_request_id = 0
        # One arena per scheduler: every released micro-batch is assembled
        # into the same reusable buffers, so the large per-batch arrays are
        # recycled instead of reallocated each tick.  Safe because a tick
        # fully consumes its batch (encode → scatter results) before the
        # next one is assembled.
        self.arena = BatchArena()

    def __len__(self) -> int:
        return len(self._queue)

    def submit(self, session_id: str, datapoint: Datapoint,
               deadline: float | None = None,
               trace: object | None = None) -> int:
        """Enqueue one query; returns its ticket (request id)."""
        request_id = self._next_request_id
        self._next_request_id += 1
        self._queue.append(PendingRequest(
            request_id=request_id, session_id=session_id,
            datapoint=datapoint, submitted_at=self.clock(),
            deadline=deadline, trace=trace))
        return request_id

    def ready(self) -> bool:
        """Should a micro-batch be released right now?"""
        if not self._queue:
            return False
        if len(self._queue) >= self.max_batch_size:
            return True
        return self.clock() - self._queue[0].submitted_at >= self.max_wait_s

    def next_batch(self) -> list[PendingRequest]:
        """Pop up to ``max_batch_size`` requests in arrival order."""
        batch = []
        while self._queue and len(batch) < self.max_batch_size:
            batch.append(self._queue.popleft())
        return batch
