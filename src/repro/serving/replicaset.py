"""ReplicaSet: tenant-hashed failover routing across gateway replicas.

The durable tier (:mod:`repro.persist`) makes a single serving process
restartable; this module makes the *fleet* survive one without restarting
anything: N :class:`~repro.serving.ServingGateway` replicas — each a full
server warm-started from one shared :class:`~repro.persist.PersistentStore`
— sit behind a front router that

* **routes by tenant**: a tenant's home replica is a splitmix64 hash of
  its id modulo N, so placement is stateless, deterministic, and sticky —
  every session of a tenant lands on one replica, preserving the
  per-session FIFO the gateway's bit-identity contract needs;
* **health-checks on every route**: a replica that was killed (or closed)
  is skipped by walking forward to the next healthy one;
* **fails over without hangs**: killing a replica aborts it — every
  admitted in-flight request settles with a typed
  :class:`~repro.serving.qos.Unavailable` — and the next submit for an
  affected tenant re-opens its sessions on the fallback replica from the
  shared session manifests, then serves normally;
* **fans updates out, logs them once**: a live
  :class:`~repro.graph.GraphUpdate` is WAL-logged through the shared
  store exactly once, then applied to every healthy replica with
  ``log=False`` — so all replicas stay at the same graph version and a
  later cold restart replays the same history, with no double-logging.

What failover does *not* preserve is the ephemeral part of session state:
the dead replica's Augmenter caches die with it, so the fallback replica
re-opens sessions fresh — exactly the contract a single-process restart
has.  Everything durable (graph version, session identity, tenant and
priority) carries over.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..graph.delta import AppliedUpdate, GraphUpdate
from ..obs.metrics import MetricsRegistry, get_registry
from ..persist import PersistentStore, episode_from_jsonable
from ..shard.partition import _splitmix64
from .gateway import ServingGateway
from .qos import UNAVAILABLE_FAILOVER, Priority

__all__ = ["ReplicaSet"]


class ReplicaSet:
    """Front router over N gateway replicas sharing one durable store.

    Parameters
    ----------
    factory:
        ``factory(replica_id) -> ServingGateway``; called once per
        replica.  Each gateway's server should be warm-started from (or
        attached to) the same :class:`~repro.persist.PersistentStore`.
    num_replicas:
        Fleet size (>= 1).
    store:
        The shared persistent store.  Defaults to replica 0's server
        store; updates are logged through it exactly once, and failover
        re-opens sessions from its manifests.  ``None`` disables both
        (purely in-memory fleet).
    """

    def __init__(self, factory, num_replicas: int = 2,
                 store: PersistentStore | None = None,
                 registry: MetricsRegistry | None = None):
        if num_replicas < 1:
            raise ValueError("num_replicas must be at least 1")
        self.replicas: list[ServingGateway] = [
            factory(replica_id) for replica_id in range(num_replicas)]
        self.store = (store if store is not None
                      else self.replicas[0].server.persist)
        self.obs = registry if registry is not None else get_registry()
        self._m_failovers = self.obs.counter(
            "repro_replicaset_failovers_total",
            "Tenant re-routes onto a fallback replica.", ("tenant",))
        self._m_kills = self.obs.counter(
            "repro_replicaset_kills_total",
            "Replicas aborted (crash-simulated or administrative).")
        #: session id -> owning tenant id (route key for submits).
        self._session_tenant: dict[str, str] = {}
        #: tenant id -> replica currently serving it.
        self._routed: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def home_replica(self, tenant_id: str) -> int:
        """Stateless home slot: splitmix64 of the tenant id modulo N."""
        seed = np.array([zlib.crc32(tenant_id.encode())], dtype=np.uint64)
        return int(_splitmix64(seed)[0] % np.uint64(len(self.replicas)))

    def healthy_replicas(self) -> list[int]:
        """Indices of replicas whose gateway is still open."""
        return [i for i, gateway in enumerate(self.replicas)
                if not gateway.closed]

    def route(self, tenant_id: str) -> int:
        """Replica serving ``tenant_id``: home slot, or the next healthy
        one — re-opening the tenant's sessions there on a failover."""
        count = len(self.replicas)
        home = self.home_replica(tenant_id)
        for step in range(count):
            index = (home + step) % count
            if self.replicas[index].closed:
                continue
            previous = self._routed.get(tenant_id)
            if (previous is not None and previous != index
                    and self.replicas[previous].closed):
                self._m_failovers.inc(tenant=tenant_id)
                self._reopen_tenant(tenant_id, index)
            self._routed[tenant_id] = index
            return index
        raise RuntimeError("no healthy replica available")

    def _reopen_tenant(self, tenant_id: str, index: int) -> None:
        """Re-open a failed-over tenant's sessions from shared manifests."""
        if self.store is None:
            return
        gateway = self.replicas[index]
        for manifest in self.store.sessions.load_all():
            if manifest.tenant_id != tenant_id:
                continue
            if manifest.session_id in gateway.server.sessions:
                continue
            priority = (Priority.INTERACTIVE if manifest.priority is None
                        else Priority(manifest.priority))
            gateway.open_session(
                tenant_id, manifest.session_id,
                episode_from_jsonable(manifest.episode),
                shots=manifest.shots, priority=priority,
                _open_index=manifest.open_index)

    # ------------------------------------------------------------------
    # Session + request path
    # ------------------------------------------------------------------
    def open_session(self, tenant_id: str, session_id: str, episode,
                     shots: int = 3,
                     priority: Priority = Priority.INTERACTIVE):
        """Open a session on the tenant's (healthy) home replica."""
        gateway = self.replicas[self.route(tenant_id)]
        state = gateway.open_session(tenant_id, session_id, episode,
                                     shots=shots, priority=priority)
        self._session_tenant[session_id] = tenant_id
        return state

    async def submit(self, session_id: str, datapoint):
        """Submit one query, following the tenant's current route.

        Returns the gateway's typed result (:class:`GatewayResult`,
        :class:`Overloaded`, or — when a replica dies mid-request —
        :class:`~repro.serving.qos.Unavailable`); raises ``KeyError`` for
        sessions never opened through this replica set.
        """
        tenant_id = self._session_tenant[session_id]
        gateway = self.replicas[self.route(tenant_id)]
        return await gateway.submit(session_id, datapoint)

    # ------------------------------------------------------------------
    # Updates + lifecycle
    # ------------------------------------------------------------------
    def _graph_version(self) -> int:
        healthy = self.healthy_replicas()
        if not healthy:
            raise RuntimeError("no healthy replica available")
        return self.replicas[healthy[0]].server.dataset.graph.version

    async def update_graph(self, update: GraphUpdate) -> AppliedUpdate:
        """Apply one live mutation fleet-wide: log once, fan out.

        Every healthy replica drains its in-flight requests and absorbs
        the update (``log=False`` — the shared WAL already has it), so
        the fleet stays version-aligned and a cold restart replays the
        same history exactly once.
        """
        if self.store is not None:
            self.store.log_update(update, base_version=self._graph_version())
        applied = None
        for gateway in self.replicas:
            if not gateway.closed:
                applied = await gateway.update_graph(update, log=False)
        if applied is None:
            raise RuntimeError("no healthy replica available")
        return applied

    def kill(self, replica_id: int) -> int:
        """Simulate a replica crash: abort it (in-flight requests settle
        with ``Unavailable``), leave it unroutable.  Returns the number
        of requests settled."""
        gateway = self.replicas[replica_id]
        settled = gateway.abort(reason=UNAVAILABLE_FAILOVER)
        gateway.server.close()  # release its worker pool, as death would
        self._m_kills.inc()
        return settled

    async def close(self) -> None:
        """Gracefully close every still-healthy replica."""
        for gateway in self.replicas:
            await gateway.close()

    async def __aenter__(self) -> "ReplicaSet":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
