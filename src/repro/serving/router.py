"""ShardRouter: fan micro-batches out per shard, merge in submission order.

The router is the serving-side integration of :mod:`repro.shard`: it owns
the :class:`~repro.shard.ShardedGraphStore` and a
:class:`~repro.shard.WorkerPool`, routes every datapoint to its *home
shard* (the owner of its first seed node), dispatches one
sampling+encoding task per shard touched, and scatters the returned
embedding rows back into the caller's submission order.

Why results cannot change: serving always samples with per-datapoint
deterministic RNG (``deterministic_sampling``), sampling over the sharded
store is bit-identical to the monolithic engines, and batched encoding is
batch-composition-invariant — so regrouping a micro-batch by shard and
encoding the groups on different workers (even different processes, each
with its own model replica rebuilt from the same state dict) produces
exactly the rows the monolithic encoder would have.  Sharding and
parallelism are pure throughput levers.

Per-shard counters (``requests``, ``halo_fetches``, ``worker_busy_s``) are
aggregated here — worker processes report deltas with each task result, so
the server-side ledger stays consistent whichever backend ran the task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import GraphPrompterConfig
from ..core.model import GraphPrompterModel
from ..core.prompt_generator import PromptGenerator
from ..gnn import BatchArena
from ..graph.datapoints import Datapoint
from ..graph.graph import Graph
from ..nn import no_grad
from ..obs.tracing import span
from ..shard import ShardCounters, ShardedGraphStore, WorkerPool
from .scheduler import batch_seed_nodes

__all__ = ["ShardRouter"]


@dataclass
class _WorkerContext:
    """Everything one worker needs: model replica, generator, store."""

    model: GraphPrompterModel
    generator: PromptGenerator
    store: ShardedGraphStore
    arena: BatchArena


def _build_worker_context(store: ShardedGraphStore,
                          config: GraphPrompterConfig, feature_dim: int,
                          num_relations: int, state: dict) -> _WorkerContext:
    """Pool initializer: rebuild the model from its state dict (picklable)."""
    model = GraphPrompterModel(feature_dim, num_relations, config)
    model.load_state_dict(state)
    model.eval()
    generator = PromptGenerator(store.view(), config,
                                deterministic=True, salt=config.seed)
    return _WorkerContext(model=model, generator=generator, store=store,
                          arena=BatchArena())


def _encode_shard_task(context: _WorkerContext, task):
    """One shard's slice of a micro-batch: sample + encode + count halo."""
    home_shard, datapoints = task
    store = context.store
    store.reset_counters()
    store.home_shard = home_shard
    try:
        # Batched frontier expansion: pull every session's seed rows in
        # one grouped fetch per shard before sampling, so the per-session
        # expansions below start from a warm halo cache instead of each
        # paying its own shard round-trips.
        store.prefetch_rows(batch_seed_nodes(datapoints))
        subgraphs = context.generator.subgraphs_for(datapoints)
        with no_grad():
            emb = context.model.encode_subgraphs(subgraphs,
                                                 arena=context.arena)
            importance = context.model.importance(emb).data
        return emb.data, importance, store.halo_fetches
    finally:
        store.home_shard = None


class ShardRouter:
    """Routes encode batches across shards and workers.

    Drop-in for :meth:`GraphPrompterPipeline.encode_points` (installed as
    its ``point_encoder``): same signature, same rows, merged back in
    submission order whatever the per-shard grouping was.
    """

    def __init__(self, model: GraphPrompterModel, graph: Graph,
                 num_shards: int = 1, num_workers: int = 1,
                 strategy: str = "greedy", backend: str = "auto",
                 owner: np.ndarray | None = None):
        config = model.config
        self.num_shards = num_shards
        self.store = ShardedGraphStore.from_graph(graph, num_shards,
                                                  strategy, owner=owner)
        self.counters = [ShardCounters(shard_id=k)
                         for k in range(num_shards)]
        self._num_workers = num_workers
        self._requested_backend = backend
        self._initargs = (self.store, config, graph.feature_dim,
                          graph.num_relations, model.state_dict())
        self.pool = WorkerPool(_build_worker_context,
                               initargs=self._initargs,
                               num_workers=num_workers, backend=backend)

    def apply_updates(self, applied) -> None:
        """Propagate one applied graph mutation through the shard layer.

        The store is updated in place (touched shards rebuilt, ghost
        tables refreshed).  The serial backend's worker context reads that
        same store object, so it needs nothing further — but **process**
        workers were initialized from a pickled snapshot of the
        pre-mutation store, so the pool is respawned: the initializer
        re-pickles the now-updated store into each fresh worker.
        """
        self.store.apply_updates(applied)
        if self.pool is not None and self.pool.backend == "process":
            self._respawn_pool()

    def reload_model(self, model: GraphPrompterModel) -> None:
        """Swap in new model weights for every worker replica.

        Worker contexts were initialized from a pickled state dict, so a
        hot model reload must rebuild the initargs and respawn the pool —
        serial contexts too: their replica was built once at pool
        construction and would otherwise keep serving the old weights.
        """
        graph_args = self._initargs[2:4]  # feature_dim, num_relations
        self._initargs = (self.store, model.config, *graph_args,
                          model.state_dict())
        self._respawn_pool()

    def _respawn_pool(self) -> None:
        """Tear down the pool and rebuild workers from ``_initargs``."""
        self.pool.close()
        self.pool = WorkerPool(_build_worker_context,
                               initargs=self._initargs,
                               num_workers=self._num_workers,
                               backend=self._requested_backend)

    @property
    def backend(self) -> str:
        """Effective worker backend (may have degraded to ``"serial"``)."""
        return self.pool.backend

    def home_shard(self, datapoint: Datapoint) -> int:
        """Owner shard of the datapoint's first seed node."""
        return int(self.store.owner[int(datapoint.nodes[0])])

    def encode_points(self, datapoints: list, arena=None
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Sharded/parallel twin of ``GraphPrompterPipeline.encode_points``.

        ``arena`` is accepted for signature compatibility but unused —
        each worker owns its own :class:`~repro.gnn.BatchArena`.
        """
        del arena
        with span("shard_encode"):
            return self._encode_points(datapoints)

    def _encode_points(self, datapoints: list
                       ) -> tuple[np.ndarray, np.ndarray]:
        groups: dict[int, list[int]] = {}
        for position, datapoint in enumerate(datapoints):
            groups.setdefault(self.home_shard(datapoint), []).append(position)
        tasks = [(shard, [datapoints[i] for i in groups[shard]])
                 for shard in sorted(groups)]
        outputs = self.pool.map(_encode_shard_task, tasks)

        emb0 = outputs[0][0][0]
        emb = np.empty((len(datapoints), emb0.shape[1]), dtype=emb0.dtype)
        importance = np.empty(len(datapoints),
                              dtype=outputs[0][0][1].dtype)
        for (shard, _), ((rows, scores, halo), busy_s) in zip(tasks, outputs):
            positions = groups[shard]
            emb[positions] = rows
            importance[positions] = scores
            ledger = self.counters[shard]
            ledger.requests += len(positions)
            ledger.halo_fetches += int(halo)
            ledger.worker_busy_s += busy_s
        return emb, importance

    def stats(self) -> tuple[ShardCounters, ...]:
        """Immutable snapshot of the per-shard ledgers."""
        return tuple(c.snapshot() for c in self.counters)

    def close(self) -> None:
        """Shut down the shard worker pool."""
        self.pool.close()
