"""Quality-of-service primitives for the multi-tenant serving gateway.

The serving layer below this module (:class:`~repro.serving.PromptServer`)
is single-tenant and trusting: every submitted query is queued, every queue
is unbounded, and the drain policy knows only batch size and wall-clock
age.  Production prompt-serving traffic is neither single-tenant nor
polite — it is bursty, heterogeneous across tasks, and overload is a
when-not-if — so the gateway needs the classic QoS vocabulary, which this
module provides as small deterministic pieces:

* :class:`Priority` — interactive / batch / background request classes,
  each with its own deadline budget;
* :class:`TokenBucket` — per-tenant rate limiting (sustained QPS + burst);
* :class:`AdmissionController` — bounded admission with class-aware load
  shedding: lower classes are refused while queue occupancy is high so
  that interactive traffic keeps its latency under overload;
* :class:`Overloaded` — the *typed* rejection every shed request gets
  immediately (a shed request never hangs and never raises);
* :class:`TenantLedger` / :class:`TenantStats` — per-tenant accounting:
  admitted/shed counts, QPS, queue-wait percentiles, deadline misses, and
  the per-shard work (requests, halo fetches) attributed to the tenant;
* :class:`DeadlineAwareScheduler` — a :class:`MicroBatchScheduler` whose
  release policy also fires when the oldest request has spent its
  configured fraction of deadline budget *waiting*, so shallow queues
  flush early enough to leave service time before the deadline.

Everything takes an injectable ``clock`` and draws no hidden randomness,
so admission and shedding decisions replay exactly under a seeded burst
schedule — the property ``tests/test_gateway.py`` pins.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from .scheduler import MicroBatchScheduler

__all__ = [
    "Priority",
    "TokenBucket",
    "Overloaded",
    "Unavailable",
    "AdmissionController",
    "TenantLedger",
    "TenantStats",
    "DeadlineAwareScheduler",
    "SHED_QUEUE_FRACTIONS",
]


class Priority(IntEnum):
    """Request class, ordered best-first (lower value = more urgent)."""

    INTERACTIVE = 0
    BATCH = 1
    BACKGROUND = 2


#: Fraction of the admission-queue bound each class may fill before it is
#: shed.  Interactive may use the whole queue; batch is refused once the
#: queue is half full; background once it is a quarter full.  The gaps are
#: what keeps interactive latency bounded under overload: by the time the
#: queue could delay an interactive request, lower classes are already
#: being turned away.
SHED_QUEUE_FRACTIONS = {
    Priority.INTERACTIVE: 1.0,
    Priority.BATCH: 0.5,
    Priority.BACKGROUND: 0.25,
}

#: ``Overloaded.reason`` values.
SHED_QUEUE_FULL = "queue-full"
SHED_RATE_LIMITED = "rate-limited"
SHED_QUOTA_EXHAUSTED = "quota-exhausted"


@dataclass(frozen=True)
class Overloaded:
    """Typed load-shed result: the request was refused, not queued.

    Returned synchronously from admission — a shed request resolves
    immediately with this (never a hang, never an exception), carrying
    enough context for the caller to back off and retry.
    """

    tenant_id: str
    session_id: str
    priority: Priority
    reason: str
    #: Suggested back-off: time until the shedding condition can clear
    #: (token-bucket refill time, or one flush interval for a full queue).
    retry_after_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Always False: a shed request never succeeded."""
        return False


#: ``Unavailable.reason`` values.
UNAVAILABLE_SHUTDOWN = "shutdown"
UNAVAILABLE_FAILOVER = "replica-failover"


@dataclass(frozen=True)
class Unavailable:
    """Typed shutdown/failover result: the request was accepted but the
    serving process went away before (or while) computing it.

    The never-hang contract extends through shutdown: when a gateway is
    aborted (or a replica is killed mid-flight), every admitted,
    still-unresolved request settles with this — never a dangling future,
    never a raw ``CancelledError`` surfacing to the tenant.  Unlike
    :class:`Overloaded`, the work may be retried immediately against a
    surviving replica; durable state (WAL + manifests) guarantees the
    retried answer is the same one the dead process would have served.
    """

    tenant_id: str
    session_id: str
    priority: Priority
    reason: str = UNAVAILABLE_SHUTDOWN

    @property
    def ok(self) -> bool:
        """Always False: the gateway was shutting down."""
        return False


class TokenBucket:
    """Standard token bucket: ``rate`` tokens/s refill, ``burst`` capacity.

    ``rate <= 0`` disables the limiter (every acquire succeeds) — the
    config's "unlimited" spelling.  Time comes from the injected ``clock``
    so refill is exact under test-controlled time.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()

    @property
    def tokens(self) -> float:
        """Current token balance (after refilling to now)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self.clock()
        elapsed = max(now - self._refilled_at, 0.0)
        self._refilled_at = now
        if self.rate > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; never blocks."""
        if self.rate <= 0:
            return True
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    def seconds_until(self, cost: float = 1.0) -> float:
        """Time until ``cost`` tokens will have refilled (0 if ready)."""
        if self.rate <= 0:
            return 0.0
        self._refill()
        deficit = cost - self._tokens
        return max(deficit, 0.0) / self.rate


@dataclass
class TenantLedger:
    """Mutable per-tenant accounting the gateway updates in place.

    Queue waits are kept in a bounded ring (newest ``wait_window`` waits)
    so a long-running gateway's percentile snapshots track recent
    behaviour without unbounded growth.
    """

    tenant_id: str
    priority: Priority = Priority.INTERACTIVE
    wait_window: int = 4096
    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    #: Admitted requests that came back with a gateway/server error
    #: (e.g. ``session-expired``) — counted apart from ``completed`` so
    #: an all-failures tenant cannot look healthy in the stats.
    errors: int = 0
    shed_rate_limited: int = 0
    shed_queue_full: int = 0
    shed_quota: int = 0
    deadline_misses: int = 0
    tokens_consumed: float = 0.0
    #: Per-shard work attributed to this tenant's queries (proportional
    #: share of each micro-batch's shard-counter deltas).
    shard_requests: float = 0.0
    halo_fetches: float = 0.0
    first_submit_at: float | None = None
    last_complete_at: float | None = None
    _waits: list = field(default_factory=list, repr=False)

    @property
    def shed(self) -> int:
        """Total shed requests across all shed reasons."""
        return self.shed_rate_limited + self.shed_queue_full + self.shed_quota

    def record_submit(self, now: float) -> None:
        """Count one submitted request."""
        self.submitted += 1
        if self.first_submit_at is None:
            self.first_submit_at = now

    def record_shed(self, reason: str) -> None:
        """Count one shed request under its reason bucket."""
        if reason == SHED_RATE_LIMITED:
            self.shed_rate_limited += 1
        elif reason == SHED_QUOTA_EXHAUSTED:
            self.shed_quota += 1
        else:
            self.shed_queue_full += 1

    def record_complete(self, wait_s: float, missed_deadline: bool,
                        now: float) -> None:
        """Count one completion with its wait time and deadline verdict."""
        self.completed += 1
        self.deadline_misses += int(missed_deadline)
        self.last_complete_at = now
        self._waits.append(wait_s)
        if len(self._waits) > self.wait_window:
            del self._waits[:len(self._waits) - self.wait_window]

    def record_error(self, now: float) -> None:
        """An admitted request failed (not shed, not a success).

        Errors stay out of the wait percentiles and the completed/QPS
        ledger — they count separately so per-tenant failure is visible.
        """
        self.errors += 1
        self.last_complete_at = now

    def snapshot(self) -> "TenantStats":
        """Immutable stats view (QPS over first-submit → last-complete)."""
        if self._waits:
            p50, p95 = np.percentile(np.asarray(self._waits), [50, 95])
        else:
            p50 = p95 = 0.0
        elapsed = 0.0
        if (self.first_submit_at is not None
                and self.last_complete_at is not None):
            elapsed = max(self.last_complete_at - self.first_submit_at, 0.0)
        qps = self.completed / elapsed if elapsed > 0 else 0.0
        shed_rate = self.shed / self.submitted if self.submitted else 0.0
        return TenantStats(
            tenant_id=self.tenant_id, priority=self.priority,
            submitted=self.submitted, admitted=self.admitted,
            completed=self.completed, errors=self.errors, shed=self.shed,
            shed_rate_limited=self.shed_rate_limited,
            shed_queue_full=self.shed_queue_full,
            shed_quota=self.shed_quota, shed_rate=shed_rate, qps=qps,
            wait_p50_s=float(p50), wait_p95_s=float(p95),
            deadline_misses=self.deadline_misses,
            tokens_consumed=self.tokens_consumed,
            shard_requests=self.shard_requests,
            halo_fetches=self.halo_fetches)


@dataclass(frozen=True)
class TenantStats:
    """Frozen per-tenant QoS snapshot, surfaced via ``ServerStats``."""

    tenant_id: str
    priority: Priority
    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    errors: int = 0
    shed: int = 0
    shed_rate_limited: int = 0
    shed_queue_full: int = 0
    shed_quota: int = 0
    shed_rate: float = 0.0
    qps: float = 0.0
    wait_p50_s: float = 0.0
    wait_p95_s: float = 0.0
    deadline_misses: int = 0
    tokens_consumed: float = 0.0
    shard_requests: float = 0.0
    halo_fetches: float = 0.0


class AdmissionController:
    """Bounded, class-aware, per-tenant-rate-limited admission.

    One decision per request, strictly in this order:

    1. **Quota** — a tenant with an exhausted absolute query quota is
       refused (``quota-exhausted``); 0 means unlimited.
    2. **Occupancy** — the request's class must still fit under its
       fraction of ``max_queue`` (``queue-full``): interactive may fill
       the whole queue, batch half, background a quarter
       (:data:`SHED_QUEUE_FRACTIONS`).  Checked *before* the token
       bucket so a shed-by-occupancy request never burns the tenant's
       rate budget.
    3. **Rate** — the tenant's token bucket must yield a token
       (``rate-limited``); rate 0 means unlimited.

    The controller is pure bookkeeping — it never touches the queues —
    so decisions are a deterministic function of (schedule, clock).
    """

    def __init__(self, max_queue: int, tenant_rate_qps: float = 0.0,
                 tenant_burst: float = 16.0, tenant_quota: int = 0,
                 shed_fractions: dict | None = None, clock=time.monotonic):
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if tenant_quota < 0:
            raise ValueError("tenant_quota must be non-negative")
        self.max_queue = max_queue
        self.tenant_rate_qps = float(tenant_rate_qps)
        self.tenant_burst = float(tenant_burst)
        self.tenant_quota = int(tenant_quota)
        self.shed_fractions = dict(shed_fractions or SHED_QUEUE_FRACTIONS)
        self.clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._admitted: dict[str, int] = {}

    def bucket(self, tenant_id: str) -> TokenBucket:
        """Get or create the token bucket for ``tenant_id``."""
        bucket = self._buckets.get(tenant_id)
        if bucket is None:
            bucket = TokenBucket(self.tenant_rate_qps, self.tenant_burst,
                                 clock=self.clock)
            self._buckets[tenant_id] = bucket
        return bucket

    def class_capacity(self, priority: Priority) -> int:
        """Queue slots ``priority`` may occupy (at least 1)."""
        fraction = self.shed_fractions.get(priority, 1.0)
        return max(int(self.max_queue * fraction), 1)

    def admit(self, tenant_id: str, priority: Priority,
              queued_now: int) -> str | None:
        """Decide one request; returns ``None`` (admit) or a shed reason.

        ``queued_now`` is the gateway's current total queue occupancy
        across all classes.
        """
        quota = self.tenant_quota
        if quota and self._admitted.get(tenant_id, 0) >= quota:
            return SHED_QUOTA_EXHAUSTED
        bucket = self.bucket(tenant_id)
        if queued_now >= self.class_capacity(priority):
            # Occupancy is checked before the token is spent so a shed
            # request does not also burn the tenant's rate budget.
            return SHED_QUEUE_FULL
        if not bucket.try_acquire():
            return SHED_RATE_LIMITED
        self._admitted[tenant_id] = self._admitted.get(tenant_id, 0) + 1
        return None

    def retry_after(self, tenant_id: str, reason: str,
                    flush_hint_s: float = 0.0) -> float:
        """Back-off suggestion for a shed decision."""
        if reason == SHED_RATE_LIMITED:
            return self.bucket(tenant_id).seconds_until()
        if reason == SHED_QUEUE_FULL:
            return flush_hint_s
        return float("inf")  # quota never refills by waiting


class DeadlineAwareScheduler(MicroBatchScheduler):
    """Micro-batch release that also respects per-request deadlines.

    The base policy releases on ``max_batch_size`` or ``max_wait_s``.
    Under light load a shallow queue can sit for the whole ``max_wait_s``
    even when its oldest request is about to blow its deadline — so this
    subclass additionally releases once the oldest pending request has
    spent ``flush_fraction`` of its *deadline budget* (submit → deadline)
    waiting, leaving the remaining fraction for actual service.  Requests
    without a deadline fall back to the base policy unchanged — with
    ``flush_fraction=1.0`` and deadline == submit + max_wait the two
    policies are identical, which the equivalence test pins.
    """

    def __init__(self, max_batch_size: int = 16, max_wait_s: float = 0.0,
                 flush_fraction: float = 0.5, clock=time.monotonic):
        if not 0.0 < flush_fraction <= 1.0:
            raise ValueError("flush_fraction must be in (0, 1]")
        super().__init__(max_batch_size=max_batch_size,
                         max_wait_s=max_wait_s, clock=clock)
        self.flush_fraction = flush_fraction

    def _deadline_flush_at(self) -> float | None:
        """Absolute time the oldest request forces a deadline flush."""
        if not self._queue:
            return None
        oldest = self._queue[0]
        if oldest.deadline is None:
            return None
        budget = max(oldest.deadline - oldest.submitted_at, 0.0)
        return oldest.submitted_at + self.flush_fraction * budget

    def next_flush_at(self) -> float | None:
        """Earliest absolute time a waiting batch will self-release.

        ``None`` when the queue is empty.  The gateway's drain loop uses
        this to sleep exactly until the next forced flush instead of
        polling.
        """
        if not self._queue:
            return None
        wait_flush = self._queue[0].submitted_at + self.max_wait_s
        deadline_flush = self._deadline_flush_at()
        if deadline_flush is None:
            return wait_flush
        return min(wait_flush, deadline_flush)

    def ready(self) -> bool:
        """Whether the batch should flush (size, age, or deadline pressure)."""
        if super().ready():
            return True
        deadline_flush = self._deadline_flush_at()
        return (deadline_flush is not None
                and self.clock() >= deadline_flush)
