"""Session-scoped serving state: one Augmenter cache per logical caller.

A *session* is one logical stream of in-context queries — one tenant, one
episode definition (candidate pool + way count + shot count).  The paper's
Augmenter cache (Sec. IV-C) is a per-stream object: pseudo-labelled test
samples only make sense as prompts for *later queries of the same stream*,
so the serving layer gives every session its own
:class:`~repro.core.prompt_augmenter.PromptAugmenter` plus the encoded
candidate-pool arrays the Selector needs, and a stats ledger.

:class:`SessionStore` bounds the number of live sessions with LRU eviction
and optionally expires sessions idle longer than a TTL — the multi-tenant
analogue of the cache bound ``c`` inside each session.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..cache.stats import CacheStats
from ..core.prompt_augmenter import PromptAugmenter
from .quantize import pool_data, pool_nbytes

__all__ = ["SessionStats", "SessionState", "SessionStore"]


@dataclass
class SessionStats:
    """Per-session serving ledger."""

    queries: int = 0
    batches: int = 0
    cache_insertions: int = 0
    total_wait_s: float = 0.0
    total_service_s: float = 0.0
    created_at: float = 0.0
    last_active: float = 0.0

    def record(self, wait_s: float, service_s: float, inserted: int,
               now: float) -> None:
        """Fold one completed query's timings into the session stats."""
        self.queries += 1
        self.batches += 1
        self.cache_insertions += inserted
        self.total_wait_s += wait_s
        self.total_service_s += service_s
        self.last_active = now


@dataclass
class SessionState:
    """Everything one session's queries need at prediction time.

    The last four fields are the live-update (cache-epoch) plumbing:
    ``graph_version`` records the graph epoch the cached pool encodings
    were computed under, ``dependent_nodes`` the union of every node the
    session's sampled subgraphs visited (pool and queries).  A mutation
    whose touched nodes intersect ``dependent_nodes`` marks the session
    ``stale``; the server re-encodes its pool — from ``episode``, kept
    for exactly this — and purges its Augmenter cache before the next
    prediction, so a mutated session never answers from pre-mutation
    subgraphs while untouched sessions keep their caches (and hit-rates)
    intact.
    """

    session_id: str
    num_ways: int
    shots: int
    #: Encoded candidate-pool embeddings: a float ndarray (default) or a
    #: :class:`~repro.serving.quantize.QuantizedPool` when the server runs
    #: with ``config.pool_quantization = "int8"``.  Read through
    #: :meth:`pool_embeddings`, never directly, so callers are agnostic.
    candidate_emb: np.ndarray
    candidate_importance: np.ndarray
    pool_labels: np.ndarray
    augmenter: PromptAugmenter
    stats: SessionStats = field(default_factory=SessionStats)
    episode: object | None = None
    graph_version: int = 0
    dependent_nodes: set = field(default_factory=set)
    stale: bool = False

    def cache_stats(self) -> CacheStats:
        """Counter snapshot of this session's Augmenter cache."""
        return self.augmenter.stats()

    def pool_embeddings(self) -> np.ndarray:
        """Candidate-pool embeddings as a float work array.

        Pass-through (no copy) for the default ndarray representation;
        dequantize-on-read for int8 pools — the float array lives only as
        long as the micro-batch that asked for it.
        """
        return pool_data(self.candidate_emb)

    def pool_nbytes(self) -> int:
        """At-rest bytes of this session's candidate-pool embeddings."""
        return pool_nbytes(self.candidate_emb)


class SessionStore:
    """Bounded mapping of live sessions with LRU + TTL eviction.

    ``capacity`` caps concurrently-resident sessions (least recently *used*
    evicted first); ``ttl_seconds`` additionally expires sessions whose last
    activity is older than the TTL at sweep time.  ``clock`` is injectable
    so tests can advance time explicitly.
    """

    def __init__(self, capacity: int = 64, ttl_seconds: float | None = None,
                 clock=time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive when set")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.clock = clock
        self._sessions: "OrderedDict[str, SessionState]" = OrderedDict()
        self.evicted_total = 0
        self.expired_total = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def ids(self) -> list[str]:
        """Live session ids, least recently used first."""
        return list(self._sessions)

    def states(self) -> list[SessionState]:
        """Live session states (no recency touch) — for bulk sweeps like
        graph-mutation invalidation, which must not reorder eviction."""
        return list(self._sessions.values())

    def put(self, state: SessionState) -> list[str]:
        """Register a session; returns ids evicted to make room."""
        now = self.clock()
        state.stats.created_at = now
        state.stats.last_active = now
        evicted = []
        if state.session_id not in self._sessions:
            while len(self._sessions) >= self.capacity:
                victim, _ = self._sessions.popitem(last=False)
                self.evicted_total += 1
                evicted.append(victim)
        self._sessions[state.session_id] = state
        self._sessions.move_to_end(state.session_id)
        return evicted

    def get(self, session_id: str) -> SessionState:
        """Fetch a live session and refresh its recency.

        Raises ``KeyError`` for unknown (or already evicted/expired) ids —
        the caller decides whether that is a client error or a re-open.
        """
        state = self._sessions[session_id]
        self._sessions.move_to_end(session_id)
        state.stats.last_active = self.clock()
        return state

    def close(self, session_id: str) -> SessionState | None:
        """Remove a session explicitly; returns its final state."""
        return self._sessions.pop(session_id, None)

    def sweep(self) -> list[str]:
        """Expire sessions idle for longer than ``ttl_seconds``."""
        if self.ttl_seconds is None:
            return []
        now = self.clock()
        expired = [sid for sid, state in self._sessions.items()
                   if now - state.stats.last_active > self.ttl_seconds]
        for sid in expired:
            del self._sessions[sid]
            self.expired_total += 1
        return expired
