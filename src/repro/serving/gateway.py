"""Async multi-tenant serving gateway over :class:`PromptServer`.

:class:`ServingGateway` owns the request lifecycle end-to-end for many
tenants sharing one model:

* **Admission** — every submit passes the
  :class:`~repro.serving.qos.AdmissionController`: per-tenant token-bucket
  rate limiting and quota accounting, then a bounded admission queue with
  class-aware occupancy shedding.  A refused request resolves
  *immediately* with a typed :class:`~repro.serving.qos.Overloaded`
  result — under any overload, nothing ever hangs.
* **Priority batching** — admitted requests queue per
  :class:`~repro.serving.qos.Priority` class in a
  :class:`~repro.serving.qos.DeadlineAwareScheduler`: a batch releases on
  size, on age, or when its oldest request has spent its configured
  fraction of deadline budget waiting.  The drain loop always serves
  ready interactive batches before batch-class before background.
* **Execution** — each released batch rides the untouched
  :class:`PromptServer` hot path (submit → drain), so admitted requests
  get **bit-identical predictions** to direct server calls: sessions keep
  a fixed priority class, per-session arrival order is preserved inside
  one class queue, micro-batch composition never changes predictions
  (PR 1's invariant), and each session's Augmenter evolves in the same
  order either way.
* **Graceful drain / hot swap** — :meth:`update_graph` and
  :meth:`reload_model` first drain every admitted in-flight request under
  the swap lock, then mutate; zero requests are dropped, and sessions are
  re-anchored so no post-swap answer comes from pre-swap state.

Per-tenant accounting (QPS, shed rate, queue-wait percentiles, deadline
misses, attributed per-shard work) flows up through
:class:`~repro.serving.qos.TenantLedger` into ``ServerStats.tenants``.

The gateway is an asyncio front-end, but all compute stays synchronous
inside the event loop (numpy releases nothing by going async); asyncio
buys concurrent request producers, backpressure, and a place to hang the
drain loop.  Construct with ``auto_drain=False`` for deterministic tests:
no background task runs, and the test pumps explicitly.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace

from ..graph.datapoints import Datapoint
from ..graph.delta import AppliedUpdate, GraphUpdate
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from .qos import (
    UNAVAILABLE_SHUTDOWN,
    AdmissionController,
    DeadlineAwareScheduler,
    Overloaded,
    Priority,
    TenantLedger,
    Unavailable,
)
from .server import PromptServer, ServeResult, ServerStats

__all__ = ["GatewayResult", "ServingGateway"]


@dataclass(frozen=True)
class GatewayResult:
    """One admitted request's answer, with gateway-side accounting."""

    tenant_id: str
    session_id: str
    priority: Priority
    result: ServeResult | None
    #: Time spent in the gateway's class queue before batch release (the
    #: server-side micro-batch wait is inside ``result.wait_s``).
    queue_wait_s: float
    deadline_missed: bool
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the request resolved successfully end to end."""
        return (self.error is None and self.result is not None
                and self.result.ok)

    @property
    def prediction(self) -> int:
        """Predicted class id, or -1 when the request failed."""
        return self.result.prediction if self.result is not None else -1


@dataclass
class _InFlight:
    """Bookkeeping for one admitted request awaiting its batch."""

    future: asyncio.Future
    tenant_id: str
    session_id: str
    priority: Priority
    submitted_at: float
    deadline: float


class ServingGateway:
    """Admission, priority batching, and QoS accounting for one server.

    Unspecified knobs default to the server config's ``gateway_*``
    fields.  ``clock`` defaults to the server's clock, so fake-clock
    servers get a fake-clock gateway for free.
    """

    def __init__(self, server: PromptServer, *,
                 max_queue: int | None = None,
                 max_batch_size: int | None = None,
                 max_wait_s: float | None = None,
                 flush_fraction: float | None = None,
                 tenant_rate_qps: float | None = None,
                 tenant_burst: float | None = None,
                 tenant_quota: int | None = None,
                 deadlines: dict | None = None,
                 auto_drain: bool = True,
                 clock=None,
                 registry: MetricsRegistry | None = None,
                 trace_every: int | None = None):
        config = server.config
        self.server = server
        self.clock = clock if clock is not None else server.clock
        #: Shared with the server by default, so one scrape covers the
        #: gateway's admission counters and the server's batch metrics.
        self.obs = registry if registry is not None else server.obs
        self.tracer = Tracer(
            every=config.obs_trace_every if trace_every is None
            else trace_every)
        obs = self.obs
        tenant_labels = ("tenant", "priority")
        self._m_submitted = obs.counter(
            "repro_gateway_submitted_total",
            "Requests offered to gateway admission.", tenant_labels)
        self._m_admitted = obs.counter(
            "repro_gateway_admitted_total",
            "Requests admitted past the gateway.", tenant_labels)
        self._m_shed = obs.counter(
            "repro_gateway_shed_total",
            "Requests refused at admission, by shed reason.",
            ("tenant", "priority", "reason"))
        self._m_completed = obs.counter(
            "repro_gateway_completed_total",
            "Admitted requests resolved successfully.", tenant_labels)
        self._m_errors = obs.counter(
            "repro_gateway_errors_total",
            "Admitted requests resolved with an error.", tenant_labels)
        self._m_misses = obs.counter(
            "repro_gateway_deadline_misses_total",
            "Resolved requests that blew their deadline.", tenant_labels)
        self._m_queue_wait = obs.histogram(
            "repro_gateway_queue_wait_seconds",
            "Class-queue wait before batch release.", ("priority",))
        self._endpoint = None

        def _knob(value, default):
            return default if value is None else value

        self.max_queue = _knob(max_queue, config.gateway_max_queue)
        self.max_batch_size = _knob(max_batch_size,
                                   config.gateway_max_batch_size)
        self.max_wait_s = _knob(max_wait_s, config.gateway_max_wait_s)
        self.flush_fraction = _knob(flush_fraction,
                                   config.gateway_flush_fraction)
        #: Deadline budget per priority class (seconds from submit).
        self.deadlines = {
            Priority.INTERACTIVE: config.gateway_deadline_interactive_s,
            Priority.BATCH: config.gateway_deadline_batch_s,
            Priority.BACKGROUND: config.gateway_deadline_background_s,
        }
        if deadlines:
            self.deadlines.update(deadlines)
        self.admission = AdmissionController(
            max_queue=self.max_queue,
            tenant_rate_qps=_knob(tenant_rate_qps,
                                 config.gateway_tenant_rate_qps),
            tenant_burst=_knob(tenant_burst, config.gateway_tenant_burst),
            tenant_quota=_knob(tenant_quota, config.gateway_tenant_quota),
            clock=self.clock)
        self._queues = {
            priority: DeadlineAwareScheduler(
                max_batch_size=self.max_batch_size,
                max_wait_s=self.max_wait_s,
                flush_fraction=self.flush_fraction, clock=self.clock)
            for priority in Priority
        }
        #: session id -> (tenant id, priority); fixed at open time so a
        #: session's requests always share one class queue (per-session
        #: FIFO is what keeps gateway serving bit-identical).
        self._sessions: dict[str, tuple[str, Priority]] = {}
        self._ledgers: dict[str, TenantLedger] = {}
        self._inflight: dict[tuple[Priority, int], _InFlight] = {}
        self._swap_lock = asyncio.Lock()
        self._wakeup = asyncio.Event()
        self._auto_drain = auto_drain
        self._drain_task: asyncio.Task | None = None
        self._closed = False
        self._batches = 0

    # ------------------------------------------------------------------
    # Session + tenant registration
    # ------------------------------------------------------------------
    def ledger(self, tenant_id: str,
               priority: Priority = Priority.INTERACTIVE) -> TenantLedger:
        """Get or create the accounting ledger for ``tenant_id``."""
        entry = self._ledgers.get(tenant_id)
        if entry is None:
            entry = TenantLedger(tenant_id=tenant_id, priority=priority)
            self._ledgers[tenant_id] = entry
        return entry

    def open_session(self, tenant_id: str, session_id: str, episode,
                     shots: int = 3,
                     priority: Priority = Priority.INTERACTIVE,
                     _open_index: int | None = None):
        """Open a server session owned by ``tenant_id`` at ``priority``.

        The priority class is fixed for the session's lifetime — that is
        what guarantees its requests drain in submission order — and per
        *tenant*: QoS accounting (and the overload gates built on it) is
        keyed by the tenant's class, so one tenant mixing classes would
        silently misclassify part of its traffic.  Model separate
        workloads of one customer as separate tenant ids.

        When the server has a :class:`~repro.persist.PersistentStore`,
        the tenant and priority ride the session's durable manifest, so a
        restart (or replica failover) re-opens the session for its owner.
        """
        priority = Priority(priority)
        existing = self._ledgers.get(tenant_id)
        if existing is not None and existing.priority != priority:
            raise ValueError(
                f"tenant {tenant_id!r} already serves "
                f"{existing.priority.name} sessions; a tenant's sessions "
                f"must share one priority class (use a distinct tenant id "
                f"per class)")
        state = self.server.open_session(
            session_id, episode, shots=shots, tenant_id=tenant_id,
            priority=priority, _open_index=_open_index)
        self._sessions[session_id] = (tenant_id, priority)
        self.ledger(tenant_id, priority)
        return state

    def adopt_sessions(self) -> int:
        """Register a restored server's sessions with this gateway.

        :meth:`PromptServer.restore` re-opens every manifested session on
        the *server*; this reads the same manifests to rebuild the
        gateway-side session → (tenant, priority) map and tenant ledgers,
        so restored sessions are immediately routable.  Returns the
        number of sessions adopted.
        """
        persist = self.server.persist
        if persist is None:
            return 0
        adopted = 0
        for manifest in persist.sessions.load_all():
            if manifest.session_id not in self.server.sessions:
                continue
            tenant_id = manifest.tenant_id or "default"
            priority = (Priority.INTERACTIVE if manifest.priority is None
                        else Priority(manifest.priority))
            self._sessions[manifest.session_id] = (tenant_id, priority)
            self.ledger(tenant_id, priority)
            adopted += 1
        return adopted

    def close_session(self, session_id: str):
        """Drop gateway bookkeeping for the session and close it server-side."""
        self._sessions.pop(session_id, None)
        return self.server.close_session(session_id)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        """Total admitted-but-unreleased requests across all classes."""
        return sum(len(queue) for queue in self._queues.values())

    @property
    def closed(self) -> bool:
        """True once the gateway stopped accepting work (close/abort)."""
        return self._closed

    def _flush_hint_s(self, priority: Priority) -> float:
        flush_at = self._queues[priority].next_flush_at()
        if flush_at is None:
            return self.max_wait_s
        return max(flush_at - self.clock(), 0.0)

    def submit_nowait(self, session_id: str, datapoint: Datapoint):
        """Admit-or-shed one query without awaiting the answer.

        Returns an :class:`Overloaded` (shed — final, resolve
        immediately) or an :class:`asyncio.Future` resolving to the
        request's :class:`GatewayResult`.  Must run inside an event loop.
        """
        if self._closed:
            raise RuntimeError("gateway is closed")
        try:
            tenant_id, priority = self._sessions[session_id]
        except KeyError:
            raise KeyError(
                f"unknown session {session_id!r} — open_session() it on "
                f"this gateway first (or it was closed)") from None
        ledger = self.ledger(tenant_id, priority)
        now = self.clock()
        ledger.record_submit(now)
        # Deterministic 1-in-N sampling: a counter, not an RNG draw, so
        # tracing can never perturb prediction streams.
        trace = self.tracer.maybe_trace()
        klass = priority.name.lower()
        self._m_submitted.inc(tenant=tenant_id, priority=klass)
        reason = self.admission.admit(tenant_id, priority,
                                      self.queue_depth())
        if reason is not None:
            ledger.record_shed(reason)
            self._m_shed.inc(tenant=tenant_id, priority=klass,
                             reason=reason)
            if trace is not None:
                trace.add_span("admission", max(self.clock() - now, 0.0))
                trace.meta.update(tenant=tenant_id, session=session_id,
                                  priority=klass, outcome=f"shed:{reason}")
                self.tracer.record(trace)
            return Overloaded(
                tenant_id=tenant_id, session_id=session_id,
                priority=priority, reason=reason,
                retry_after_s=self.admission.retry_after(
                    tenant_id, reason,
                    flush_hint_s=self._flush_hint_s(priority)))
        ledger.admitted += 1
        ledger.tokens_consumed += 1.0
        self._m_admitted.inc(tenant=tenant_id, priority=klass)
        if trace is not None:
            trace.add_span("admission", max(self.clock() - now, 0.0))
            trace.meta.update(tenant=tenant_id, session=session_id,
                              priority=klass)
        deadline = now + self.deadlines[priority]
        request_id = self._queues[priority].submit(session_id, datapoint,
                                                   deadline=deadline,
                                                   trace=trace)
        future = asyncio.get_running_loop().create_future()
        self._inflight[(priority, request_id)] = _InFlight(
            future=future, tenant_id=tenant_id, session_id=session_id,
            priority=priority, submitted_at=now, deadline=deadline)
        self._ensure_drain_task()
        self._wakeup.set()
        return future

    async def submit(self, session_id: str, datapoint: Datapoint):
        """Submit one query and await its result.

        Returns a :class:`GatewayResult` for admitted requests or an
        :class:`Overloaded` for shed ones — never raises for overload,
        never hangs (the drain loop, or any concurrent ``flush``, always
        releases every admitted batch).
        """
        outcome = self.submit_nowait(session_id, datapoint)
        if isinstance(outcome, Overloaded):
            return outcome
        return await outcome

    # ------------------------------------------------------------------
    # Drain machinery
    # ------------------------------------------------------------------
    def _ensure_drain_task(self) -> None:
        if not self._auto_drain or self._closed:
            return
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain_loop())

    async def _drain_loop(self) -> None:
        """Background pump: serve ready batches, sleep until the next."""
        try:
            while not self._closed:
                try:
                    processed = await self.pump()
                except Exception:
                    # The failing batch's futures were settled with a
                    # typed error before the raise; the loop must stay
                    # alive to keep serving the other queues.
                    continue
                if processed:
                    continue
                flush_at = [queue.next_flush_at()
                            for queue in self._queues.values()]
                pending = [at for at in flush_at if at is not None]
                self._wakeup.clear()
                if not pending:
                    await self._wakeup.wait()
                    continue
                delay = max(min(pending) - self.clock(), 0.0)
                try:
                    await asyncio.wait_for(self._wakeup.wait(),
                                           timeout=max(delay, 1e-3))
                except asyncio.TimeoutError:
                    pass
        except asyncio.CancelledError:
            pass

    async def pump(self) -> int:
        """Serve every currently-ready batch; returns requests served.

        Higher classes drain first: all ready interactive batches are
        served before any batch-class batch, and so on.
        """
        served = 0
        progress = True
        while progress:
            progress = False
            for priority in Priority:
                queue = self._queues[priority]
                if queue.ready():
                    async with self._swap_lock:
                        served += self._process_batch(
                            priority, queue.next_batch())
                    progress = True
                    break  # re-check interactive before lower classes
            if progress:
                await asyncio.sleep(0)  # let producers interleave
        return served

    async def flush(self) -> int:
        """Force-drain every admitted request (any batch size)."""
        async with self._swap_lock:
            return await self._flush_locked()

    async def _flush_locked(self) -> int:
        served = 0
        while self.queue_depth():
            for priority in Priority:
                queue = self._queues[priority]
                while len(queue):
                    served += self._process_batch(priority,
                                                  queue.next_batch())
        return served

    def _shard_totals(self) -> tuple[int, int]:
        shards = self.server.stats.shards
        return (sum(c.requests for c in shards),
                sum(c.halo_fetches for c in shards))

    def _process_batch(self, priority: Priority, batch: list) -> int:
        """Run one released class batch through the server hot path."""
        if not batch:
            return 0
        release_at = self.clock()
        requests_before, halo_before = self._shard_totals()
        tickets: dict[int, object] = {}
        errors: list[tuple[object, str]] = []
        for request in batch:
            try:
                ticket = self.server.submit(request.session_id,
                                            request.datapoint,
                                            trace=request.trace)
            except KeyError:
                errors.append((request, "session-expired"))
                continue
            tickets[ticket] = request
        try:
            results = self.server.drain() if tickets else []
        except Exception as failure:
            # Never-hang contract: the batch is already popped, so every
            # one of its futures must settle even when the hot path
            # blows up.  Settle with a typed error, then re-raise so an
            # explicit pump()/flush() caller sees the failure (the
            # background drain loop logs-and-survives it).
            done_at = self.clock()
            reason = f"internal: {type(failure).__name__}: {failure}"
            for request in tickets.values():
                self._resolve(priority, request, None, release_at,
                              done_at, error=reason)
            for request, expired in errors:
                self._resolve(priority, request, None, release_at,
                              done_at, error=expired)
            raise
        done_at = self.clock()
        requests_after, halo_after = self._shard_totals()

        by_ticket = {result.request_id: result for result in results}
        tenant_share: dict[str, int] = {}
        for request, reason in errors:
            self._resolve(priority, request, None, release_at, done_at,
                          error=reason)
        for ticket, request in tickets.items():
            tenant_id = self._resolve(priority, request,
                                      by_ticket.get(ticket),
                                      release_at, done_at)
            if tenant_id is not None:
                tenant_share[tenant_id] = tenant_share.get(tenant_id, 0) + 1
        # Per-shard work flows up into tenant ledgers: each tenant is
        # attributed its proportional share of this batch's shard-counter
        # deltas (routed requests, halo fetches).
        total = sum(tenant_share.values())
        if total:
            request_delta = requests_after - requests_before
            halo_delta = halo_after - halo_before
            for tenant_id, count in tenant_share.items():
                ledger = self.ledger(tenant_id)
                ledger.shard_requests += request_delta * count / total
                ledger.halo_fetches += halo_delta * count / total
        self._batches += 1
        return len(batch)

    def _resolve(self, priority: Priority, request,
                 result: ServeResult | None, release_at: float,
                 done_at: float, error: str | None = None) -> str | None:
        """Settle one request's future + ledger; returns its tenant id."""
        inflight = self._inflight.pop((priority, request.request_id), None)
        if inflight is None:  # pragma: no cover - submit always registers
            return None
        queue_wait_s = max(release_at - inflight.submitted_at, 0.0)
        missed = done_at > inflight.deadline
        if error is None and result is not None and not result.ok:
            error = result.error
        outcome = GatewayResult(
            tenant_id=inflight.tenant_id, session_id=inflight.session_id,
            priority=priority, result=result, queue_wait_s=queue_wait_s,
            deadline_missed=missed, error=error)
        ledger = self.ledger(inflight.tenant_id)
        klass = priority.name.lower()
        if error is not None:
            # Failures stay out of completed/QPS/wait percentiles: a
            # tenant whose requests all errored must not look healthy.
            ledger.record_error(done_at)
            self._m_errors.inc(tenant=inflight.tenant_id, priority=klass)
        else:
            ledger.record_complete(queue_wait_s, missed, done_at)
            self._m_completed.inc(tenant=inflight.tenant_id,
                                  priority=klass)
        if missed:
            self._m_misses.inc(tenant=inflight.tenant_id, priority=klass)
        self._m_queue_wait.observe(queue_wait_s, priority=klass)
        trace = getattr(request, "trace", None)
        if trace is not None:
            trace.add_span("queue_wait", queue_wait_s)
            trace.add_span("total",
                           max(done_at - inflight.submitted_at, 0.0))
            trace.meta["outcome"] = "ok" if error is None else error
            self.tracer.record(trace)
        if not inflight.future.done():
            inflight.future.set_result(outcome)
        return inflight.tenant_id

    # ------------------------------------------------------------------
    # Graceful drain / hot swap
    # ------------------------------------------------------------------
    async def update_graph(self, update: GraphUpdate,
                           log: bool = True) -> AppliedUpdate:
        """Apply a live graph mutation with zero dropped requests.

        Under the swap lock: every admitted in-flight request is drained
        through the *pre-mutation* graph, then the server absorbs the
        update (shard rebuilds, session epoch invalidation).  Requests
        admitted while the swap holds the lock simply queue behind it.
        ``log=False`` skips the WAL append — for callers (the replica
        set) that logged the update once already and are fanning it out.
        """
        async with self._swap_lock:
            await self._flush_locked()
            return self.server.update_graph(update, log=log)

    async def reload_model(self, state_dict: dict) -> None:
        """Hot-swap model weights with zero dropped requests.

        In-flight requests drain under the old weights; then the new
        state loads, worker pools respawn (their replicas were built from
        the old state dict), and every open session re-anchors — pools
        re-encoded, Augmenter caches purged — so no post-swap prediction
        mixes old-weight state with new weights.
        """
        async with self._swap_lock:
            await self._flush_locked()
            self.server.reload_model(state_dict)

    async def drain(self) -> int:
        """Public alias of :meth:`flush` (flush + swap-lock barrier)."""
        return await self.flush()

    def start_metrics_endpoint(self, host: str = "127.0.0.1",
                               port: int = 0):
        """Expose ``GET /metrics`` over HTTP for this gateway.

        Each scrape re-collects the legacy ledgers into the shared
        registry and renders Prometheus text exposition.  Returns the
        running :class:`~repro.obs.MetricsEndpoint` (its ``.url`` is the
        scrape target); idempotent — a second call returns the first
        endpoint.  ``close()`` shuts it down with the gateway.
        """
        if self._endpoint is None:
            from ..obs.bridge import scrape
            from ..obs.httpd import MetricsEndpoint
            self._endpoint = MetricsEndpoint(lambda: scrape(self),
                                             host=host, port=port)
        return self._endpoint

    def abort(self, reason: str = UNAVAILABLE_SHUTDOWN) -> int:
        """Immediate shutdown: settle everything in flight, serve nothing.

        The never-hang contract through process death: admission closes,
        every queued-but-unreleased batch is discarded, and every admitted
        request whose future is still pending resolves with a typed
        :class:`~repro.serving.qos.Unavailable` — no dangling future, no
        ``CancelledError`` surfacing to a tenant.  Synchronous on purpose
        so a replica-set failover can kill a replica without awaiting it.
        Idempotent; returns the number of requests settled.
        """
        self._closed = True
        now = self.clock()
        for queue in self._queues.values():
            while len(queue):
                queue.next_batch()
        inflight, self._inflight = self._inflight, {}
        settled = 0
        for (priority, _), entry in inflight.items():
            if entry.future.done():
                continue
            entry.future.set_result(Unavailable(
                tenant_id=entry.tenant_id, session_id=entry.session_id,
                priority=priority, reason=reason))
            self.ledger(entry.tenant_id).record_error(now)
            self._m_errors.inc(tenant=entry.tenant_id,
                               priority=priority.name.lower())
            settled += 1
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None
        self._wakeup.set()
        if self._drain_task is not None:
            self._drain_task.cancel()
            self._drain_task = None
        return settled

    async def close(self, drain: bool = True) -> None:
        """Stop the drain loop; by default after serving the queues.

        ``drain=False`` skips the final flush — in-flight requests settle
        with :class:`~repro.serving.qos.Unavailable` instead (the
        kill-switch the replica set pulls on failover).
        """
        if drain and not self._closed:
            await self.flush()
        task = self._drain_task
        self.abort()
        if task is not None:
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def __aenter__(self) -> "ServingGateway":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServerStats:
        """Server counters with the per-tenant QoS ledgers attached."""
        return replace(
            self.server.stats,
            tenants=tuple(self._ledgers[tenant].snapshot()
                          for tenant in sorted(self._ledgers)))
